// Ablation — invalidation by individual messages vs ring broadcast.
//
// The remote-operation module's broadcast scheme with "replies from all
// receiving processors ... can be used for implementing invalidation
// operations".  A single broadcast frame replaces one request per copyset
// member, but interrupts every processor — worthwhile only when copysets
// are wide.
#include "bench/common.h"
#include "ivy/apps/jacobi.h"

namespace ivy::bench {
namespace {

void run() {
  header("Ablation: invalidation scheme",
         "per-member messages vs one ring broadcast, 8 nodes");
  std::printf("  workload: jacobi n=256 (x is read by all, rewritten each"
              " iteration)\n\n");
  std::printf("  %-12s %10s %14s %10s %10s\n", "scheme", "time[s]",
              "invalidations", "bcasts", "messages");
  for (bool broadcast : {false, true}) {
    Config cfg = base_config(8);
    cfg.broadcast_invalidation = broadcast;
    auto rt = std::make_unique<Runtime>(cfg);
    apps::JacobiParams p;
    p.n = 256;
    p.iterations = 6;
    const apps::RunOutcome out = run_jacobi(*rt, p);
    IVY_CHECK(out.verified);
    std::printf("  %-12s %10.3f %14llu %10llu %10llu\n",
                broadcast ? "broadcast" : "individual",
                to_seconds(out.elapsed),
                static_cast<unsigned long long>(
                    rt->stats().total(Counter::kInvalidationsSent)),
                static_cast<unsigned long long>(
                    rt->stats().total(Counter::kBroadcasts)),
                static_cast<unsigned long long>(
                    rt->stats().total(Counter::kMessages)));
    std::fflush(stdout);
  }
  std::printf(
      "\nWide copysets (everyone read x) make one broadcast cheaper than\n"
      "up to 7 individual invalidations; with narrow sharing the broadcast\n"
      "would interrupt bystanders for nothing.\n");
}

}  // namespace
}  // namespace ivy::bench

int main() {
  ivy::bench::run();
  return 0;
}
