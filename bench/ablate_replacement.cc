// Ablation — page replacement policy under memory pressure.
//
// IVY ran on Aegis, whose "approximate LRU" replacement behaves very
// differently from strict LRU on the Jacobi programs: their sweeps are
// cyclic, and a cyclic reference string whose length exceeds memory makes
// strict LRU miss on *every* access, while randomized (sampled) LRU
// misses roughly in proportion to the overflow.  Table 1's moderate
// transfer counts are only reproducible with the approximate policy.
#include "bench/common.h"
#include "ivy/apps/pde3d.h"

namespace ivy::bench {
namespace {

void run() {
  header("Ablation: page replacement",
         "strict LRU vs sampled (approximate) LRU, paging 3-D PDE");
  constexpr std::size_t kGrid = 28;
  constexpr std::size_t kFrames = 470;
  std::printf("  grid=%zu^3 (~525 pages), frames/node=%zu, 1 node\n\n",
              kGrid, kFrames);
  std::printf("  %-14s %10s %12s %12s\n", "policy", "time[s]", "disk_reads",
              "disk_writes");
  for (auto policy : {mem::ReplacementPolicy::kStrictLru,
                      mem::ReplacementPolicy::kSampledLru}) {
    Config cfg = base_config(1);
    cfg.frames_per_node = kFrames;
    cfg.replacement = policy;
    auto rt = std::make_unique<Runtime>(cfg);
    apps::Pde3dParams p;
    p.m = kGrid;
    p.iterations = 4;
    p.skip_verify = true;
    const apps::RunOutcome out = run_pde3d(*rt, p);
    std::printf("  %-14s %10.3f %12llu %12llu\n", to_string(policy),
                to_seconds(out.elapsed),
                static_cast<unsigned long long>(
                    rt->stats().total(Counter::kDiskReads)),
                static_cast<unsigned long long>(
                    rt->stats().total(Counter::kDiskWrites)));
    std::fflush(stdout);
  }
  std::printf(
      "\nExpected shape: strict LRU thrashes the cyclic sweep (every page\n"
      "misses each iteration); sampled LRU pages only the overflow.\n");
}

}  // namespace
}  // namespace ivy::bench

int main() {
  ivy::bench::run();
  return 0;
}
