// Micro-benchmarks (google-benchmark).
//
// Wall time here measures the *simulator's* host-side throughput; the
// interesting modeled quantities — virtual microseconds per primitive on
// the simulated 1988 machine — are reported as counters
// (virtual_us_per_op), mirroring the cost table a systems paper would
// publish: local reference, remote read/write fault, eventcount ops,
// remote-operation round trip, allocation.
#include <benchmark/benchmark.h>

#include "bench/common.h"

namespace ivy::bench {
namespace {

Config micro_config(NodeId nodes) {
  Config cfg;
  cfg.nodes = nodes;
  cfg.heap_pages = 512;
  cfg.stack_region_pages = 16;
  return cfg;
}

/// Runs `body` as a process on `node`, returns elapsed virtual time.
template <typename Fn>
Time timed_run(Runtime& rt, NodeId node, Fn&& body) {
  rt.spawn_on(node, std::forward<Fn>(body));
  return rt.run();
}

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_after(i, [] {});
    }
    sim.run_until_idle();
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorEventThroughput);

void BM_LocalAccess(benchmark::State& state) {
  Time virtual_per_op = 0;
  for (auto _ : state) {
    Runtime rt(micro_config(1));
    auto data = rt.alloc_array<std::uint64_t>(1024);
    const Time t = timed_run(rt, 0, [=]() mutable {
      for (std::size_t i = 0; i < 1024; ++i) data[i] = i;
    });
    virtual_per_op = t / 1024;
  }
  state.counters["virtual_us_per_op"] =
      static_cast<double>(virtual_per_op) / 1000.0;
}
BENCHMARK(BM_LocalAccess);

void BM_RemoteReadFault(benchmark::State& state) {
  Time virtual_per_fault = 0;
  constexpr std::size_t kPages = 64;
  for (auto _ : state) {
    Runtime rt(micro_config(2));
    auto data = rt.alloc_array<std::uint64_t>(kPages * 128);
    // Reader on node 1 touches one word per page: kPages read faults.
    const Time t = timed_run(rt, 1, [=]() mutable {
      std::uint64_t sum = 0;
      for (std::size_t p = 0; p < kPages; ++p) {
        sum += static_cast<std::uint64_t>(data[p * 128]);
      }
      benchmark::DoNotOptimize(sum);
    });
    virtual_per_fault = t / kPages;
  }
  state.counters["virtual_us_per_op"] =
      static_cast<double>(virtual_per_fault) / 1000.0;
}
BENCHMARK(BM_RemoteReadFault);

void BM_RemoteWriteFault(benchmark::State& state) {
  Time virtual_per_fault = 0;
  constexpr std::size_t kPages = 64;
  for (auto _ : state) {
    Runtime rt(micro_config(2));
    auto data = rt.alloc_array<std::uint64_t>(kPages * 128);
    const Time t = timed_run(rt, 1, [=]() mutable {
      for (std::size_t p = 0; p < kPages; ++p) data[p * 128] = p;
    });
    virtual_per_fault = t / kPages;
  }
  state.counters["virtual_us_per_op"] =
      static_cast<double>(virtual_per_fault) / 1000.0;
}
BENCHMARK(BM_RemoteWriteFault);

void BM_EventcountLocal(benchmark::State& state) {
  Time virtual_per_op = 0;
  constexpr int kOps = 256;
  for (auto _ : state) {
    Runtime rt(micro_config(1));
    auto ec = rt.create_eventcount();
    const Time t = timed_run(rt, 0, [=]() mutable {
      for (int i = 0; i < kOps; ++i) ec.advance();
    });
    virtual_per_op = t / kOps;
  }
  state.counters["virtual_us_per_op"] =
      static_cast<double>(virtual_per_op) / 1000.0;
}
BENCHMARK(BM_EventcountLocal);

void BM_EventcountRemoteWakeup(benchmark::State& state) {
  Time virtual_per_round = 0;
  constexpr int kRounds = 64;
  for (auto _ : state) {
    Runtime rt(micro_config(2));
    auto ec = rt.create_eventcount();
    // Two processes hand the count back and forth: each round is one
    // remote page move + one remote wakeup.
    rt.spawn_on(0, [=]() mutable {
      for (int i = 0; i < kRounds; ++i) {
        ec.wait(2 * i);
        ec.advance();
      }
    });
    rt.spawn_on(1, [=]() mutable {
      for (int i = 0; i < kRounds; ++i) {
        ec.wait(2 * i + 1);
        ec.advance();
      }
    });
    virtual_per_round = rt.run() / kRounds;
  }
  state.counters["virtual_us_per_op"] =
      static_cast<double>(virtual_per_round) / 1000.0;
}
BENCHMARK(BM_EventcountRemoteWakeup);

void BM_RpcRoundtrip(benchmark::State& state) {
  Time virtual_per_call = 0;
  constexpr int kCalls = 64;
  for (auto _ : state) {
    Runtime rt(micro_config(2));
    // Remote allocation requests are the simplest client-visible RPC.
    const Time t = timed_run(rt, 1, [&rt]() mutable {
      for (int i = 0; i < kCalls; ++i) {
        const SvmAddr a = rt.heap(1).allocate(1024);
        rt.heap(1).deallocate(a);
      }
    });
    virtual_per_call = t / (2 * kCalls);  // allocate + free round trips
  }
  state.counters["virtual_us_per_op"] =
      static_cast<double>(virtual_per_call) / 1000.0;
}
BENCHMARK(BM_RpcRoundtrip);

void BM_ProcessMigration(benchmark::State& state) {
  // End-to-end overhead of moving work via the passive balancer: two
  // equal compute processes on node 0, with node 1 idle.  Pinned, they
  // serialize (2C); balanced, one migrates (C + migration machinery).
  Time overhead = 0;
  for (auto _ : state) {
    auto run_pair = [](bool balance) {
      Config cfg = micro_config(2);
      cfg.stack_region_pages = 64;
      cfg.sched.load_balancing = balance;
      cfg.sched.lower_threshold = 1;
      cfg.sched.upper_threshold = 1;
      cfg.sched.lb_interval = ms(2);
      Runtime rt(cfg);
      for (int i = 0; i < 2; ++i) {
        rt.spawn_on(0, [] {
          for (int s = 0; s < 200; ++s) proc::charge_compute(25);
        });
      }
      return rt.run();
    };
    auto run_single = [] {
      Config cfg = micro_config(2);
      cfg.stack_region_pages = 64;
      Runtime rt(cfg);
      rt.spawn_on(0, [] {
        for (int s = 0; s < 200; ++s) proc::charge_compute(25);
      });
      return rt.run();
    };
    benchmark::DoNotOptimize(run_pair(false));
    const Time balanced = run_pair(true);
    overhead = balanced - run_single();  // migration + probe latency
  }
  state.counters["virtual_us_per_op"] =
      static_cast<double>(overhead) / 1000.0;
}
BENCHMARK(BM_ProcessMigration);

void BM_RingBroadcast(benchmark::State& state) {
  Time virtual_per_bcast = 0;
  constexpr int kBcasts = 128;
  for (auto _ : state) {
    Runtime rt(micro_config(8));
    net::Ring& ring = rt.ring();
    sim::Simulator& sim = rt.simulator();
    for (NodeId n = 0; n < 8; ++n) {
      rpc::RemoteOp& op = rt.rpc(n);
      op.set_handler(net::MsgKind::kLoadHint,
                     [&op](net::Message&& msg) { op.ignore(msg); });
    }
    const Time start = sim.now();
    for (int i = 0; i < kBcasts; ++i) {
      // Scheduling-hint style broadcast: no reply expected.
      rt.rpc(0).broadcast(net::MsgKind::kLoadHint, std::any{}, 16,
                          rpc::BcastReply::kNone);
    }
    sim.run_until_idle();
    virtual_per_bcast = (sim.now() - start) / kBcasts;
    benchmark::DoNotOptimize(ring.nodes());
  }
  state.counters["virtual_us_per_op"] =
      static_cast<double>(virtual_per_bcast) / 1000.0;
}
BENCHMARK(BM_RingBroadcast);

}  // namespace
}  // namespace ivy::bench

BENCHMARK_MAIN();
