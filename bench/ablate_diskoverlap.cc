// Ablation — disk I/O overlap.
//
// "I/O overlaps among the lightweight processes do not exist in IVY.  An
// integrated heavyweight and lightweight process scheduler is highly
// desirable.  The disk I/O overlap may also greatly improve IVY's
// performance."
//
// In IVY a page-in stalls the whole workstation; with an integrated
// scheduler, other lightweight processes would run during the ~25 ms
// transfer.  We run the paging 3-D PDE with several processes per node
// under both models.
#include "bench/common.h"
#include "ivy/apps/pde3d.h"

namespace ivy::bench {
namespace {

void run() {
  header("Ablation: disk I/O overlap",
         "node-stalling page transfers vs an integrated scheduler");
  constexpr std::size_t kGrid = 28;
  std::printf("  paging 3-D PDE (grid=%zu^3, frames/node=300), 2 nodes,\n"
              "  4 worker processes (2 per node)\n\n",
              kGrid);
  std::printf("  %-26s %10s %12s\n", "model", "time[s]", "disk_xfers");
  for (bool stalls : {true, false}) {
    Config cfg = base_config(2);
    cfg.frames_per_node = 300;
    cfg.disk_io_stalls_node = stalls;
    auto rt = std::make_unique<Runtime>(cfg);
    apps::Pde3dParams p;
    p.m = kGrid;
    p.iterations = 4;
    p.processes = 4;
    p.skip_verify = true;
    const apps::RunOutcome out = run_pde3d(*rt, p);
    std::printf("  %-26s %10.3f %12llu\n",
                stalls ? "IVY (node stalls)" : "integrated (overlap)",
                to_seconds(out.elapsed),
                static_cast<unsigned long long>(
                    rt->stats().total(Counter::kDiskReads) +
                    rt->stats().total(Counter::kDiskWrites)));
    std::fflush(stdout);
  }
  std::printf(
      "\nExpected shape: with overlap the second process per node computes\n"
      "through its sibling's page waits, recovering a chunk of the disk\n"
      "time — the improvement the conclusion predicts.\n");
}

}  // namespace
}  // namespace ivy::bench

int main() {
  ivy::bench::run();
  return 0;
}
