// Ablation — one-level centralized vs two-level memory allocation.
//
// "A more efficient approach is two-level memory management ... each
// processor has a local allocator maintaining a big chunk of memory
// allocated from the central memory allocator. ... This approach has not
// been implemented yet, though it is expected to have better
// performance."  We implemented it; this bench quantifies the win the
// paper predicted.
#include "bench/common.h"

namespace ivy::bench {
namespace {

Time run_alloc_storm(bool two_level, std::uint64_t* remote_calls) {
  Config cfg = base_config(8);
  cfg.two_level_alloc = two_level;
  cfg.chunk_bytes = 64 * 1024;
  auto rt = std::make_unique<Runtime>(cfg);

  constexpr int kAllocsPerProc = 120;
  const Time start = rt->now();
  for (NodeId n = 0; n < 8; ++n) {
    rt->spawn_on(n, [n, &rt]() mutable {
      alloc::SharedHeap& heap = rt->heap(n);
      SvmAddr held[8] = {};
      for (int i = 0; i < kAllocsPerProc; ++i) {
        const std::size_t bytes = 512 + 512 * (i % 4);
        const SvmAddr addr = heap.allocate(bytes);
        IVY_CHECK_NE(addr, kNullSvmAddr);
        // Touch the allocation, hold a few, free the rest.
        proc::svm_write<std::uint64_t>(addr, i);
        charge(4);
        const int slot = i % 8;
        if (held[slot] != 0) heap.deallocate(held[slot]);
        held[slot] = addr;
      }
      for (SvmAddr addr : held) {
        if (addr != 0) heap.deallocate(addr);
      }
    });
  }
  const Time elapsed = rt->run();
  *remote_calls = rt->stats().total(Counter::kAllocRemoteCalls);
  (void)start;
  return elapsed;
}

void run() {
  header("Ablation: memory allocation",
         "one-level centralized first fit vs two-level chunk caching");
  std::printf("  8 nodes x 120 allocate/free cycles per process\n\n");
  std::printf("  %-12s %10s %14s\n", "allocator", "time[s]", "remote_calls");
  for (bool two_level : {false, true}) {
    std::uint64_t remote = 0;
    const Time t = run_alloc_storm(two_level, &remote);
    std::printf("  %-12s %10.3f %14llu\n",
                two_level ? "two-level" : "one-level", to_seconds(t),
                static_cast<unsigned long long>(remote));
    std::fflush(stdout);
  }
  std::printf(
      "\nExpected shape: the two-level allocator amortizes the remote\n"
      "round-trips into rare chunk refills, cutting both the remote call\n"
      "count and the completion time — the improvement the paper\n"
      "predicted for its future work.\n");
}

}  // namespace
}  // namespace ivy::bench

int main() {
  ivy::bench::run();
  return 0;
}
