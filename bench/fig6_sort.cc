// Figure 6 — "Speedup of merge-split sort".
//
// "The curve does not look very good because even with no communication
// costs, the algorithm does not yield linear speedup.  The program uses
// the best strategy for any given number of processors" (2N blocks for N
// processors).  We print the measured speedup next to the
// zero-communication algorithmic bound so the gap the paper describes is
// visible.
#include "bench/common.h"
#include "ivy/apps/msort.h"

namespace ivy::bench {
namespace {

void run() {
  header("Figure 6", "speedup of the block odd-even merge-split sort");
  constexpr std::size_t kRecords = 1 << 14;

  std::printf("  records=%zu (24-byte random-string records)\n\n", kRecords);
  std::printf("  %5s %12s %9s %16s %6s\n", "nodes", "time[s]", "speedup",
              "algorithm_bound", "ok");
  double t1 = 0.0;
  for (NodeId n : {1, 2, 3, 4, 6, 8}) {
    Config cfg = base_config(n);
    cfg.name = "fig6/nodes=" + std::to_string(n);
    apply_cli(cfg);
    auto rt = std::make_unique<Runtime>(std::move(cfg));
    apps::MsortParams p;
    p.records = kRecords;
    const apps::RunOutcome out = run_msort(*rt, p);
    export_run(*rt, out.elapsed);
    if (n == 8) print_hot_pages(*rt);
    if (n == 1) t1 = static_cast<double>(out.elapsed);
    std::printf("  %5u %12.3f %9.2f %16.2f %6s\n", n,
                to_seconds(out.elapsed),
                t1 / static_cast<double>(out.elapsed),
                apps::msort_ideal_speedup(kRecords, static_cast<int>(n)),
                out.verified ? "yes" : "NO");
    std::fflush(stdout);
  }
  std::printf(
      "\nExpected shape: both columns sub-linear, with the measured curve\n"
      "tracking below the zero-communication algorithmic bound — the\n"
      "algorithm itself (2N-1 merge rounds) limits the speedup, as the\n"
      "paper explains.\n");
}

}  // namespace
}  // namespace ivy::bench

int main(int argc, char** argv) {
  if (!ivy::bench::parse_cli(argc, argv)) return 2;
  ivy::bench::run();
  return 0;
}
