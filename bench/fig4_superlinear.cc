// Figure 4 — "Super-linear speedup": the 3-D PDE program when the data
// exceeds one node's physical memory.
//
// "the fundamental law of parallel computation assumes that every
// processor has an infinitely large memory, which is not true in
// practice. ... when the program is run on one processor there is a large
// amount of paging between the physical memory and disk.  [With more
// processors] the shared virtual memory distributes the data structure
// into individual physical memories whose cumulative size is large
// enough [and] few disk I/O data movements will occur."
//
// Configuration: the grid needs ~3*m^3*8 bytes; frames_per_node is set so
// one node holds roughly half of it.  Speedup over the 1-processor run
// then exceeds the processor count until the pooled memory fits the data.
#include "bench/common.h"
#include "ivy/apps/pde3d.h"

namespace ivy::bench {
namespace {

void run() {
  header("Figure 4", "super-linear speedup of the 3-D PDE solver");
  constexpr std::size_t kGrid = 28;           // 28^3 cells
  constexpr std::size_t kFramesPerNode = 470; // < working set of ~525 pages

  std::printf("  grid=%zu^3 (%zu KiB of shared data), frames/node=%zu\n\n",
              kGrid, 3 * kGrid * kGrid * kGrid * 8 / 1024, kFramesPerNode);

  double t1 = 0.0;
  std::printf("  %5s %12s %9s %11s %11s %6s\n", "nodes", "time[s]", "speedup",
              "disk_reads", "disk_writes", "ok");
  for (NodeId n : {1, 2, 3, 4, 6, 8}) {
    Config cfg = base_config(n);
    cfg.frames_per_node = kFramesPerNode;
    cfg.name = "fig4/nodes=" + std::to_string(n);
    apply_cli(cfg);
    auto rt = std::make_unique<Runtime>(cfg);
    apps::Pde3dParams p;
    p.m = kGrid;
    p.iterations = 4;
    p.skip_verify = n > 2;  // oracle checked on the small counts
    const apps::RunOutcome out = run_pde3d(*rt, p);
    export_run(*rt, out.elapsed);
    if (n == 8) print_hot_pages(*rt);
    if (n == 1) t1 = static_cast<double>(out.elapsed);
    std::printf("  %5u %12.3f %9.2f %11llu %11llu %6s\n", n,
                to_seconds(out.elapsed),
                t1 / static_cast<double>(out.elapsed),
                static_cast<unsigned long long>(
                    rt->stats().total(Counter::kDiskReads)),
                static_cast<unsigned long long>(
                    rt->stats().total(Counter::kDiskWrites)),
                out.verified ? "yes" : "NO");
    std::fflush(stdout);
  }
  std::printf(
      "\nExpected shape: speedup > nodes while the data set overflows one\n"
      "node's frames (disk transfers collapse once the pooled memory fits\n"
      "the problem), then settles toward ordinary near-linear speedup.\n");
}

}  // namespace
}  // namespace ivy::bench

int main(int argc, char** argv) {
  if (!ivy::bench::parse_cli(argc, argv)) return 2;
  ivy::bench::run();
  return 0;
}
