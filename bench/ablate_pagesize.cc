// Ablation — page size.
//
// "Since sending large packets ... is not much more expensive than
// sending small ones, relatively large page sizes are possible ... On
// the other hand, the larger the memory unit, the greater the chance for
// contention. ... Our experience with a page size of 1K bytes has been
// pleasant and we expect that smaller page sizes (perhaps as low as 256
// bytes) will work well also, but we are not as confident about larger
// page sizes, due to the contention problem."
#include "bench/common.h"
#include "ivy/apps/dotprod.h"
#include "ivy/apps/jacobi.h"

namespace ivy::bench {
namespace {

void run_workload(const char* name,
                  const std::function<apps::RunOutcome(Runtime&)>& body) {
  std::printf("  workload: %s\n", name);
  std::printf("  %10s %10s %12s %12s %6s\n", "page[B]", "time[s]",
              "transfers", "ring_MB", "ok");
  for (std::size_t page_size : {256u, 512u, 1024u, 2048u, 4096u}) {
    Config cfg = base_config(8);
    cfg.page_size = page_size;
    // Keep the heap a constant 16 MiB regardless of page size.
    cfg.heap_pages = static_cast<PageId>((16u << 20) / page_size);
    auto rt = std::make_unique<Runtime>(cfg);
    const apps::RunOutcome out = body(*rt);
    std::printf("  %10zu %10.3f %12llu %12.2f %6s\n", page_size,
                to_seconds(out.elapsed),
                static_cast<unsigned long long>(
                    rt->stats().total(Counter::kPageTransfers)),
                static_cast<double>(
                    rt->stats().total(Counter::kBytesOnRing)) /
                    1e6,
                out.verified ? "yes" : "NO");
    std::fflush(stdout);
  }
  std::printf("\n");
}

void run() {
  header("Ablation: page size",
         "transfer efficiency vs contention, 8 nodes");

  run_workload(
      "jacobi n=256 (page-grain contention on the shared x vector)",
      [](Runtime& rt) {
        apps::JacobiParams p;
        p.n = 256;
        p.iterations = 6;
        return run_jacobi(rt, p);
      });

  run_workload("dotprod n=32768 scattered (streams whole vectors)",
               [](Runtime& rt) {
                 apps::DotprodParams p;
                 p.n = 32768;
                 return run_dotprod(rt, p);
               });

  std::printf(
      "Expected shape: the movement-dominated workload favours larger\n"
      "pages (fewer, fatter transfers); the iterative workload pays for\n"
      "them through false sharing on the jointly written vector.\n");
}

}  // namespace
}  // namespace ivy::bench

int main() {
  ivy::bench::run();
  return 0;
}
