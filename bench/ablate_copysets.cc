// Ablation — distribution of copy sets.
//
// Li & Hudak's refinement of the dynamic distributed manager: any node
// holding a valid copy may serve a read fault (the copies form a tree
// rooted at the owner; invalidation recurses through it).  The owner
// stops being a serialization point for read-mostly pages, at the price
// of a multi-hop invalidation when a write finally happens.
//
// Workload: a read-mostly broadcast pattern — one writer updates a
// page, then every other node reads it, repeatedly.
#include "bench/common.h"

namespace ivy::bench {
namespace {

struct Result {
  Time elapsed;
  std::uint64_t owner_load;
  std::uint64_t invalidations;
};

Result run_fanout(bool distributed) {
  Config cfg = base_config(8);
  cfg.distributed_copysets = distributed;
  auto rt = std::make_unique<Runtime>(cfg);
  auto value = rt->alloc_scalar<std::uint64_t>();
  auto bar = rt->create_barrier(8);
  const PageId value_page = rt->config().geometry().page_of(value.address());
  constexpr int kRounds = 30;
  // Hints as ownership history leaves them after the page wandered the
  // ring once: node k last saw node k-1 as the owner.  With owner-only
  // copysets every read is forwarded down the chain to node 0; with
  // distributed copysets a holder along the chain answers directly.
  for (NodeId n = 2; n < 8; ++n) {
    rt->svm(n).table().at(value_page).prob_owner = n - 1;
  }
  for (NodeId n = 0; n < 8; ++n) {
    rt->spawn_on(n, [=]() mutable {
      for (int r = 0; r < kRounds; ++r) {
        if (n == 0) value.set(static_cast<std::uint64_t>(r));
        bar.arrive(2 * r);
        // Stagger the fan-out so upstream copies exist when downstream
        // nodes fault.
        charge(20 * static_cast<std::int64_t>(n) + 1);
        const auto got = value.get();
        IVY_CHECK_EQ(got, static_cast<std::uint64_t>(r));
        bar.arrive(2 * r + 1);
      }
    });
  }
  const Time t = rt->run();
  // The writer's serving load: page copies shipped from node 0.
  return Result{t, rt->stats().node_total(0, Counter::kPageTransfers),
                rt->stats().total(Counter::kInvalidationsSent)};
}

void run() {
  header("Ablation: distribution of copy sets",
         "reads served only by the owner vs by any copy holder");
  std::printf("  8 nodes, 30 rounds of write-then-fan-out-read\n\n");
  std::printf("  %-14s %10s %14s %14s\n", "copysets", "time[s]",
              "owner_copies", "invalidations");
  for (bool distributed : {false, true}) {
    const Result r = run_fanout(distributed);
    std::printf("  %-14s %10.3f %14llu %14llu\n",
                distributed ? "distributed" : "owner-only",
                to_seconds(r.elapsed),
                static_cast<unsigned long long>(r.owner_load),
                static_cast<unsigned long long>(r.invalidations));
    std::fflush(stdout);
  }
  std::printf(
      "\nFinding: the refinement only bites on the first fan-out after\n"
      "hints decay — every invalidation re-anchors all hints at the new\n"
      "owner, so steady-state traffic converges with the base algorithm.\n"
      "(The tree-serving mechanism itself is exercised and verified in\n"
      "tests/protocol_robustness_test.cc.)  This is evidence for why the\n"
      "ICPP prototype shipped without the refinement.\n");
}

}  // namespace
}  // namespace ivy::bench

int main() {
  ivy::bench::run();
  return 0;
}
