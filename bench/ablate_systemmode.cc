// Ablation — the conclusion's system-mode projection.
//
// "IVY is a user-mode implementation, so it has a lot of overhead.  A
// system-mode implementation ought to provide a substantial improvement.
// It is expected that a well-tuned system-mode implementation should
// improve the performance of remote operations and page moving by a
// factor of at least two."
//
// We test the projection by halving (and quartering) exactly the
// software components of the cost model — fault handler, server handling,
// per-message software latency, page mapping — while leaving the physics
// (ring bandwidth, disk, CPU) alone, and measuring what that does to the
// 8-node speedup of the communication-sensitive programs.
#include "bench/common.h"
#include "ivy/apps/dotprod.h"
#include "ivy/apps/jacobi.h"
#include "ivy/apps/msort.h"

namespace ivy::bench {
namespace {

Config tuned_config(NodeId nodes, int divisor) {
  Config cfg = base_config(nodes);
  cfg.costs.fault_handler /= divisor;
  cfg.costs.fault_server /= divisor;
  cfg.costs.msg_latency /= divisor;
  cfg.costs.map_page /= divisor;
  return cfg;
}

template <typename Fn>
void sweep(const char* name, Fn run) {
  std::printf("  workload: %s\n", name);
  std::printf("  %-22s %12s %12s %9s\n", "implementation", "T(1)[s]",
              "T(8)[s]", "speedup");
  for (int divisor : {1, 2, 4}) {
    Time t1 = 0, t8 = 0;
    for (NodeId nodes : {1u, 8u}) {
      auto rt = std::make_unique<Runtime>(tuned_config(nodes, divisor));
      for (NodeId n = 0; n < nodes; ++n) {
        // Retransmission cadence is software too.
        rt->rpc(n).set_request_timeout(sec(2) / divisor);
        rt->rpc(n).set_check_interval(ms(500) / divisor);
      }
      const apps::RunOutcome out = run(*rt);
      IVY_CHECK(out.verified);
      (nodes == 1 ? t1 : t8) = out.elapsed;
    }
    const char* label = divisor == 1   ? "user-mode (paper)"
                        : divisor == 2 ? "system-mode (2x sw)"
                                       : "well-tuned (4x sw)";
    std::printf("  %-22s %12.3f %12.3f %9.2f\n", label, to_seconds(t1),
                to_seconds(t8),
                static_cast<double>(t1) / static_cast<double>(t8));
    std::fflush(stdout);
  }
  std::printf("\n");
}

void run() {
  header("Ablation: user-mode vs system-mode software overheads",
         "the conclusion's 'factor of at least two' projection");

  sweep("jacobi n=256 x6 iterations", [](Runtime& rt) {
    apps::JacobiParams p;
    p.n = 256;
    p.iterations = 6;
    return run_jacobi(rt, p);
  });
  sweep("dotprod n=32768 scattered (communication-bound)", [](Runtime& rt) {
    apps::DotprodParams p;
    p.n = 32768;
    return run_dotprod(rt, p);
  });
  sweep("merge-split sort 16k records", [](Runtime& rt) {
    apps::MsortParams p;
    p.records = 1 << 14;
    return run_msort(rt, p);
  });

  std::printf(
      "Expected shape: compute-bound programs barely move; the\n"
      "communication-bound ones (dotprod, sort) gain the most — cheaper\n"
      "software pushes their curves toward the hardware's limits, which\n"
      "is what the paper predicted a system-mode port would buy.\n");
}

}  // namespace
}  // namespace ivy::bench

int main() {
  ivy::bench::run();
  return 0;
}
