// Table 1 — "Disk page transfers": total disk I/O page transfers of each
// of the first six iterations of the 3-D PDE program, on one and on two
// processors.
//
// The paper's observations this regenerates:
//   - one processor: heavy, roughly steady paging every iteration (the
//     working set never fits);
//   - two processors: the *first* iteration pages heavily (the data was
//     initialized on one processor and must both page against its small
//     memory and migrate to the other node), then the count *decreases
//     gradually* as the shared virtual memory spreads the data into the
//     combined physical memory and the LRU keeps the recently moved pages
//     resident.
#include "bench/common.h"
#include "ivy/apps/pde3d.h"

namespace ivy::bench {
namespace {

std::vector<std::uint64_t> disk_transfers_per_iteration(NodeId nodes,
                                                        std::size_t grid,
                                                        std::size_t frames,
                                                        int iterations) {
  Config cfg = base_config(nodes);
  cfg.frames_per_node = frames;
  cfg.name = "table1/nodes=" + std::to_string(nodes);
  apply_cli(cfg);
  auto rt = std::make_unique<Runtime>(cfg);
  apps::Pde3dParams p;
  p.m = grid;
  p.iterations = iterations;
  p.mark_epochs = true;
  p.skip_verify = true;
  const apps::RunOutcome out = run_pde3d(*rt, p);
  export_run(*rt, out.elapsed);
  print_hot_pages(*rt);
  std::vector<std::uint64_t> per_iter;
  for (std::size_t e = 0; e < rt->stats().epoch_count(); ++e) {
    const CounterBlock& blk = rt->stats().epoch(e);
    per_iter.push_back(blk.get(Counter::kDiskReads) +
                       blk.get(Counter::kDiskWrites));
  }
  return per_iter;
}

void run() {
  header("Table 1", "disk page transfers of each iteration, 3-D PDE");
  constexpr std::size_t kGrid = 28;
  constexpr std::size_t kFrames = 272;
  constexpr int kIterations = 6;

  std::printf("  grid=%zu^3, frames/node=%zu, first %d iterations\n\n",
              kGrid, kFrames, kIterations);
  std::printf("  %-14s", "iteration");
  for (int i = 1; i <= kIterations; ++i) std::printf(" %8d", i);
  std::printf("\n");

  for (NodeId nodes : {1u, 2u}) {
    const auto per_iter =
        disk_transfers_per_iteration(nodes, kGrid, kFrames, kIterations);
    std::printf("  %u processor%s ", nodes, nodes == 1 ? " " : "s");
    for (std::uint64_t v : per_iter) {
      std::printf(" %8llu", static_cast<unsigned long long>(v));
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf(
      "\nExpected shape (paper: 699.. steady on 1 processor; 1452 then\n"
      "gradually decreasing on 2): the 1-processor row stays high every\n"
      "iteration; the 2-processor row starts higher (initialization on one\n"
      "node) and decays toward zero as pages spread across the cluster.\n");
}

}  // namespace
}  // namespace ivy::bench

int main(int argc, char** argv) {
  if (!ivy::bench::parse_cli(argc, argv)) return 2;
  ivy::bench::run();
  return 0;
}
