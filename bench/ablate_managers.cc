// Ablation — coherence manager algorithms.
//
// The paper implemented three algorithms "for experimental purposes" (the
// improved centralized manager, the fixed distributed manager, and the
// dynamic distributed manager) and the remote-operation module's
// broadcast support enables a fourth baseline.  This bench runs the same
// workloads under each and reports time and protocol traffic, showing
// why "the fixed distributed manager algorithm, the dynamic distributed
// manager algorithm, and their variations are more appropriate than
// others": the centralized manager concentrates forwarding on one node,
// and the broadcast manager interrupts every processor on every fault.
#include "bench/common.h"
#include "ivy/apps/dotprod.h"
#include "ivy/apps/jacobi.h"

namespace ivy::bench {
namespace {

void run_workload(const char* name,
                  const std::function<apps::RunOutcome(Runtime&)>& body) {
  std::printf("  workload: %s\n", name);
  std::printf("  %-20s %10s %9s %9s %9s %10s %6s\n", "manager", "time[s]",
              "faults", "forwards", "bcasts", "messages", "ok");
  for (auto kind : {svm::ManagerKind::kCentralized,
                    svm::ManagerKind::kFixedDistributed,
                    svm::ManagerKind::kDynamicDistributed,
                    svm::ManagerKind::kBroadcast}) {
    Config cfg = base_config(8);
    apply_cli(cfg);
    cfg.manager = kind;  // the sweep dimension; --manager does not apply
    auto rt = std::make_unique<Runtime>(cfg);
    const apps::RunOutcome out = body(*rt);
    const Stats& stats = rt->stats();
    std::printf("  %-20s %10.3f %9llu %9llu %9llu %10llu %6s\n",
                svm::to_string(kind), to_seconds(out.elapsed),
                static_cast<unsigned long long>(
                    stats.total(Counter::kReadFaults) +
                    stats.total(Counter::kWriteFaults)),
                static_cast<unsigned long long>(
                    stats.total(Counter::kForwards)),
                static_cast<unsigned long long>(
                    stats.total(Counter::kBroadcasts)),
                static_cast<unsigned long long>(
                    stats.total(Counter::kMessages)),
                out.verified ? "yes" : "NO");
    if (oracle::Oracle* o = rt->oracle()) {
      std::printf("  %s\n", o->brief().c_str());
    }
    std::fflush(stdout);
  }
  std::printf("\n");
}

void run() {
  header("Ablation: coherence managers",
         "centralized vs fixed vs dynamic vs broadcast, 8 nodes");

  run_workload("jacobi n=256 (iterative read sharing + partitioned writes)",
               [](Runtime& rt) {
                 apps::JacobiParams p;
                 p.n = 256;
                 p.iterations = 6;
                 return run_jacobi(rt, p);
               });

  run_workload("dotprod n=32768 scattered (movement-dominated)",
               [](Runtime& rt) {
                 apps::DotprodParams p;
                 p.n = 32768;
                 return run_dotprod(rt, p);
               });
}

}  // namespace
}  // namespace ivy::bench

int main(int argc, char** argv) {
  if (!ivy::bench::parse_cli(argc, argv)) return 2;
  ivy::bench::run();
  return 0;
}
