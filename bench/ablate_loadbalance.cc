// Ablation — passive load balancing thresholds.
//
// "Experiments ... show that the algorithm will not work well if the
// number of ready processes on each processor is used as the only
// criterion ... A better way is to use the number of processes (including
// both ready and suspended) controlled by thresholds.  When such a number
// is less than the lower threshold, the processor will try to ask for
// work.  When such a number is greater than the upper threshold, the
// processor will migrate processes to other processors upon requests."
//
// Workload: 32 compute-bound processes all spawned on node 0 with system
// scheduling; the balancer must spread them across 8 nodes.
#include "bench/common.h"

namespace ivy::bench {
namespace {

struct LbResult {
  Time elapsed;
  std::uint64_t migrations;
  std::uint64_t rejects;
};

LbResult run_storm(bool balancing, int lower, int upper) {
  Config cfg = base_config(8);
  cfg.stack_region_pages = 256;
  cfg.sched.load_balancing = balancing;
  cfg.sched.lower_threshold = lower;
  cfg.sched.upper_threshold = upper;
  cfg.sched.lb_interval = ms(20);
  auto rt = std::make_unique<Runtime>(cfg);

  constexpr int kProcs = 32;
  auto done = rt->alloc_array<std::uint32_t>(kProcs);
  for (int i = 0; i < kProcs; ++i) {
    rt->spawn_on(0, [i, done]() mutable {
      // A second of virtual computation, preemptible so the process is
      // migratable while ready.
      for (int step = 0; step < 1000; ++step) charge(25);
      done[static_cast<std::size_t>(i)] = 1;
    });
  }
  const Time elapsed = rt->run();
  for (int i = 0; i < kProcs; ++i) {
    IVY_CHECK_EQ(rt->host_read(done, static_cast<std::size_t>(i)), 1u);
  }
  return LbResult{elapsed, rt->stats().total(Counter::kMigrations),
                  rt->stats().total(Counter::kMigrationRejects)};
}

void run() {
  header("Ablation: passive load balancing",
         "threshold pairs; 32 processes spawned on one of 8 nodes");
  std::printf("  %-22s %10s %11s %9s\n", "policy (lower/upper)", "time[s]",
              "migrations", "rejects");

  const LbResult off = run_storm(false, 1, 2);
  std::printf("  %-22s %10.3f %11llu %9llu\n", "off", to_seconds(off.elapsed),
              static_cast<unsigned long long>(off.migrations),
              static_cast<unsigned long long>(off.rejects));
  struct Pair {
    int lower, upper;
  };
  for (Pair p : {Pair{1, 1}, Pair{1, 2}, Pair{2, 4}, Pair{2, 8}, Pair{4, 16}}) {
    const LbResult r = run_storm(true, p.lower, p.upper);
    std::printf("  on  %2d/%-16d %10.3f %11llu %9llu\n", p.lower, p.upper,
                to_seconds(r.elapsed),
                static_cast<unsigned long long>(r.migrations),
                static_cast<unsigned long long>(r.rejects));
    std::fflush(stdout);
  }
  std::printf(
      "\nExpected shape: without balancing everything runs serially on\n"
      "node 0; with it the work spreads (~time/8 plus migration cost).\n"
      "A high upper threshold strands work on the loaded node; a very low\n"
      "one causes churn and rejected requests.\n");
}

}  // namespace
}  // namespace ivy::bench

int main() {
  ivy::bench::run();
  return 0;
}
