// Figure 5 — "Speedups": the benchmark suite's speedup curves over 1..8
// processors.  The paper's qualitative claims this regenerates:
//   - linear equation solver, matrix multiply, TSP, 3-D PDE: almost
//     linear speedup (TSP may exceed linear through branch-and-bound
//     anomalies, which the paper discusses);
//   - dot-product: poor speedup — "the weak side of the shared virtual
//     memory system; dot-product does little computation but requires a
//     lot of data movement".
#include "bench/common.h"
#include "ivy/apps/dotprod.h"
#include "ivy/apps/jacobi.h"
#include "ivy/apps/matmul.h"
#include "ivy/apps/pde3d.h"
#include "ivy/apps/tsp.h"

namespace ivy::bench {
namespace {

const std::vector<NodeId> kNodes = {1, 2, 4, 6, 8};

void run() {
  header("Figure 5", "speedups of the benchmark programs (1..8 processors)");

  speedup_sweep("jacobi", kNodes, base_config, [](Runtime& rt) {
    apps::JacobiParams p;
    p.n = 384;
    p.iterations = 12;
    return run_jacobi(rt, p);
  });

  speedup_sweep("matmul", kNodes, base_config, [](Runtime& rt) {
    apps::MatmulParams p;
    p.n = 96;
    return run_matmul(rt, p);
  });

  speedup_sweep("pde3d", kNodes, base_config, [](Runtime& rt) {
    apps::Pde3dParams p;
    p.m = 40;  // in-memory instance (Figure 4 covers the paging regime)
    p.iterations = 10;
    return run_pde3d(rt, p);
  });

  speedup_sweep("tsp", kNodes, base_config, [](Runtime& rt) {
    apps::TspParams p;
    p.cities = 12;  // the paper ran 12-13 city instances
    return run_tsp(rt, p);
  });

  speedup_sweep("dotprod", kNodes, base_config, [](Runtime& rt) {
    apps::DotprodParams p;
    p.n = 32768;
    return run_dotprod(rt, p);
  });

  // When observability artifacts were requested, finish with a run that
  // exercises the full event vocabulary — system scheduling plus passive
  // load balancing adds process migrations to the faults, invalidations
  // and ownership transfers of the plain sweeps.  Being last, it is the
  // run the exported trace/metrics files describe.
  if (cli().any()) {
    speedup_sweep(
        "jacobi-lb", {8},
        [](NodeId n) {
          Config cfg = base_config(n);
          cfg.sched.load_balancing = true;
          // All 16 workers start on node 0; its stack region must hold
          // them all before the balancer spreads them.
          cfg.stack_region_pages = 256;
          return cfg;
        },
        [](Runtime& rt) {
          apps::JacobiParams p;
          p.n = 192;
          p.iterations = 8;
          p.processes = 16;  // node 0 overloads; idle nodes pull work
          p.system_scheduling = true;
          p.mark_epochs = true;
          return run_jacobi(rt, p);
        });
  }

  std::printf(
      "\nExpected shape: jacobi/matmul/pde3d near-linear; tsp speeds up\n"
      "(search anomalies can push it above or below linear, as the paper\n"
      "notes); dotprod stays near or below 1.\n");
}

}  // namespace
}  // namespace ivy::bench

int main(int argc, char** argv) {
  if (!ivy::bench::parse_cli(argc, argv)) return 2;
  ivy::bench::run();
  return 0;
}
