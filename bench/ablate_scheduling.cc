// Ablation — manual vs system scheduling.
//
// "The programmer can choose how to schedule processes ... There are two
// options: manual scheduling and system scheduling.  If system scheduling
// is used, the programmer only needs to create and terminate processes.
// But if manual scheduling is chosen, the programmer needs to tell where
// and when a process goes."
//
// Manual placement puts worker p on processor p.  System scheduling
// spawns every worker on the contact processor and relies on the null
// process's passive load balancing to spread them — costing migrations
// (PCB + stack handoff) and a placement that ignores data affinity.
#include "bench/common.h"
#include "ivy/apps/jacobi.h"
#include "ivy/apps/matmul.h"

namespace ivy::bench {
namespace {

template <typename Params, typename Fn>
void compare(const char* name, Params params, Fn run, int processes) {
  std::printf("  workload: %s, %d processes on 8 nodes\n", name, processes);
  std::printf("  %-10s %10s %11s %9s\n", "placement", "time[s]",
              "migrations", "ok");
  for (bool system : {false, true}) {
    Config cfg = base_config(8);
    cfg.stack_region_pages = 256;
    cfg.sched.load_balancing = system;
    cfg.sched.lower_threshold = 1;
    cfg.sched.upper_threshold = 2;
    cfg.sched.lb_interval = ms(20);
    auto rt = std::make_unique<Runtime>(cfg);
    params.system_scheduling = system;
    params.processes = processes;
    const apps::RunOutcome out = run(*rt, params);
    std::printf("  %-10s %10.3f %11llu %9s\n", system ? "system" : "manual",
                to_seconds(out.elapsed),
                static_cast<unsigned long long>(
                    rt->stats().total(Counter::kMigrations)),
                out.verified ? "yes" : "NO");
    std::fflush(stdout);
  }
  std::printf("\n");
}

void run() {
  header("Ablation: manual vs system scheduling",
         "programmer placement vs passive load balancing");
  apps::JacobiParams jp;
  jp.n = 256;
  jp.iterations = 6;
  compare("jacobi n=256", jp, apps::run_jacobi, 16);

  apps::MatmulParams mp;
  mp.n = 96;
  compare("matmul n=96", mp, apps::run_matmul, 16);

  std::printf(
      "Expected shape: system scheduling reaches a similar spread (the\n"
      "balancer migrates most workers off the contact node) at the cost\n"
      "of the migrations themselves and a start-up ramp; manual placement\n"
      "wins when the programmer's partition is already balanced, which is\n"
      "exactly why the paper's benchmarks use it.\n");
}

}  // namespace
}  // namespace ivy::bench

int main() {
  ivy::bench::run();
  return 0;
}
