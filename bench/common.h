// Shared helpers for the per-figure/table reproduction harnesses.
//
// Every binary prints a self-contained report: the paper artifact it
// regenerates, the configuration, and the measured series.  Times are
// *virtual* (simulated 1988 hardware); speedups are ratios of virtual
// times exactly as the paper computes them.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ivy/apps/workload.h"
#include "ivy/ivy.h"
#include "ivy/runtime/flags.h"

namespace ivy::bench {

inline Config base_config(NodeId nodes) {
  Config cfg;
  cfg.nodes = nodes;
  cfg.heap_pages = 24576;  // 24 MiB shared heap
  cfg.stack_region_pages = 64;
  return cfg;
}

// --- command line ----------------------------------------------------------
//
// Every harness accepts the shared observability flags (see
// ivy/runtime/flags.h): --trace-out, --metrics-out, --trace-capacity,
// --hot-pages, --oracle, --manager.  A bench executes many runs; each
// traced run overwrites the output files, so the artifacts describe the
// LAST run (harnesses order their sweeps so that is the most
// interesting one).

inline runtime::ObsFlags& cli() {
  static runtime::ObsFlags options;
  return options;
}

/// Parses the shared flags; returns false (after printing usage) on an
/// unknown flag, a bad value, or a leftover argument (benches take no
/// positionals).
inline bool parse_cli(int argc, char** argv) {
  std::string error;
  int remaining = argc;
  const bool ok =
      runtime::parse_obs_flags(&remaining, argv, &cli(), &error) &&
      remaining == 1;
  if (!ok) {
    if (!error.empty()) std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
    std::fprintf(stderr, "usage: %s %s\n", argv[0],
                 runtime::obs_flags_usage());
  }
  return ok;
}

/// Arms tracing/oracle/manager-override on a config as requested.
inline void apply_cli(Config& cfg) { cli().apply(cfg); }

/// Writes the requested artifacts for one finished run (overwrites) and
/// prints the oracle's one-line verdict when one is armed.
inline void export_run(Runtime& rt, Time elapsed) {
  if (!cli().trace_out.empty()) rt.write_trace(cli().trace_out);
  if (!cli().metrics_out.empty()) rt.write_metrics(cli().metrics_out, elapsed);
  if (!cli().prof_out.empty()) rt.write_prof(cli().prof_out);
  if (oracle::Oracle* o = rt.oracle()) {
    std::printf("  %s\n", o->brief().c_str());
  }
}

/// Prints the hot-page table for a finished run when requested.
inline void print_hot_pages(Runtime& rt) {
  if (cli().hot_pages == 0 || !rt.tracer().enabled()) return;
  const std::string report = trace::hot_page_report(rt.tracer(),
                                                    cli().hot_pages);
  if (report.empty()) return;
  std::printf("  hot pages (top %zu, ping-pong suspects first):\n%s",
              cli().hot_pages, report.c_str());
}

struct SweepPoint {
  NodeId nodes;
  Time elapsed;
  bool verified;
};

/// Runs `body(rt)` for each node count and prints a speedup table.
inline std::vector<SweepPoint> speedup_sweep(
    const char* program, const std::vector<NodeId>& node_counts,
    const std::function<Config(NodeId)>& make_config,
    const std::function<apps::RunOutcome(Runtime&)>& body) {
  std::vector<SweepPoint> points;
  double t1 = 0.0;
  std::printf("  %-10s %5s %12s %9s %6s\n", program, "nodes", "time[s]",
              "speedup", "ok");
  for (NodeId n : node_counts) {
    Config cfg = make_config(n);
    cfg.name = std::string(program) + "/nodes=" + std::to_string(n);
    apply_cli(cfg);
    auto rt = std::make_unique<Runtime>(std::move(cfg));
    const apps::RunOutcome out = body(*rt);
    if (n == node_counts.front()) t1 = static_cast<double>(out.elapsed);
    const double speedup = t1 / static_cast<double>(out.elapsed);
    std::printf("  %-10s %5u %12.3f %9.2f %6s\n", program, n,
                to_seconds(out.elapsed), speedup, out.verified ? "yes" : "NO");
    std::fflush(stdout);
    export_run(*rt, out.elapsed);
    if (n == node_counts.back()) print_hot_pages(*rt);
    points.push_back(SweepPoint{n, out.elapsed, out.verified});
  }
  return points;
}

inline void header(const char* artifact, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", artifact, description);
  std::printf("==============================================================\n");
}

}  // namespace ivy::bench
