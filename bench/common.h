// Shared helpers for the per-figure/table reproduction harnesses.
//
// Every binary prints a self-contained report: the paper artifact it
// regenerates, the configuration, and the measured series.  Times are
// *virtual* (simulated 1988 hardware); speedups are ratios of virtual
// times exactly as the paper computes them.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ivy/apps/workload.h"
#include "ivy/ivy.h"

namespace ivy::bench {

inline Config base_config(NodeId nodes) {
  Config cfg;
  cfg.nodes = nodes;
  cfg.heap_pages = 24576;  // 24 MiB shared heap
  cfg.stack_region_pages = 64;
  return cfg;
}

// --- command line ----------------------------------------------------------
//
// Every harness accepts the same observability flags:
//   --trace-out PATH      Chrome trace_event JSON of the last run
//   --metrics-out PATH    counters/histograms JSON (CSV if PATH ends .csv)
//   --trace-capacity N    event ring capacity (default 262144)
//   --hot-pages N         print the top-N hot-page table after each sweep
// A bench executes many runs; each traced run overwrites the output
// files, so the artifacts describe the LAST run (harnesses order their
// sweeps so that is the most interesting one).

struct CliOptions {
  std::string trace_out;
  std::string metrics_out;
  std::size_t trace_capacity = 1 << 18;
  std::size_t hot_pages = 0;

  [[nodiscard]] bool tracing() const {
    return !trace_out.empty() || hot_pages > 0;
  }
  [[nodiscard]] bool any() const {
    return tracing() || !metrics_out.empty();
  }
};

inline CliOptions& cli() {
  static CliOptions options;
  return options;
}

/// Parses the shared flags; returns false (after printing usage) on an
/// unknown flag or missing argument.
inline bool parse_cli(int argc, char** argv) {
  CliOptions& opt = cli();
  bool ok = true;
  for (int i = 1; i < argc && ok; ++i) {
    const char* arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        ok = false;
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--trace-out") == 0) {
      if (const char* v = value()) opt.trace_out = v;
    } else if (std::strcmp(arg, "--metrics-out") == 0) {
      if (const char* v = value()) opt.metrics_out = v;
    } else if (std::strcmp(arg, "--trace-capacity") == 0) {
      if (const char* v = value()) {
        opt.trace_capacity = std::strtoull(v, nullptr, 10);
        ok = opt.trace_capacity > 0;
      }
    } else if (std::strcmp(arg, "--hot-pages") == 0) {
      if (const char* v = value()) opt.hot_pages = std::strtoull(v, nullptr, 10);
    } else {
      ok = false;
    }
  }
  if (!ok) {
    std::fprintf(stderr,
                 "usage: %s [--trace-out PATH] [--metrics-out PATH]\n"
                 "          [--trace-capacity N] [--hot-pages N]\n",
                 argv[0]);
  }
  return ok;
}

/// Arms tracing on a config when any observability output is requested.
inline void apply_cli(Config& cfg) {
  if (cli().tracing() || !cli().metrics_out.empty()) {
    cfg.trace_enabled = true;
    cfg.trace_capacity = cli().trace_capacity;
  }
}

/// Writes the requested artifacts for one finished run (overwrites).
inline void export_run(Runtime& rt, Time elapsed) {
  if (!cli().trace_out.empty()) rt.write_trace(cli().trace_out);
  if (!cli().metrics_out.empty()) rt.write_metrics(cli().metrics_out, elapsed);
}

/// Prints the hot-page table for a finished run when requested.
inline void print_hot_pages(Runtime& rt) {
  if (cli().hot_pages == 0 || !rt.tracer().enabled()) return;
  const std::string report = trace::hot_page_report(rt.tracer(),
                                                    cli().hot_pages);
  if (report.empty()) return;
  std::printf("  hot pages (top %zu, ping-pong suspects first):\n%s",
              cli().hot_pages, report.c_str());
}

struct SweepPoint {
  NodeId nodes;
  Time elapsed;
  bool verified;
};

/// Runs `body(rt)` for each node count and prints a speedup table.
inline std::vector<SweepPoint> speedup_sweep(
    const char* program, const std::vector<NodeId>& node_counts,
    const std::function<Config(NodeId)>& make_config,
    const std::function<apps::RunOutcome(Runtime&)>& body) {
  std::vector<SweepPoint> points;
  double t1 = 0.0;
  std::printf("  %-10s %5s %12s %9s %6s\n", program, "nodes", "time[s]",
              "speedup", "ok");
  for (NodeId n : node_counts) {
    Config cfg = make_config(n);
    cfg.name = std::string(program) + "/nodes=" + std::to_string(n);
    apply_cli(cfg);
    auto rt = std::make_unique<Runtime>(std::move(cfg));
    const apps::RunOutcome out = body(*rt);
    if (n == node_counts.front()) t1 = static_cast<double>(out.elapsed);
    const double speedup = t1 / static_cast<double>(out.elapsed);
    std::printf("  %-10s %5u %12.3f %9.2f %6s\n", program, n,
                to_seconds(out.elapsed), speedup, out.verified ? "yes" : "NO");
    std::fflush(stdout);
    export_run(*rt, out.elapsed);
    if (n == node_counts.back()) print_hot_pages(*rt);
    points.push_back(SweepPoint{n, out.elapsed, out.verified});
  }
  return points;
}

inline void header(const char* artifact, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", artifact, description);
  std::printf("==============================================================\n");
}

}  // namespace ivy::bench
