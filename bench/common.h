// Shared helpers for the per-figure/table reproduction harnesses.
//
// Every binary prints a self-contained report: the paper artifact it
// regenerates, the configuration, and the measured series.  Times are
// *virtual* (simulated 1988 hardware); speedups are ratios of virtual
// times exactly as the paper computes them.
#pragma once

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ivy/apps/workload.h"
#include "ivy/ivy.h"

namespace ivy::bench {

inline Config base_config(NodeId nodes) {
  Config cfg;
  cfg.nodes = nodes;
  cfg.heap_pages = 24576;  // 24 MiB shared heap
  cfg.stack_region_pages = 64;
  return cfg;
}

struct SweepPoint {
  NodeId nodes;
  Time elapsed;
  bool verified;
};

/// Runs `body(rt)` for each node count and prints a speedup table.
inline std::vector<SweepPoint> speedup_sweep(
    const char* program, const std::vector<NodeId>& node_counts,
    const std::function<Config(NodeId)>& make_config,
    const std::function<apps::RunOutcome(Runtime&)>& body) {
  std::vector<SweepPoint> points;
  double t1 = 0.0;
  std::printf("  %-10s %5s %12s %9s %6s\n", program, "nodes", "time[s]",
              "speedup", "ok");
  for (NodeId n : node_counts) {
    auto rt = std::make_unique<Runtime>(make_config(n));
    const apps::RunOutcome out = body(*rt);
    if (n == node_counts.front()) t1 = static_cast<double>(out.elapsed);
    const double speedup = t1 / static_cast<double>(out.elapsed);
    std::printf("  %-10s %5u %12.3f %9.2f %6s\n", program, n,
                to_seconds(out.elapsed), speedup, out.verified ? "yes" : "NO");
    std::fflush(stdout);
    points.push_back(SweepPoint{n, out.elapsed, out.verified});
  }
  return points;
}

inline void header(const char* artifact, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", artifact, description);
  std::printf("==============================================================\n");
}

}  // namespace ivy::bench
