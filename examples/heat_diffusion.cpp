// Heat diffusion on a 2-D plate — a domain-specific example in the
// spirit of the paper's PDE workloads, written directly against the
// public API (not the apps library).
//
// A square plate has fixed hot/cold edges; interior cells relax by
// Jacobi iteration until the update norm falls under a tolerance.  The
// grid lives in the shared virtual memory, partitioned by row bands; only
// the band boundaries travel between processors each sweep.
//
//   ./build/examples/heat_diffusion [nodes] [grid] [max_iters]
//                                   [--trace-out t.json] [--metrics-out m.json]
//                                   [--oracle warn|strict]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "ivy/ivy.h"
#include "ivy/runtime/flags.h"

int main(int argc, char** argv) {
  ivy::runtime::ObsFlags flags;
  std::string error;
  if (!ivy::runtime::parse_obs_flags(&argc, &argv[0], &flags, &error)) {
    std::fprintf(stderr, "%s\nusage: %s [nodes] [grid] [max_iters] %s\n",
                 error.c_str(), argv[0], ivy::runtime::obs_flags_usage());
    return 2;
  }
  int npos = 0;
  std::size_t positional[3] = {4, 64, 40};
  for (int i = 1; i < argc && npos < 3; ++i) {
    positional[npos++] = static_cast<std::size_t>(std::atoi(argv[i]));
  }
  const ivy::NodeId nodes = static_cast<ivy::NodeId>(positional[0]);
  const std::size_t grid = positional[1];
  const int max_iters = static_cast<int>(positional[2]);

  ivy::Config cfg;
  cfg.nodes = nodes;
  cfg.heap_pages = 16384;
  cfg.name = "heat_diffusion";
  flags.apply(cfg);
  ivy::Runtime rt(cfg);

  auto temp = rt.alloc_array<double>(grid * grid);
  auto next = rt.alloc_array<double>(grid * grid);
  auto norms = rt.alloc_array<double>(nodes);
  auto barrier = rt.create_barrier(static_cast<int>(nodes));

  const auto at = [grid](std::size_t r, std::size_t c) { return r * grid + c; };

  for (ivy::NodeId p = 0; p < nodes; ++p) {
    rt.spawn_on(p, [=, &rt]() mutable {
      // Row band of this worker (interior rows only).
      const std::size_t rows = grid - 2;
      const std::size_t base = rows / nodes;
      const std::size_t extra = rows % nodes;
      const std::size_t begin = 1 + p * base + std::min<std::size_t>(p, extra);
      const std::size_t end = begin + base + (p < extra ? 1 : 0);

      // Boundary conditions: hot west edge, cold elsewhere.  Each worker
      // initializes its own band (unlike the paper's single-node init,
      // this spreads ownership immediately).
      for (std::size_t r = begin; r < end; ++r) {
        for (std::size_t c = 0; c < grid; ++c) {
          temp[at(r, c)] = 0.0;
        }
        temp[at(r, 0)] = 100.0;
        next[at(r, 0)] = 100.0;
      }
      if (p == 0) {
        for (std::size_t c = 0; c < grid; ++c) {
          temp[at(0, c)] = 100.0;
          next[at(0, c)] = 100.0;
          temp[at(grid - 1, c)] = 0.0;
          next[at(grid - 1, c)] = 0.0;
        }
      }
      barrier.arrive(0);

      for (int it = 0; it < max_iters; ++it) {
        double norm = 0.0;
        for (std::size_t r = begin; r < end; ++r) {
          for (std::size_t c = 1; c + 1 < grid; ++c) {
            const double v = 0.25 * (static_cast<double>(temp[at(r - 1, c)]) +
                                     static_cast<double>(temp[at(r + 1, c)]) +
                                     static_cast<double>(temp[at(r, c - 1)]) +
                                     static_cast<double>(temp[at(r, c + 1)]));
            next[at(r, c)] = v;
            norm += std::abs(v - static_cast<double>(temp[at(r, c)]));
            ivy::charge(2);
          }
        }
        norms[p] = norm;
        barrier.arrive(1 + 2 * it);
        for (std::size_t r = begin; r < end; ++r) {
          for (std::size_t c = 1; c + 1 < grid; ++c) {
            temp[at(r, c)] = static_cast<double>(next[at(r, c)]);
          }
        }
        barrier.arrive(2 + 2 * it);
      }
      (void)rt;
    });
  }
  const ivy::Time elapsed = rt.run();

  double norm = 0.0;
  for (ivy::NodeId p = 0; p < nodes; ++p) norm += rt.host_read(norms, p);
  const double centre =
      rt.host_read(temp, at(grid / 2, grid / 2));
  std::printf("grid %zux%zu on %u processors: %d sweeps in %.3f virtual s\n",
              grid, grid, nodes, max_iters, ivy::to_seconds(elapsed));
  std::printf("final update norm %.6f, centre temperature %.3f\n", norm,
              centre);
  std::printf("page transfers: %llu, ring bytes: %.2f MB\n",
              static_cast<unsigned long long>(
                  rt.stats().total(ivy::Counter::kPageTransfers)),
              static_cast<double>(
                  rt.stats().total(ivy::Counter::kBytesOnRing)) /
                  1e6);
  if (!flags.trace_out.empty() && rt.write_trace(flags.trace_out)) {
    std::printf("wrote %s (open in Perfetto / chrome://tracing)\n",
                flags.trace_out.c_str());
  }
  if (!flags.metrics_out.empty() &&
      rt.write_metrics(flags.metrics_out, elapsed)) {
    std::printf("wrote %s\n", flags.metrics_out.c_str());
  }
  if (!flags.prof_out.empty() && rt.write_prof(flags.prof_out)) {
    std::printf("wrote %s (speedscope / flamegraph.pl collapsed)\n",
                flags.prof_out.c_str());
  }
  if (ivy::oracle::Oracle* o = rt.oracle()) {
    std::printf("%s\n", o->brief().c_str());
  }
  return 0;
}
