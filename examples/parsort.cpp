// Parallel sort CLI — runs the paper's block odd-even merge-split sort
// from the apps library on a chosen machine size and prints the measured
// behaviour, including the comparison against the algorithm's own
// zero-communication bound (the distinction Figure 6 makes).
//
//   ./build/examples/parsort [nodes] [records]
#include <cstdio>
#include <cstdlib>

#include "ivy/apps/msort.h"

int main(int argc, char** argv) {
  const ivy::NodeId nodes =
      argc > 1 ? static_cast<ivy::NodeId>(std::atoi(argv[1])) : 4;
  const std::size_t records =
      argc > 2 ? static_cast<std::size_t>(std::atol(argv[2])) : 8192;

  ivy::Config cfg;
  cfg.nodes = nodes;
  cfg.heap_pages = 16384;
  ivy::Runtime rt(cfg);

  ivy::apps::MsortParams params;
  params.records = records;
  const ivy::apps::RunOutcome out = ivy::apps::run_msort(rt, params);

  std::printf("%s — %s\n", out.detail.c_str(),
              out.verified ? "sorted correctly" : "SORT FAILED");
  std::printf("%zu records as 2x%u blocks on %u processors: %.3f virtual s\n",
              records, nodes, nodes, ivy::to_seconds(out.elapsed));
  std::printf("algorithmic speedup bound at this width: %.2f\n",
              ivy::apps::msort_ideal_speedup(records, static_cast<int>(nodes)));
  std::printf("page transfers: %llu, eventcount waits: %llu\n",
              static_cast<unsigned long long>(
                  rt.stats().total(ivy::Counter::kPageTransfers)),
              static_cast<unsigned long long>(
                  rt.stats().total(ivy::Counter::kEcWaits)));
  return out.verified ? 0 : 1;
}
