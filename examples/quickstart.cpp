// Quickstart: the smallest complete IVY program.
//
// Eight processes on four simulated processors share one array through
// the shared virtual memory and meet at a barrier; the host then reads
// the result back.  Build and run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [--trace-out t.json] [--metrics-out m.json]
//                               [--oracle warn|strict]
#include <cstdio>
#include <cstring>
#include <string>

#include "ivy/ivy.h"
#include "ivy/runtime/flags.h"

int main(int argc, char** argv) {
  ivy::runtime::ObsFlags flags;
  std::string error;
  if (!ivy::runtime::parse_obs_flags(&argc, argv, &flags, &error)) {
    std::fprintf(stderr, "%s\nusage: %s %s\n", error.c_str(), argv[0],
                 ivy::runtime::obs_flags_usage());
    return 2;
  }

  ivy::Config cfg;
  cfg.nodes = 4;  // processors on the simulated token ring
  cfg.name = "quickstart";
  // Observability: record every protocol event when an export was asked
  // for; disabled tracing costs nothing.
  flags.apply(cfg);

  ivy::Runtime rt(cfg);

  constexpr std::size_t kElems = 4096;
  constexpr int kProcs = 8;

  // Shared data lives in the shared virtual memory; every process can
  // reference it like ordinary memory.
  auto squares = rt.alloc_array<std::int64_t>(kElems);
  auto barrier = rt.create_barrier(kProcs);
  auto total = rt.alloc_scalar<std::int64_t>();

  for (int p = 0; p < kProcs; ++p) {
    rt.spawn_on(static_cast<ivy::NodeId>(p) % cfg.nodes, [=]() mutable {
      // Phase 1: each process fills its slice.
      const std::size_t chunk = kElems / kProcs;
      const std::size_t begin = static_cast<std::size_t>(p) * chunk;
      for (std::size_t i = begin; i < begin + chunk; ++i) {
        squares[i] = static_cast<std::int64_t>(i) * static_cast<std::int64_t>(i);
        ivy::charge(1);  // model one unit of computation
      }
      barrier.arrive(0);
      // Phase 2: process 0 reduces — the pages it reads migrate to it on
      // demand; nobody packs messages.
      if (p == 0) {
        std::int64_t sum = 0;
        for (std::size_t i = 0; i < kElems; ++i) {
          sum += squares[i];
          ivy::charge(1);
        }
        total.set(sum);
      }
    });
  }

  const ivy::Time elapsed = rt.run();

  std::printf("sum of squares 0..%zu = %lld\n", kElems - 1,
              static_cast<long long>(rt.host_read<std::int64_t>(total.address())));
  std::printf("virtual time: %.3f s on %u simulated processors\n",
              ivy::to_seconds(elapsed), cfg.nodes);
  std::printf("page faults: %llu read, %llu write; %llu page transfers\n",
              static_cast<unsigned long long>(
                  rt.stats().total(ivy::Counter::kReadFaults)),
              static_cast<unsigned long long>(
                  rt.stats().total(ivy::Counter::kWriteFaults)),
              static_cast<unsigned long long>(
                  rt.stats().total(ivy::Counter::kPageTransfers)));
  if (!flags.trace_out.empty() && rt.write_trace(flags.trace_out)) {
    std::printf("wrote %s (open in Perfetto / chrome://tracing)\n",
                flags.trace_out.c_str());
  }
  if (!flags.metrics_out.empty() &&
      rt.write_metrics(flags.metrics_out, elapsed)) {
    std::printf("wrote %s\n", flags.metrics_out.c_str());
  }
  if (!flags.prof_out.empty() && rt.write_prof(flags.prof_out)) {
    std::printf("wrote %s\n", flags.prof_out.c_str());
  }
  if (ivy::oracle::Oracle* o = rt.oracle()) {
    std::printf("%s\n", o->brief().c_str());
  }
  return 0;
}
