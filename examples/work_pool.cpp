// Dynamic work pool with process migration — exercises the parts of IVY
// message-passing systems struggle with: a shared task queue holding
// *pointers* into shared data structures, plus the passive load balancer
// moving processes between processors at run time.
//
// The job: numerical integration of f(x) = 4/(1+x^2) over [0,1] (= pi),
// with deliberately uneven task sizes.  All tasks are spawned on node 0
// with system scheduling; the balancer spreads them across the machine.
//
//   ./build/examples/work_pool [nodes] [tasks]
#include <cstdio>
#include <cstdlib>

#include "ivy/ivy.h"

int main(int argc, char** argv) {
  const ivy::NodeId nodes =
      argc > 1 ? static_cast<ivy::NodeId>(std::atoi(argv[1])) : 8;
  const int tasks = argc > 2 ? std::atoi(argv[2]) : 24;

  ivy::Config cfg;
  cfg.nodes = nodes;
  cfg.stack_region_pages = 512;  // room for many lightweight processes
  cfg.sched.load_balancing = true;  // "system scheduling"
  cfg.sched.lower_threshold = 1;
  cfg.sched.upper_threshold = 2;
  ivy::Runtime rt(cfg);

  auto partial = rt.alloc_array<double>(static_cast<std::size_t>(tasks));
  auto where = rt.alloc_array<std::uint32_t>(static_cast<std::size_t>(tasks));

  // Every task is a lightweight process.  Task i integrates a slice with
  // i+1 times the base resolution — an uneven load no static partition
  // gets right, which is exactly the case for migration.
  for (int i = 0; i < tasks; ++i) {
    rt.spawn([=]() mutable {
      const double lo = static_cast<double>(i) / tasks;
      const double hi = static_cast<double>(i + 1) / tasks;
      const int steps = 400 * (1 + i);
      double sum = 0.0;
      for (int s = 0; s < steps; ++s) {
        const double x = lo + (hi - lo) * (s + 0.5) / steps;
        sum += 4.0 / (1.0 + x * x);
        ivy::charge(2);
      }
      partial[static_cast<std::size_t>(i)] = sum * (hi - lo) / steps;
      // Record where this process ended up after migration.
      where[static_cast<std::size_t>(i)] = ivy::self_node();
    });
  }
  const ivy::Time elapsed = rt.run();

  double pi = 0.0;
  std::uint32_t per_node[ivy::kMaxNodes] = {};
  for (int i = 0; i < tasks; ++i) {
    pi += rt.host_read(partial, static_cast<std::size_t>(i));
    per_node[rt.host_read(where, static_cast<std::size_t>(i))]++;
  }
  std::printf("pi ≈ %.9f with %d uneven tasks on %u processors (%.3f s"
              " virtual)\n",
              pi, tasks, nodes, ivy::to_seconds(elapsed));
  std::printf("migrations: %llu (rejected: %llu)\n",
              static_cast<unsigned long long>(
                  rt.stats().total(ivy::Counter::kMigrations)),
              static_cast<unsigned long long>(
                  rt.stats().total(ivy::Counter::kMigrationRejects)));
  std::printf("tasks finished per node:");
  for (ivy::NodeId n = 0; n < nodes; ++n) std::printf(" %u", per_node[n]);
  std::printf("\n");
  return 0;
}
