// Deterministic random number generation.
//
// Every source of randomness in the system (workload generators, drop
// injection, load-balance probing order) draws from an explicitly seeded
// generator so that a run is a pure function of its Config.  xoshiro256**
// is small, fast and has no global state.
#pragma once

#include <cstdint>

#include "ivy/base/check.h"

namespace ivy {

/// splitmix64 — used to expand a single seed into generator state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator.  Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x1988'06'15) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  Uses Lemire's multiply-shift reduction
  /// (slight modulo bias is irrelevant for workload generation and keeps
  /// the draw count deterministic).
  constexpr std::uint64_t below(std::uint64_t bound) {
    IVY_CHECK(bound > 0);
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>((*this)()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t range(std::int64_t lo, std::int64_t hi) {
    IVY_CHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p.
  constexpr bool chance(double p) { return uniform() < p; }

  /// Derives an independent child generator (for per-node streams).
  [[nodiscard]] constexpr Rng fork() {
    std::uint64_t seed = (*this)();
    return Rng(seed);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

}  // namespace ivy
