// System-wide instrumentation counters.
//
// The paper's evaluation is entirely about counts and times: page faults,
// messages, bytes on the ring, disk page transfers per iteration
// (Table 1), and virtual execution time (Figures 4–6).  Every module
// increments counters here; experiments snapshot them at epoch boundaries
// (an "epoch" is an application-defined unit such as one Jacobi
// iteration).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "ivy/base/check.h"
#include "ivy/base/types.h"

namespace ivy {

namespace trace {
class Tracer;
}  // namespace trace

namespace prof {
class Profiler;
}  // namespace prof

/// Fixed roster of counters.  Extend freely; names() must match.
enum class Counter : std::size_t {
  kReadFaults = 0,      ///< read page faults taken
  kWriteFaults,         ///< write page faults taken
  kLocalFaultHits,      ///< faults resolved without any message (access upgrade)
  kPageTransfers,       ///< page bodies moved between nodes
  kOwnershipTransfers,  ///< page ownership moves (with or without body)
  kInvalidationsSent,   ///< invalidation requests sent
  kForwards,            ///< fault requests forwarded (probOwner / manager hops)
  kBroadcasts,          ///< ring broadcasts performed
  kMessages,            ///< point-to-point protocol messages delivered
  kBytesOnRing,         ///< modeled bytes transmitted on the ring
  kRetransmissions,     ///< request retransmissions (drop recovery)
  kRpcBackoffs,         ///< retransmissions sent with exponential backoff
  kRpcFailures,         ///< requests failed terminally (retransmit cap hit)
  kGrantReoffers,       ///< unacked ownership grants re-offered by the old owner
  kFaultsInjected,      ///< frames the fault plane dropped/dup'd/delayed/corrupted
  kChecksumDrops,       ///< frames discarded by receiver checksum verify
  kDoneCacheEvictions,  ///< cached replies evicted from the rpc done-cache
  kDupReexecutions,     ///< duplicate requests re-executed after eviction
  kDiskReads,           ///< page-in operations from the simulated disk
  kDiskWrites,          ///< page-out operations to the simulated disk
  kEvictions,           ///< frames reclaimed by LRU replacement
  kMigrations,          ///< process migrations completed
  kMigrationRejects,    ///< migration requests rejected (below threshold)
  kProcSpawns,          ///< lightweight processes created
  kContextSwitches,     ///< dispatcher switches between processes
  kEcWaits,             ///< eventcount Wait operations that blocked
  kEcAdvances,          ///< eventcount Advance operations
  kEcRemoteWakeups,     ///< wakeups delivered to a remote node
  kLockAcquisitions,    ///< SVM binary lock acquisitions
  kLockSpins,           ///< failed test-and-set attempts
  kAllocCalls,          ///< shared-memory allocations
  kAllocRemoteCalls,    ///< allocations that required an RPC to the central node
  kFreeCalls,           ///< shared-memory frees
  kMulticasts,          ///< ring multicast frames transmitted
  kBodylessUpgrades,    ///< write grants sent without a page body (in-place upgrade)
  kInvalidateMulticasts,///< invalidation rounds that used one multicast frame
  kCount                // sentinel
};

inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(Counter::kCount);

/// Human-readable counter names, index-aligned with Counter.
[[nodiscard]] const std::array<const char*, kCounterCount>& counter_names();

/// Fixed roster of latency histograms.  Extend freely; hist_names() must
/// match.
enum class Hist : std::size_t {
  kFaultResolution = 0,  ///< page-fault start -> access granted
  kRemoteOpRoundTrip,    ///< rpc request sent -> (last) reply received
  kInvalidateRound,      ///< invalidation round start -> all acks
  kLockWait,             ///< contended SvmLock::lock -> acquisition
  kEcWait,               ///< blocked eventcount Wait -> wakeup
  kMigration,            ///< migrate-ask sent -> process installed
  kDiskStall,            ///< disk transfer stall charged to a node
  kCount                 // sentinel
};

inline constexpr std::size_t kHistCount = static_cast<std::size_t>(Hist::kCount);

/// Human-readable histogram names, index-aligned with Hist.
[[nodiscard]] const std::array<const char*, kHistCount>& hist_names();

/// Log2-bucket latency histogram over virtual nanoseconds.
///
/// Bucket 0 holds exact zeros; bucket b >= 1 holds values in
/// [2^(b-1), 2^b).  64 buckets cover the whole Time range, so recording
/// never clamps and merging never loses tail samples.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(Time v) {
    const std::uint64_t u = v > 0 ? static_cast<std::uint64_t>(v) : 0;
    ++buckets_[bucket_of(u)];
    ++count_;
    sum_ += u;
    if (count_ == 1 || u < min_) min_ = u;
    if (u > max_) max_ = u;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t min() const noexcept {
    return count_ == 0 ? 0 : min_;
  }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) /
                                   static_cast<double>(count_);
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    IVY_CHECK_LT(i, kBuckets);
    return buckets_[i];
  }

  /// Index of the bucket holding value `u`.  The top bucket is open-ended
  /// so values >= 2^63 (unreachable from a positive Time) never index out
  /// of range.
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t u) noexcept {
    if (u == 0) return 0;
    const auto b = static_cast<std::size_t>(64 - __builtin_clzll(u));
    return b < kBuckets ? b : kBuckets - 1;
  }
  /// Inclusive lower bound of bucket `i`.
  [[nodiscard]] static std::uint64_t bucket_lo(std::size_t i) noexcept {
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
  }
  /// Exclusive upper bound of bucket `i` (bucket 0 = {0}; the last bucket
  /// has no upper bound).
  [[nodiscard]] static std::uint64_t bucket_hi(std::size_t i) noexcept {
    return i == 0 ? 1
           : i >= kBuckets - 1 ? ~std::uint64_t{0}
                               : std::uint64_t{1} << i;
  }

  /// Quantile estimate (q in [0, 1]) by linear interpolation inside the
  /// log2 bucket holding the rank.  Bucket 0 is exact (zeros); the
  /// estimate is clamped into [min, max] so p99 of a tight distribution
  /// never exceeds the recorded maximum.
  [[nodiscard]] std::uint64_t percentile(double q) const {
    if (count_ == 0) return 0;
    if (q <= 0.0) return min();
    if (q >= 1.0) return max_;
    const double rank = q * static_cast<double>(count_);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      if (buckets_[b] == 0) continue;
      const auto next = seen + buckets_[b];
      if (static_cast<double>(next) >= rank) {
        if (b == 0) return 0;
        const double in_bucket =
            (rank - static_cast<double>(seen)) /
            static_cast<double>(buckets_[b]);
        const double lo = static_cast<double>(bucket_lo(b));
        const double hi = static_cast<double>(
            b >= kBuckets - 1 ? max_ : bucket_hi(b));
        auto est = static_cast<std::uint64_t>(lo + (hi - lo) * in_bucket);
        if (est < min_) est = min_;
        if (est > max_) est = max_;
        return est;
      }
      seen = next;
    }
    return max_;
  }

  Histogram& merge(const Histogram& o) {
    for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += o.buckets_[i];
    if (o.count_ != 0) {
      if (count_ == 0 || o.min_ < min_) min_ = o.min_;
      if (o.max_ > max_) max_ = o.max_;
    }
    count_ += o.count_;
    sum_ += o.sum_;
    return *this;
  }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

/// Per-node set of all latency histograms.
struct HistBlock {
  std::array<Histogram, kHistCount> hists;

  [[nodiscard]] Histogram& of(Hist h) {
    return hists[static_cast<std::size_t>(h)];
  }
  [[nodiscard]] const Histogram& of(Hist h) const {
    return hists[static_cast<std::size_t>(h)];
  }
  HistBlock& merge(const HistBlock& o) {
    for (std::size_t i = 0; i < kHistCount; ++i) hists[i].merge(o.hists[i]);
    return *this;
  }
};

/// Per-node counter block.
class CounterBlock {
 public:
  void bump(Counter c, std::uint64_t by = 1) {
    values_[static_cast<std::size_t>(c)] += by;
  }
  [[nodiscard]] std::uint64_t get(Counter c) const {
    return values_[static_cast<std::size_t>(c)];
  }
  void clear() { values_.fill(0); }

  CounterBlock& operator+=(const CounterBlock& o) {
    for (std::size_t i = 0; i < kCounterCount; ++i) values_[i] += o.values_[i];
    return *this;
  }
  /// Element-wise difference (for epoch deltas).
  [[nodiscard]] CounterBlock minus(const CounterBlock& o) const {
    CounterBlock r;
    for (std::size_t i = 0; i < kCounterCount; ++i)
      r.values_[i] = values_[i] - o.values_[i];
    return r;
  }

 private:
  std::array<std::uint64_t, kCounterCount> values_{};
};

/// Registry of per-node counters with epoch snapshots.
class Stats {
 public:
  explicit Stats(NodeId nodes) : per_node_(nodes), per_node_hist_(nodes) {}

  void bump(NodeId node, Counter c, std::uint64_t by = 1) {
    IVY_CHECK_LT(node, per_node_.size());
    per_node_[node].bump(c, by);
  }

  // --- latency histograms -------------------------------------------------

  void record_latency(NodeId node, Hist h, Time v) {
    IVY_CHECK_LT(node, per_node_hist_.size());
    per_node_hist_[node].of(h).record(v);
  }

  [[nodiscard]] const Histogram& node_hist(NodeId node, Hist h) const {
    IVY_CHECK_LT(node, per_node_hist_.size());
    return per_node_hist_[node].of(h);
  }

  /// Merge of one histogram across all nodes.
  [[nodiscard]] Histogram hist(Hist h) const {
    Histogram sum;
    for (const auto& blk : per_node_hist_) sum.merge(blk.of(h));
    return sum;
  }

  // --- event tracer hook --------------------------------------------------

  /// Tracer recording structured events for this machine, or nullptr when
  /// tracing is disabled (IVY_EVT checks exactly this pointer — the whole
  /// disabled-path cost).  Stats does not own the tracer.
  [[nodiscard]] trace::Tracer* tracer() const noexcept { return tracer_; }
  void set_tracer(trace::Tracer* tracer) noexcept { tracer_ = tracer; }

  /// Cost-attribution profiler, or nullptr when profiling is disarmed
  /// (IVY_PROF checks exactly this pointer).  Stats does not own it.
  [[nodiscard]] prof::Profiler* prof() const noexcept { return prof_; }
  void set_prof(prof::Profiler* prof) noexcept { prof_ = prof; }

  [[nodiscard]] std::uint64_t node_total(NodeId node, Counter c) const {
    return per_node_[node].get(c);
  }

  [[nodiscard]] std::uint64_t total(Counter c) const {
    std::uint64_t sum = 0;
    for (const auto& blk : per_node_) sum += blk.get(c);
    return sum;
  }

  [[nodiscard]] CounterBlock aggregate() const {
    CounterBlock sum;
    for (const auto& blk : per_node_) sum += blk;
    return sum;
  }

  /// Closes the current epoch: records the delta of aggregated counters
  /// since the previous mark and returns its index.
  std::size_t mark_epoch();

  [[nodiscard]] std::size_t epoch_count() const { return epochs_.size(); }
  [[nodiscard]] const CounterBlock& epoch(std::size_t i) const {
    IVY_CHECK_LT(i, epochs_.size());
    return epochs_[i];
  }

  [[nodiscard]] NodeId nodes() const {
    return static_cast<NodeId>(per_node_.size());
  }

  /// Multi-line dump of all non-zero aggregate counters (debug aid).
  [[nodiscard]] std::string summary() const;

 private:
  std::vector<CounterBlock> per_node_;
  std::vector<HistBlock> per_node_hist_;
  std::vector<CounterBlock> epochs_;
  CounterBlock last_mark_;
  trace::Tracer* tracer_ = nullptr;
  prof::Profiler* prof_ = nullptr;
};

}  // namespace ivy
