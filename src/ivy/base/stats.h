// System-wide instrumentation counters.
//
// The paper's evaluation is entirely about counts and times: page faults,
// messages, bytes on the ring, disk page transfers per iteration
// (Table 1), and virtual execution time (Figures 4–6).  Every module
// increments counters here; experiments snapshot them at epoch boundaries
// (an "epoch" is an application-defined unit such as one Jacobi
// iteration).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "ivy/base/check.h"
#include "ivy/base/types.h"

namespace ivy {

/// Fixed roster of counters.  Extend freely; names() must match.
enum class Counter : std::size_t {
  kReadFaults = 0,      ///< read page faults taken
  kWriteFaults,         ///< write page faults taken
  kLocalFaultHits,      ///< faults resolved without any message (access upgrade)
  kPageTransfers,       ///< page bodies moved between nodes
  kOwnershipTransfers,  ///< page ownership moves (with or without body)
  kInvalidationsSent,   ///< invalidation requests sent
  kForwards,            ///< fault requests forwarded (probOwner / manager hops)
  kBroadcasts,          ///< ring broadcasts performed
  kMessages,            ///< point-to-point protocol messages delivered
  kBytesOnRing,         ///< modeled bytes transmitted on the ring
  kRetransmissions,     ///< request retransmissions (drop recovery)
  kDiskReads,           ///< page-in operations from the simulated disk
  kDiskWrites,          ///< page-out operations to the simulated disk
  kEvictions,           ///< frames reclaimed by LRU replacement
  kMigrations,          ///< process migrations completed
  kMigrationRejects,    ///< migration requests rejected (below threshold)
  kProcSpawns,          ///< lightweight processes created
  kContextSwitches,     ///< dispatcher switches between processes
  kEcWaits,             ///< eventcount Wait operations that blocked
  kEcAdvances,          ///< eventcount Advance operations
  kEcRemoteWakeups,     ///< wakeups delivered to a remote node
  kLockAcquisitions,    ///< SVM binary lock acquisitions
  kLockSpins,           ///< failed test-and-set attempts
  kAllocCalls,          ///< shared-memory allocations
  kAllocRemoteCalls,    ///< allocations that required an RPC to the central node
  kFreeCalls,           ///< shared-memory frees
  kCount                // sentinel
};

inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(Counter::kCount);

/// Human-readable counter names, index-aligned with Counter.
[[nodiscard]] const std::array<const char*, kCounterCount>& counter_names();

/// Per-node counter block.
class CounterBlock {
 public:
  void bump(Counter c, std::uint64_t by = 1) {
    values_[static_cast<std::size_t>(c)] += by;
  }
  [[nodiscard]] std::uint64_t get(Counter c) const {
    return values_[static_cast<std::size_t>(c)];
  }
  void clear() { values_.fill(0); }

  CounterBlock& operator+=(const CounterBlock& o) {
    for (std::size_t i = 0; i < kCounterCount; ++i) values_[i] += o.values_[i];
    return *this;
  }
  /// Element-wise difference (for epoch deltas).
  [[nodiscard]] CounterBlock minus(const CounterBlock& o) const {
    CounterBlock r;
    for (std::size_t i = 0; i < kCounterCount; ++i)
      r.values_[i] = values_[i] - o.values_[i];
    return r;
  }

 private:
  std::array<std::uint64_t, kCounterCount> values_{};
};

/// Registry of per-node counters with epoch snapshots.
class Stats {
 public:
  explicit Stats(NodeId nodes) : per_node_(nodes) {}

  void bump(NodeId node, Counter c, std::uint64_t by = 1) {
    IVY_CHECK_LT(node, per_node_.size());
    per_node_[node].bump(c, by);
  }

  [[nodiscard]] std::uint64_t node_total(NodeId node, Counter c) const {
    return per_node_[node].get(c);
  }

  [[nodiscard]] std::uint64_t total(Counter c) const {
    std::uint64_t sum = 0;
    for (const auto& blk : per_node_) sum += blk.get(c);
    return sum;
  }

  [[nodiscard]] CounterBlock aggregate() const {
    CounterBlock sum;
    for (const auto& blk : per_node_) sum += blk;
    return sum;
  }

  /// Closes the current epoch: records the delta of aggregated counters
  /// since the previous mark and returns its index.
  std::size_t mark_epoch();

  [[nodiscard]] std::size_t epoch_count() const { return epochs_.size(); }
  [[nodiscard]] const CounterBlock& epoch(std::size_t i) const {
    IVY_CHECK_LT(i, epochs_.size());
    return epochs_[i];
  }

  [[nodiscard]] NodeId nodes() const {
    return static_cast<NodeId>(per_node_.size());
  }

  /// Multi-line dump of all non-zero aggregate counters (debug aid).
  [[nodiscard]] std::string summary() const;

 private:
  std::vector<CounterBlock> per_node_;
  std::vector<CounterBlock> epochs_;
  CounterBlock last_mark_;
};

}  // namespace ivy
