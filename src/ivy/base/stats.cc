#include "ivy/base/stats.h"

#include <sstream>

namespace ivy {

const std::array<const char*, kCounterCount>& counter_names() {
  static const std::array<const char*, kCounterCount> kNames = {
      "read_faults",
      "write_faults",
      "local_fault_hits",
      "page_transfers",
      "ownership_transfers",
      "invalidations_sent",
      "forwards",
      "broadcasts",
      "messages",
      "bytes_on_ring",
      "retransmissions",
      "rpc_backoffs",
      "rpc_failures",
      "grant_reoffers",
      "faults_injected",
      "checksum_drops",
      "done_cache_evictions",
      "dup_reexecutions",
      "disk_reads",
      "disk_writes",
      "evictions",
      "migrations",
      "migration_rejects",
      "proc_spawns",
      "context_switches",
      "ec_waits",
      "ec_advances",
      "ec_remote_wakeups",
      "lock_acquisitions",
      "lock_spins",
      "alloc_calls",
      "alloc_remote_calls",
      "free_calls",
      "multicasts",
      "bodyless_upgrades",
      "invalidate_multicasts",
  };
  return kNames;
}

const std::array<const char*, kHistCount>& hist_names() {
  static const std::array<const char*, kHistCount> kNames = {
      "fault_resolution_ns",
      "remote_op_round_trip_ns",
      "invalidate_round_ns",
      "lock_wait_ns",
      "ec_wait_ns",
      "migration_ns",
      "disk_stall_ns",
  };
  return kNames;
}

std::size_t Stats::mark_epoch() {
  const CounterBlock now = aggregate();
  epochs_.push_back(now.minus(last_mark_));
  last_mark_ = now;
  return epochs_.size() - 1;
}

std::string Stats::summary() const {
  std::ostringstream out;
  const CounterBlock agg = aggregate();
  const auto& names = counter_names();
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    const auto v = agg.get(static_cast<Counter>(i));
    if (v != 0) out << names[i] << " = " << v << '\n';
  }
  for (std::size_t i = 0; i < kHistCount; ++i) {
    const Histogram h = hist(static_cast<Hist>(i));
    if (h.count() == 0) continue;
    out << hist_names()[i] << ": count=" << h.count() << " mean="
        << static_cast<std::uint64_t>(h.mean()) << " min=" << h.min()
        << " max=" << h.max() << " p50=" << h.percentile(0.50)
        << " p90=" << h.percentile(0.90) << " p99=" << h.percentile(0.99)
        << '\n';
  }
  return out.str();
}

}  // namespace ivy
