#include "ivy/base/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ivy::log_internal {
namespace {

LogLevel initial_level() {
  const char* env = std::getenv("IVY_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "trace") == 0) return LogLevel::kTrace;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::atomic<int>& level_storage() {
  static std::atomic<int> level{static_cast<int>(initial_level())};
  return level;
}

const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

// One thread drives the whole simulation, but keep the context
// thread-local anyway so concurrent Runtimes in tests don't interleave.
struct Context {
  NodeId node = kNoNode;
  Time now = 0;
  bool active = false;
};
thread_local Context g_context;

}  // namespace

LogLevel global_level() noexcept {
  return static_cast<LogLevel>(level_storage().load(std::memory_order_relaxed));
}

void set_global_level(LogLevel lvl) noexcept {
  level_storage().store(static_cast<int>(lvl), std::memory_order_relaxed);
}

void set_context(NodeId node, Time virtual_now) noexcept {
  g_context.node = node;
  g_context.now = virtual_now;
  g_context.active = true;
}

void clear_context() noexcept { g_context.active = false; }

void emit(LogLevel lvl, const std::string& text) {
  if (g_context.active) {
    // Virtual time in microseconds with ns precision, e.g. "n2 @12.345us".
    std::fprintf(stderr, "[ivy %s n%u @%lld.%03llus] %s\n", level_name(lvl),
                 static_cast<unsigned>(g_context.node),
                 static_cast<long long>(g_context.now / 1000),
                 static_cast<unsigned long long>(g_context.now % 1000),
                 text.c_str());
    return;
  }
  std::fprintf(stderr, "[ivy %s] %s\n", level_name(lvl), text.c_str());
}

}  // namespace ivy::log_internal
