// Fundamental identifier and time types shared by every IVY module.
//
// IVY addresses a loosely-coupled multiprocessor: a set of nodes
// (processors with private physical memory) joined by a network.  Nodes,
// pages of the shared virtual address space, lightweight processes, and
// virtual time all get small strongly-typed wrappers here so that the
// protocol code cannot accidentally mix them up.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace ivy {

/// Index of a simulated processor (a "node" of the loosely-coupled
/// multiprocessor).  IVY's copysets are stored as 64-bit masks, so a
/// system is limited to 64 nodes — far above the paper's 8.
using NodeId = std::uint32_t;

/// Maximum number of nodes supported by a single Topology (copysets are
/// 64-bit bitmasks).
inline constexpr NodeId kMaxNodes = 64;

/// Sentinel meaning "no node" (e.g. page owner unknown).
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// Destination value meaning "all nodes" for ring broadcast.
inline constexpr NodeId kBroadcast = kNoNode - 1;

/// Destination value meaning "the nodes named in Message::mcast" — a
/// copyset multicast.  Like broadcast, the frame circulates the ring once
/// and costs one transmission; only the addressed stations copy it.
inline constexpr NodeId kMulticast = kNoNode - 2;

/// Index of a page in the shared virtual address space.
using PageId = std::uint32_t;

inline constexpr PageId kNoPage = std::numeric_limits<PageId>::max();

/// Byte address within the shared virtual address space.  The SVM occupies
/// the *high* portion of each simulated address space (as in the paper);
/// address 0 of this type is the base of the shared region.
using SvmAddr = std::uint64_t;

inline constexpr SvmAddr kNullSvmAddr = std::numeric_limits<SvmAddr>::max();

/// Virtual time in nanoseconds.  All costs in the simulation are integer
/// nanosecond counts so runs are exactly reproducible.
using Time = std::int64_t;

inline constexpr Time kTimeNever = std::numeric_limits<Time>::max();

/// Convenience literals for building cost models.
constexpr Time ns(std::int64_t v) { return v; }
constexpr Time us(std::int64_t v) { return v * 1'000; }
constexpr Time ms(std::int64_t v) { return v * 1'000'000; }
constexpr Time sec(std::int64_t v) { return v * 1'000'000'000; }

/// Seconds as a double, for reporting only.
constexpr double to_seconds(Time t) { return static_cast<double>(t) * 1e-9; }

/// Process identifier.  As in the paper, a PID is the pair
/// (processor number, address of its PCB); PCBs live in each node's
/// private memory, so the pair is globally unique.  `serial` disambiguates
/// reuse of a PCB slot.
struct ProcId {
  NodeId home = kNoNode;       ///< node whose private memory holds the PCB
  std::uint32_t pcb_index = 0; ///< slot in that node's PCB table
  std::uint32_t serial = 0;    ///< incarnation counter of the slot

  friend bool operator==(const ProcId&, const ProcId&) = default;
};

inline constexpr ProcId kNoProc{};

/// Set of nodes, used for copysets and invalidation targets.
class NodeSet {
 public:
  constexpr NodeSet() = default;
  explicit constexpr NodeSet(std::uint64_t bits) : bits_(bits) {}

  constexpr void add(NodeId n) { bits_ |= bit(n); }
  constexpr void remove(NodeId n) { bits_ &= ~bit(n); }
  [[nodiscard]] constexpr bool contains(NodeId n) const {
    return (bits_ & bit(n)) != 0;
  }
  constexpr void clear() { bits_ = 0; }
  [[nodiscard]] constexpr bool empty() const { return bits_ == 0; }
  [[nodiscard]] int count() const { return __builtin_popcountll(bits_); }
  [[nodiscard]] constexpr std::uint64_t raw() const { return bits_; }

  constexpr NodeSet& operator|=(const NodeSet& o) {
    bits_ |= o.bits_;
    return *this;
  }

  /// Calls `fn(NodeId)` for every member, in increasing order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    std::uint64_t b = bits_;
    while (b != 0) {
      const int i = __builtin_ctzll(b);
      fn(static_cast<NodeId>(i));
      b &= b - 1;
    }
  }

  friend constexpr bool operator==(const NodeSet&, const NodeSet&) = default;

 private:
  static constexpr std::uint64_t bit(NodeId n) { return 1ULL << n; }
  std::uint64_t bits_ = 0;
};

}  // namespace ivy

template <>
struct std::hash<ivy::ProcId> {
  std::size_t operator()(const ivy::ProcId& p) const noexcept {
    std::uint64_t v = (static_cast<std::uint64_t>(p.home) << 40) ^
                      (static_cast<std::uint64_t>(p.pcb_index) << 8) ^
                      p.serial;
    v ^= v >> 33;
    v *= 0xff51afd7ed558ccdULL;
    v ^= v >> 33;
    return static_cast<std::size_t>(v);
  }
};
