// Minimal leveled logger used for protocol tracing.
//
// Tracing every message of the coherence protocol is the main debugging
// tool for a DSM; the logger formats lazily and is compiled to a single
// branch when the level is off.
#pragma once

#include <sstream>
#include <string>

#include "ivy/base/types.h"

namespace ivy {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kOff = 4 };

namespace log_internal {

LogLevel global_level() noexcept;
void set_global_level(LogLevel lvl) noexcept;
void emit(LogLevel lvl, const std::string& text);

// Per-thread execution context, set by the scheduler around fiber
// dispatch so every line logged from simulated code is prefixed with the
// node it ran on and the virtual time it ran at.
void set_context(NodeId node, Time virtual_now) noexcept;
void clear_context() noexcept;

class LineBuilder {
 public:
  explicit LineBuilder(LogLevel lvl) : lvl_(lvl) {}
  LineBuilder(const LineBuilder&) = delete;
  LineBuilder& operator=(const LineBuilder&) = delete;
  ~LineBuilder() { emit(lvl_, stream_.str()); }

  template <typename T>
  LineBuilder& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel lvl_;
  std::ostringstream stream_;
};

}  // namespace log_internal

/// Sets the minimum level that is emitted (default kWarn, so tests and
/// benches are quiet).  The IVY_LOG_LEVEL environment variable
/// (trace|debug|info|warn|off) overrides the default at startup.
inline void set_log_level(LogLevel lvl) { log_internal::set_global_level(lvl); }
[[nodiscard]] inline bool log_enabled(LogLevel lvl) {
  return static_cast<int>(lvl) >= static_cast<int>(log_internal::global_level());
}

}  // namespace ivy

#define IVY_LOG(lvl)                          \
  if (!::ivy::log_enabled(::ivy::LogLevel::lvl)) {} else \
    ::ivy::log_internal::LineBuilder(::ivy::LogLevel::lvl)

#define IVY_TRACE() IVY_LOG(kTrace)
#define IVY_DEBUG() IVY_LOG(kDebug)
#define IVY_INFO() IVY_LOG(kInfo)
#define IVY_WARN() IVY_LOG(kWarn)
