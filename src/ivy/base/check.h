// Always-on invariant checking.
//
// The coherence protocol is full of invariants (single writer, copyset
// supersets, chain termination) whose violation must never be silently
// ignored — a stale page read would corrupt an experiment without any
// crash.  IVY_CHECK therefore stays on in release builds; the hot paths
// that matter (per-access rights test) are written so the check is a
// single predictable branch.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace ivy::detail {

[[noreturn]] inline void check_failed(const char* file, int line,
                                      const char* expr,
                                      const std::string& msg) {
  std::fprintf(stderr, "IVY_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, msg.empty() ? "" : " — ", msg.c_str());
  std::fflush(stderr);
  std::abort();
}

// Lazily builds the failure message only on the failing path.
class CheckMessage {
 public:
  template <typename T>
  CheckMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }
  [[nodiscard]] std::string str() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
};

}  // namespace ivy::detail

#define IVY_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) [[unlikely]] {                                             \
      ::ivy::detail::check_failed(__FILE__, __LINE__, #cond, "");           \
    }                                                                       \
  } while (0)

#define IVY_CHECK_MSG(cond, ...)                                            \
  do {                                                                      \
    if (!(cond)) [[unlikely]] {                                             \
      ::ivy::detail::check_failed(                                          \
          __FILE__, __LINE__, #cond,                                        \
          (::ivy::detail::CheckMessage{} << __VA_ARGS__).str());            \
    }                                                                       \
  } while (0)

#define IVY_CHECK_EQ(a, b) \
  IVY_CHECK_MSG((a) == (b), "lhs=" << (a) << " rhs=" << (b))
#define IVY_CHECK_NE(a, b) \
  IVY_CHECK_MSG((a) != (b), "both=" << (a))
#define IVY_CHECK_LT(a, b) \
  IVY_CHECK_MSG((a) < (b), "lhs=" << (a) << " rhs=" << (b))
#define IVY_CHECK_LE(a, b) \
  IVY_CHECK_MSG((a) <= (b), "lhs=" << (a) << " rhs=" << (b))
#define IVY_CHECK_GT(a, b) \
  IVY_CHECK_MSG((a) > (b), "lhs=" << (a) << " rhs=" << (b))
#define IVY_CHECK_GE(a, b) \
  IVY_CHECK_MSG((a) >= (b), "lhs=" << (a) << " rhs=" << (b))

/// Marks unreachable protocol states.
#define IVY_UNREACHABLE(msg) \
  ::ivy::detail::check_failed(__FILE__, __LINE__, "unreachable", msg)
