#include "ivy/net/ring.h"

#include <utility>

#include "ivy/base/check.h"
#include "ivy/base/log.h"
#include "ivy/trace/trace.h"

namespace ivy::net {

const char* to_string(MsgKind kind) {
  switch (kind) {
    case MsgKind::kInvalid: return "invalid";
    case MsgKind::kRpcReply: return "rpc_reply";
    case MsgKind::kReadFault: return "read_fault";
    case MsgKind::kWriteFault: return "write_fault";
    case MsgKind::kInvalidate: return "invalidate";
    case MsgKind::kInvalidateBcast: return "invalidate_bcast";
    case MsgKind::kGrantAck: return "grant_ack";
    case MsgKind::kGrantPush: return "grant_push";
    case MsgKind::kPageOut: return "page_out";
    case MsgKind::kMigrateAsk: return "migrate_ask";
    case MsgKind::kMigrateMove: return "migrate_move";
    case MsgKind::kRemoteResume: return "remote_resume";
    case MsgKind::kProcForwarded: return "proc_forwarded";
    case MsgKind::kLoadHint: return "load_hint";
    case MsgKind::kAllocRequest: return "alloc_request";
    case MsgKind::kFreeRequest: return "free_request";
    case MsgKind::kEcWakeup: return "ec_wakeup";
  }
  return "unknown";
}

Ring::Ring(sim::Simulator& sim, Stats& stats, NodeId nodes)
    : sim_(sim), stats_(stats), handlers_(nodes) {
  IVY_CHECK_GT(nodes, 0u);
  IVY_CHECK_LE(nodes, kMaxNodes);
}

void Ring::set_handler(NodeId node, Handler handler) {
  IVY_CHECK_LT(node, handlers_.size());
  handlers_[node] = std::move(handler);
}

void Ring::send(Message msg) {
  IVY_CHECK_LT(msg.src, handlers_.size());
  const bool broadcast = msg.dst == kBroadcast;
  const bool multicast = msg.dst == kMulticast;
  if (!broadcast && !multicast) IVY_CHECK_LT(msg.dst, handlers_.size());
  if (multicast) {
    IVY_CHECK(!msg.mcast.empty());
    IVY_CHECK(!msg.mcast.contains(msg.src));
  }

  const auto& costs = sim_.costs();
  // Serialize on the shared medium.
  const Time start = std::max(sim_.now(), busy_until_);
  const Time duration = costs.transmit_time(msg.wire_bytes);
  busy_until_ = start + duration;
  const Time arrival = busy_until_ + costs.msg_latency;

  stats_.bump(msg.src, Counter::kBytesOnRing,
              msg.wire_bytes + costs.msg_overhead_bytes);
  if (broadcast) {
    stats_.bump(msg.src, Counter::kBroadcasts);
  } else if (multicast) {
    stats_.bump(msg.src, Counter::kMulticasts);
  } else {
    stats_.bump(msg.src, Counter::kMessages);
  }
  // The span covers the frame's time on the wire (queueing excluded).
  IVY_EVT(stats_, record_span(msg.src, trace::EventKind::kMsgSend, start,
                              duration, static_cast<std::uint64_t>(msg.kind),
                              broadcast || multicast ? kMaxNodes : msg.dst));

  if (drop_hook_ && drop_hook_(msg)) {
    IVY_DEBUG() << "ring drop " << to_string(msg.kind) << " " << msg.src
                << "->" << (broadcast ? -1 : static_cast<int>(msg.dst));
    return;  // frame lost after occupying the medium
  }

  seal_message(msg);
  if (broadcast) {
    // The frame circulates the ring; every other station copies it.
    // Ring time was charged exactly once above: per-recipient fault
    // decisions change who receives the frame, never what it cost.
    for (NodeId n = 0; n < handlers_.size(); ++n) {
      if (n == msg.src) continue;
      if (fault_hook_ != nullptr) {
        deliver_planned(arrival, n, msg);
      } else {
        deliver_at(arrival, n, msg);  // payload copied per recipient
      }
    }
  } else if (multicast) {
    // One frame on the wire, copied only by the addressed stations.
    // Like broadcast, ring time was charged exactly once; fault plans
    // are still drawn per recipient.
    msg.mcast.for_each([&](NodeId n) {
      IVY_CHECK_LT(n, handlers_.size());
      if (fault_hook_ != nullptr) {
        deliver_planned(arrival, n, msg);
      } else {
        deliver_at(arrival, n, msg);  // payload copied per recipient
      }
    });
  } else if (fault_hook_ != nullptr) {
    deliver_planned(arrival, msg.dst, msg);
  } else {
    deliver_at(arrival, msg.dst, std::move(msg));
  }
}

void Ring::deliver_planned(Time arrival, NodeId dst, const Message& msg) {
  const FaultHook::Plan plan = fault_hook_->plan_delivery(msg, dst);
  if (plan.drop) {
    IVY_DEBUG() << "fault drop " << to_string(msg.kind) << " " << msg.src
                << "->" << dst;
    return;  // lost after occupying the medium, like a real dropped frame
  }
  Message copy = msg;
  if (plan.corrupt) copy.checksum = ~copy.checksum;  // damaged in flight
  if (plan.duplicate) {
    deliver_at(arrival + plan.extra_delay + plan.duplicate_delay, dst, copy);
  }
  deliver_at(arrival + plan.extra_delay, dst, std::move(copy));
}

void Ring::deliver_at(Time when, NodeId dst, Message msg) {
  msg.dst = dst;
  sim_.schedule_at(when, [this, dst, m = std::move(msg)]() mutable {
    IVY_CHECK_MSG(handlers_[dst] != nullptr, "no handler for node " << dst);
    if (!message_intact(m)) {
      // Bad frame check sequence: the station discards the frame, so
      // corruption degrades to loss and the retransmission protocol
      // recovers.  Charged to the receiver, where the check runs.
      stats_.bump(dst, Counter::kChecksumDrops);
      IVY_EVT(stats_, record(dst, trace::EventKind::kMsgCorrupted,
                             static_cast<std::uint64_t>(m.kind), m.src));
      IVY_DEBUG() << "checksum drop " << to_string(m.kind) << " " << m.src
                  << "->" << dst;
      return;
    }
    IVY_TRACE() << "deliver " << to_string(m.kind) << " " << m.src << "->"
                << dst << " rpc=" << m.rpc_id;
    handlers_[dst](std::move(m));
  });
}

}  // namespace ivy::net
