// Wire messages of the simulated token ring.
//
// The network layer is deliberately ignorant of protocol semantics: a
// Message carries an opaque kind, an opaque correlation id, a typed
// payload (std::any — everything lives in one host address space, so
// "serialization" is a byte count used purely for timing), and the
// one-byte piggybacked load hint the paper describes ("this byte can be
// packed into every message at almost no extra cost").
#pragma once

#include <any>
#include <cstdint>

#include "ivy/base/types.h"

namespace ivy::net {

/// Message kinds.  The roster is centralized so traces are readable, but
/// net/ and rpc/ treat the values as opaque.
enum class MsgKind : std::uint16_t {
  kInvalid = 0,

  // rpc-internal
  kRpcReply = 1,

  // svm coherence protocol
  kReadFault = 0x100,       ///< requester → manager/probOwner: want read copy
  kWriteFault = 0x101,      ///< requester → manager/probOwner: want ownership
  kInvalidate = 0x102,      ///< new owner → copyset member
  kInvalidateBcast = 0x103, ///< broadcast invalidation variant
  kGrantAck = 0x104,        ///< new owner → old owner: transfer landed
  kGrantPush = 0x105,       ///< old owner re-offers an unacked grant
  kPageOut = 0x110,         ///< (unused on the wire; disk is node-local)

  // process management
  kMigrateAsk = 0x200,      ///< idle node → loaded node: give me work
  kMigrateMove = 0x201,     ///< loaded node → idle node: PCB + stack handoff
  kRemoteResume = 0x202,    ///< wake a process on another node
  kProcForwarded = 0x203,   ///< PID operation chasing a forwarding pointer
  kLoadHint = 0x204,        ///< broadcast of scheduling hints (no reply)

  // memory allocation
  kAllocRequest = 0x300,
  kFreeRequest = 0x301,

  // eventcount remote operations
  kEcWakeup = 0x400,
};

[[nodiscard]] const char* to_string(MsgKind kind);

struct Message {
  NodeId src = kNoNode;
  NodeId dst = kNoNode;  ///< kBroadcast / kMulticast for one-frame fan-out

  /// Stations addressed by a kMulticast frame (ignored otherwise).  Part
  /// of the frame header, so it is checksummed.
  NodeSet mcast;
  MsgKind kind = MsgKind::kInvalid;

  /// Correlation id assigned by the rpc layer.  Replies and duplicate
  /// retransmissions carry the id of the original request.
  std::uint64_t rpc_id = 0;
  /// Originator of a (possibly forwarded) request — replies go here.
  NodeId origin = kNoNode;
  /// True when this message answers a request.
  bool is_reply = false;

  std::any payload;

  /// Modeled payload size in bytes (drives ring timing).  Framing
  /// overhead is added by the cost model.
  std::uint32_t wire_bytes = 0;

  /// Piggybacked scheduling hint: sender's current process count, as in
  /// the paper's passive load-balancing scheme.
  std::uint8_t load_hint = 0;

  /// Frame check sequence, sealed by the ring at transmit time and
  /// verified at delivery.  A corrupted frame fails verification and is
  /// dropped (corruption becomes loss), exactly as a real ring discards
  /// frames with a bad FCS.
  std::uint64_t checksum = 0;
};

/// FNV-1a over the frame header.  `dst` is deliberately excluded: the
/// ring rewrites it per recipient when fanning out a broadcast, and a
/// single frame on the wire carries a single checksum.  The payload is a
/// host-side std::any (serialization is modeled, not performed), so the
/// header fields are the checksummed content.
[[nodiscard]] constexpr std::uint64_t message_checksum(const Message& m) {
  constexpr std::uint64_t kOffset = 0xcbf29ce484222325ULL;
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  std::uint64_t h = kOffset;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= kPrime;
    }
  };
  mix(m.src);
  mix(m.mcast.raw());
  mix(static_cast<std::uint64_t>(m.kind));
  mix(m.rpc_id);
  mix(m.origin);
  mix(m.is_reply ? 1 : 0);
  mix(m.wire_bytes);
  mix(m.load_hint);
  return h;
}

/// Stamps the frame check sequence (sender side).
constexpr void seal_message(Message& m) { m.checksum = message_checksum(m); }

/// Receiver-side verification.
[[nodiscard]] constexpr bool message_intact(const Message& m) {
  return m.checksum == message_checksum(m);
}

}  // namespace ivy::net
