// Wire messages of the simulated token ring.
//
// The network layer is deliberately ignorant of protocol semantics: a
// Message carries an opaque kind, an opaque correlation id, a typed
// payload (std::any — everything lives in one host address space, so
// "serialization" is a byte count used purely for timing), and the
// one-byte piggybacked load hint the paper describes ("this byte can be
// packed into every message at almost no extra cost").
#pragma once

#include <any>
#include <cstdint>

#include "ivy/base/types.h"

namespace ivy::net {

/// Message kinds.  The roster is centralized so traces are readable, but
/// net/ and rpc/ treat the values as opaque.
enum class MsgKind : std::uint16_t {
  kInvalid = 0,

  // rpc-internal
  kRpcReply = 1,

  // svm coherence protocol
  kReadFault = 0x100,       ///< requester → manager/probOwner: want read copy
  kWriteFault = 0x101,      ///< requester → manager/probOwner: want ownership
  kInvalidate = 0x102,      ///< new owner → copyset member
  kInvalidateBcast = 0x103, ///< broadcast invalidation variant
  kGrantAck = 0x104,        ///< new owner → old owner: transfer landed
  kPageOut = 0x110,         ///< (unused on the wire; disk is node-local)

  // process management
  kMigrateAsk = 0x200,      ///< idle node → loaded node: give me work
  kMigrateMove = 0x201,     ///< loaded node → idle node: PCB + stack handoff
  kRemoteResume = 0x202,    ///< wake a process on another node
  kProcForwarded = 0x203,   ///< PID operation chasing a forwarding pointer
  kLoadHint = 0x204,        ///< broadcast of scheduling hints (no reply)

  // memory allocation
  kAllocRequest = 0x300,
  kFreeRequest = 0x301,

  // eventcount remote operations
  kEcWakeup = 0x400,
};

[[nodiscard]] const char* to_string(MsgKind kind);

struct Message {
  NodeId src = kNoNode;
  NodeId dst = kNoNode;  ///< kBroadcast for ring broadcast
  MsgKind kind = MsgKind::kInvalid;

  /// Correlation id assigned by the rpc layer.  Replies and duplicate
  /// retransmissions carry the id of the original request.
  std::uint64_t rpc_id = 0;
  /// Originator of a (possibly forwarded) request — replies go here.
  NodeId origin = kNoNode;
  /// True when this message answers a request.
  bool is_reply = false;

  std::any payload;

  /// Modeled payload size in bytes (drives ring timing).  Framing
  /// overhead is added by the cost model.
  std::uint32_t wire_bytes = 0;

  /// Piggybacked scheduling hint: sender's current process count, as in
  /// the paper's passive load-balancing scheme.
  std::uint8_t load_hint = 0;
};

}  // namespace ivy::net
