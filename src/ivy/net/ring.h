// Simulated 12 Mbit/s baseband single token ring (the Apollo Domain
// network of the paper).
//
// The medium is shared: only one frame is in flight at a time, so every
// transmission serializes behind `busy_until_`.  This is the physical
// effect that saturates speedup curves as nodes are added, and it is
// modeled explicitly rather than folded into per-message latency.
//
// Broadcast is natural on a ring — the frame passes every station — so a
// broadcast costs one transmission and is delivered to all other nodes.
//
// For retransmission-protocol tests, an injectable drop hook may discard
// any message after it consumed ring time (as a real lost frame would).
// The richer FaultHook interface (implemented by ivy::fault::FaultPlane)
// plans a per-recipient delivery outcome: drop, duplicate, extra delay
// (reordering), or bit corruption; the ring applies the mechanics and
// verifies the frame checksum at delivery.
#pragma once

#include <functional>
#include <vector>

#include "ivy/base/stats.h"
#include "ivy/net/message.h"
#include "ivy/sim/simulator.h"

namespace ivy::net {

/// Delivery-plan provider consulted once per (frame, recipient) after the
/// frame occupied the ring medium.  The ring applies the plan's
/// mechanics; the hook owns the policy (probabilities, windows, node
/// pairs) and any accounting of what it injected.
class FaultHook {
 public:
  virtual ~FaultHook() = default;

  struct Plan {
    bool drop = false;       ///< frame lost for this recipient
    bool corrupt = false;    ///< checksum damaged; receiver verify drops it
    bool duplicate = false;  ///< a second copy arrives duplicate_delay later
    Time extra_delay = 0;    ///< added to the arrival (reorders traffic)
    Time duplicate_delay = 0;
  };

  virtual Plan plan_delivery(const Message& msg, NodeId recipient) = 0;
};

class Ring {
 public:
  using Handler = std::function<void(Message&&)>;
  /// Returns true to drop the (already transmitted) frame.
  using DropHook = std::function<bool(const Message&)>;

  Ring(sim::Simulator& sim, Stats& stats, NodeId nodes);

  /// Registers the delivery handler for `node`.  Must be set for every
  /// node before traffic flows.
  void set_handler(NodeId node, Handler handler);

  /// Transmits `msg` (unicast; broadcast when dst == kBroadcast; copyset
  /// multicast when dst == kMulticast, addressed via msg.mcast).
  /// Delivery is scheduled as simulator events; handlers run at delivery
  /// time.
  void send(Message msg);

  void set_drop_hook(DropHook hook) { drop_hook_ = std::move(hook); }

  /// Installs (or clears, with nullptr) the fault plane.  Not owned.
  /// With no hook installed, send() takes exactly the pre-fault-plane
  /// path: zero extra draws, zero behavior change.
  void set_fault_hook(FaultHook* hook) { fault_hook_ = hook; }

  [[nodiscard]] NodeId nodes() const {
    return static_cast<NodeId>(handlers_.size());
  }
  [[nodiscard]] Time busy_until() const noexcept { return busy_until_; }

 private:
  void deliver_at(Time when, NodeId dst, Message msg);
  void deliver_planned(Time arrival, NodeId dst, const Message& msg);

  sim::Simulator& sim_;
  Stats& stats_;
  std::vector<Handler> handlers_;
  DropHook drop_hook_;
  FaultHook* fault_hook_ = nullptr;
  Time busy_until_ = 0;
};

}  // namespace ivy::net
