#include "ivy/runtime/runtime.h"

#include <cstring>
#include <fstream>

#include "ivy/base/log.h"
#include "ivy/trace/chrome_trace.h"
#include "ivy/trace/metrics.h"

namespace ivy::runtime {
namespace {

/// Node appointed centralized memory manager: "the processor with which
/// the user directly contacts" — node 0.
constexpr NodeId kAllocNode = 0;

svm::SvmOptions svm_options(const Config& cfg,
                            svm::CoherenceObserver* observer) {
  svm::SvmOptions opts;
  opts.observer = observer;
  opts.geo = cfg.geometry();
  opts.manager = cfg.manager;
  opts.manager_node = cfg.manager_node;
  opts.initial_owner = cfg.initial_owner;
  opts.frames_per_node = cfg.frames_per_node;
  opts.replacement = cfg.replacement;
  opts.seed = cfg.seed;
  opts.broadcast_invalidation = cfg.broadcast_invalidation;
  opts.distributed_copysets = cfg.distributed_copysets;
  opts.disk_io_stalls_node = cfg.disk_io_stalls_node;
  return opts;
}

}  // namespace

Runtime::NodeCtx::NodeCtx(Runtime& rt, NodeId id)
    : rpc(rt.sim_, rt.ring_, rt.stats_, id),
      svm(rt.sim_, rpc, rt.stats_, id, rt.cfg_.nodes,
          svm_options(rt.cfg_, rt.oracle_.get())),
      sched(rt.sim_, rpc, svm, rt.stats_, id, rt.cfg_.sched, rt.live_,
            // Stack regions live above the heap, one slice per node.
            static_cast<SvmAddr>(rt.cfg_.heap_pages +
                                 static_cast<SvmAddr>(id) *
                                     rt.cfg_.stack_region_pages) *
                rt.cfg_.page_size,
            rt.cfg_.stack_region_pages),
      central(sched, kAllocNode, 0,
              static_cast<SvmAddr>(rt.cfg_.heap_pages) * rt.cfg_.page_size) {}

Runtime::Runtime(Config cfg)
    : cfg_(std::move(cfg)),
      sim_(cfg_.costs),
      stats_((cfg_.validate(), cfg_.nodes)),
      ring_(sim_, stats_, cfg_.nodes) {
  if (cfg_.trace_enabled) enable_tracing(cfg_.trace_capacity);
  if (cfg_.prof_enabled) {
    prof_ = std::make_unique<prof::Profiler>(cfg_.nodes, cfg_.prof_slice);
    // Like the tracer: hanging the profiler off Stats gives every
    // IVY_PROF site a single-branch disabled fast path.
    stats_.set_prof(prof_.get());
  }
  if (cfg_.oracle_mode != oracle::Mode::kOff) {
    oracle_ = std::make_unique<oracle::Oracle>(
        cfg_.oracle_mode, cfg_.nodes, cfg_.geometry().num_pages,
        cfg_.initial_owner);
    oracle_->set_clock([this] { return sim_.now(); });
  }
  if (cfg_.fault.active()) {
    fault_plane_ = std::make_unique<fault::FaultPlane>(
        cfg_.fault, cfg_.fault_seed, stats_, [this] { return sim_.now(); });
    ring_.set_fault_hook(fault_plane_.get());
  }
  nodes_.reserve(cfg_.nodes);
  for (NodeId n = 0; n < cfg_.nodes; ++n) {
    nodes_.push_back(std::make_unique<NodeCtx>(*this, n));
    proc::Scheduler& sched = nodes_.back()->sched;
    rpc::RemoteOp& rpc = nodes_.back()->rpc;
    rpc.set_request_timeout(cfg_.rpc_request_timeout);
    rpc.set_check_interval(cfg_.rpc_check_interval);
    rpc.set_max_retransmits(cfg_.rpc_max_retransmits);
    // A terminal rpc failure means the protocol could not recover (e.g. a
    // peer stayed partitioned past the whole backoff schedule).  There is
    // no application-level story for a lost coherence operation, so dump
    // and abort rather than compute wrong answers.
    rpc.set_failure_handler([this, n](const rpc::RequestFailure& f) {
      IVY_WARN() << "stranded machine state:\n" << dump_state();
      IVY_CHECK_MSG(false, "node " << n << " gave up on rpc " << f.rpc_id
                                   << " (" << net::to_string(f.kind)
                                   << ") after " << f.attempts
                                   << " attempts — unrecoverable fault load");
    });
    nodes_.back()->svm.set_stall_hook([&sched](Time t) { sched.stall(t); });
    if (oracle_) oracle_->attach(&nodes_.back()->svm);
  }
  if (cfg_.two_level_alloc) {
    for (auto& node : nodes_) {
      // Each processor gets its own binary allocator lock in SVM.
      node->two_level.emplace(node->sched, node->central, cfg_.chunk_bytes,
                              create_lock());
    }
  }
}

Runtime::~Runtime() = default;

SvmAddr Runtime::alloc_raw(std::size_t bytes) {
  const SvmAddr addr = node_of(kAllocNode).central.host_allocate(bytes);
  IVY_CHECK_MSG(addr != kNullSvmAddr,
                "shared heap exhausted allocating " << bytes << " bytes");
  return addr;
}

void Runtime::free_raw(SvmAddr addr) {
  node_of(kAllocNode).central.host_free(addr);
}

sync::Eventcount Runtime::create_eventcount(std::uint32_t pages) {
  IVY_CHECK_GT(pages, 0u);
  // Fresh SVM pages read as zero, which is the initialized state
  // (value 0, no waiters).
  return sync::Eventcount(alloc_raw(cfg_.page_size * pages), pages);
}

sync::Barrier Runtime::create_barrier(int parties) {
  IVY_CHECK_GT(parties, 0);
  return sync::Barrier(create_eventcount(), parties);
}

sync::SvmLock Runtime::create_lock() {
  return sync::SvmLock(alloc_raw(cfg_.page_size));
}

ProcId Runtime::spawn_on(NodeId node, std::function<void()> body,
                         bool migratable) {
  return node_of(node).sched.spawn(std::move(body), migratable);
}

ProcId Runtime::spawn(std::function<void()> body, bool migratable) {
  return spawn_on(0, std::move(body), migratable);
}

Time Runtime::run() {
  const Time start = sim_.now();
  // Debug aid: IVY_MAX_EVENTS bounds a run so livelocks can be inspected
  // instead of spinning forever.
  static const std::uint64_t max_events = [] {
    const char* env = std::getenv("IVY_MAX_EVENTS");
    return env != nullptr ? std::strtoull(env, nullptr, 10)
                          : std::uint64_t{0};
  }();
  const std::uint64_t budget_end =
      max_events == 0 ? ~0ull : sim_.events_executed() + max_events;
  sim_.run_while([this, budget_end] {
    return live_.live > 0 && sim_.events_executed() < budget_end;
  });
  if (sim_.events_executed() >= budget_end) {
    IVY_WARN() << "run() stopped by IVY_MAX_EVENTS with " << live_.live
               << " processes live";
    return sim_.now() - start;
  }
  if (live_.live != 0) {
    IVY_WARN() << "stranded machine state:\n" << dump_state();
    IVY_CHECK_MSG(live_.live == 0,
                  "deadlock: " << live_.live
                               << " processes alive but no events pending");
  }
  const Time elapsed = sim_.now() - start;
  if (prof_) {
    // Settle the attribution up to the finish line and hold it to its
    // contract: every virtual nanosecond of every node is in exactly one
    // category.
    prof_->sync_to(sim_.now());
    std::string why;
    IVY_CHECK_MSG(prof_->self_check(&why), why);
    // Keep the attribution as of the program's finish line: later
    // host-side verification reads drain the simulator further, and
    // that tail would read as idle time in the run's profile.
    run_prof_ =
        std::make_unique<prof::Profiler::Snapshot>(prof_->snapshot());
  }
  if (oracle_) {
    drain();  // let in-flight handoffs settle so every page is quiescent
    oracle_->final_audit();
  }
  return elapsed;
}

void Runtime::enable_tracing(std::size_t capacity) {
  tracer_.enable(capacity);
  tracer_.set_clock([this] { return sim_.now(); });
  // Hanging the tracer off Stats gives every module a single-branch
  // disabled fast path (IVY_EVT tests one pointer).
  stats_.set_tracer(&tracer_);
}

bool Runtime::write_trace(const std::string& path) const {
  if (!tracer_.enabled()) {
    IVY_WARN() << "write_trace(" << path << ") with tracing disabled";
    return false;
  }
  if (prof_) prof_->sync_to(sim_.now());
  return trace::write_chrome_trace_file(path, tracer_, cfg_.name,
                                        prof_.get());
}

bool Runtime::write_metrics(const std::string& path, Time elapsed) const {
  trace::MetricsInfo info;
  info.name = cfg_.name;
  info.elapsed = elapsed;
  return trace::write_metrics_file(
      path, stats_, tracer_.enabled() ? &tracer_ : nullptr, info);
}

bool Runtime::write_prof(const std::string& path) {
  if (!prof_) {
    IVY_WARN() << "write_prof(" << path << ") with the profiler disabled";
    return false;
  }
  prof_->sync_to(sim_.now());
  std::ofstream out(path);
  if (!out) {
    IVY_WARN() << "write_prof: cannot open " << path;
    return false;
  }
  prof_->write_folded(out);
  if (prof_->slice() > 0) {
    const std::string csv_path = path + ".util.csv";
    std::ofstream csv(csv_path);
    if (!csv) {
      IVY_WARN() << "write_prof: cannot open " << csv_path;
      return false;
    }
    prof_->write_timeline_csv(csv);
  }
  return true;
}

alloc::SharedHeap& Runtime::heap(NodeId node) {
  NodeCtx& ctx = node_of(node);
  if (ctx.two_level.has_value()) return *ctx.two_level;
  return ctx.central;
}

void Runtime::host_read_bytes(SvmAddr addr, std::span<std::byte> out) {
  drain();  // ownership may be in flight right after run() returns
  const svm::Geometry geo = cfg_.geometry();
  std::size_t done = 0;
  while (done < out.size()) {
    const SvmAddr a = addr + done;
    const PageId page = geo.page_of(a);
    const std::size_t off = geo.offset_of(a);
    const std::size_t chunk = std::min(out.size() - done, geo.page_size - off);
    // Find the owner; its image is authoritative.
    NodeId owner = kNoNode;
    for (NodeId n = 0; n < cfg_.nodes; ++n) {
      if (node_of(n).svm.table().at(page).owned) {
        IVY_CHECK_EQ(owner, kNoNode);
        owner = n;
      }
    }
    IVY_CHECK_NE(owner, kNoNode);
    svm::Svm& osvm = node_of(owner).svm;
    if (osvm.table().at(page).on_disk) {
      // Peek the disk image without disturbing counters' meaning much:
      // host reads are instrumentation, so go through a scratch copy.
      std::vector<std::byte> scratch(geo.page_size);
      osvm.paging_disk().read(page, scratch);
      std::memcpy(out.data() + done, scratch.data() + off, chunk);
    } else if (const std::byte* frame = osvm.frames().peek(page)) {
      std::memcpy(out.data() + done, frame + off, chunk);
    } else {
      std::memset(out.data() + done, 0, chunk);  // never materialized
    }
    done += chunk;
  }
}

void Runtime::host_write_bytes(SvmAddr addr, std::span<const std::byte> in) {
  drain();
  const svm::Geometry geo = cfg_.geometry();
  std::size_t done = 0;
  while (done < in.size()) {
    const SvmAddr a = addr + done;
    const PageId page = geo.page_of(a);
    const std::size_t off = geo.offset_of(a);
    const std::size_t chunk = std::min(in.size() - done, geo.page_size - off);
    NodeId owner = kNoNode;
    for (NodeId n = 0; n < cfg_.nodes; ++n) {
      if (node_of(n).svm.table().at(page).owned) owner = n;
    }
    IVY_CHECK_NE(owner, kNoNode);
    svm::Svm& osvm = node_of(owner).svm;
    const svm::PageEntry& entry = osvm.table().at(page);
    // Host writes may not race live read copies (they would go stale).
    IVY_CHECK_MSG(entry.copyset.empty() && !entry.on_disk,
                  "host_write to a shared/spilled page " << page);
    std::byte* frame = osvm.usable_frame(page);
    std::memcpy(frame + off, in.data() + done, chunk);
    done += chunk;
  }
}

std::string Runtime::dump_state() const {
  std::ostringstream out;
  for (NodeId n = 0; n < cfg_.nodes; ++n) {
    const NodeCtx& ctx = node_of(n);
    out << "node " << n << ": procs=" << ctx.sched.proc_count()
        << " ready=" << ctx.sched.ready_count()
        << " rpc_outstanding=" << ctx.rpc.outstanding_requests() << '\n';
  }
  const PageId pages = cfg_.total_pages();
  for (PageId p = 0; p < pages; ++p) {
    bool interesting = false;
    int owners = 0;
    for (NodeId n = 0; n < cfg_.nodes; ++n) {
      const svm::PageEntry& e = node_of(n).svm.table().at(p);
      owners += e.owned ? 1 : 0;
      interesting = interesting || e.fault_in_progress ||
                    !e.deferred_requests.empty() || !e.local_waiters.empty();
    }
    if (!interesting && owners == 1) continue;
    out << "page " << p << " (owners=" << owners << "):\n";
    for (NodeId n = 0; n < cfg_.nodes; ++n) {
      const svm::PageEntry& e = node_of(n).svm.table().at(p);
      if (!e.owned && !e.fault_in_progress && e.deferred_requests.empty() &&
          e.local_waiters.empty() && e.access == svm::Access::kNil) {
        continue;
      }
      out << "  node " << n << ": access=" << svm::to_string(e.access)
          << " owned=" << e.owned << " probOwner=" << e.prob_owner
          << " fault=" << e.fault_in_progress
          << " level=" << static_cast<int>(e.fault_level)
          << " version=" << e.version
          << " deferred=" << e.deferred_requests.size()
          << " waiters=" << e.local_waiters.size() << '\n';
    }
  }
  return out.str();
}

void Runtime::check_coherence_invariants() {
  drain();
  const PageId pages = cfg_.total_pages();
  for (PageId p = 0; p < pages; ++p) {
    NodeId owner = kNoNode;
    bool any_fault = false;
    for (NodeId n = 0; n < cfg_.nodes; ++n) {
      const svm::PageEntry& e = node_of(n).svm.table().at(p);
      any_fault = any_fault || e.fault_in_progress;
      if (e.owned) {
        IVY_CHECK_MSG(owner == kNoNode,
                      "two owners for page " << p << ": " << owner << " and "
                                             << n);
        owner = n;
      }
    }
    if (any_fault) continue;  // transitional; only audit quiescent pages
    IVY_CHECK_MSG(owner != kNoNode, "page " << p << " has no owner");
    const svm::PageEntry& oe = node_of(owner).svm.table().at(p);
    // Readers must be reachable from the owner through copyset edges
    // (a flat set normally; a tree with distributed copysets).
    NodeSet reachable;
    reachable.add(owner);
    for (NodeId round = 0; round < cfg_.nodes; ++round) {
      NodeSet next = reachable;
      reachable.for_each([&](NodeId n) {
        next |= node_of(n).svm.table().at(p).copyset;
      });
      if (next == reachable) break;
      reachable = next;
    }
    for (NodeId n = 0; n < cfg_.nodes; ++n) {
      if (n == owner) continue;
      const svm::PageEntry& e = node_of(n).svm.table().at(p);
      IVY_CHECK_MSG(e.access != svm::Access::kWrite,
                    "non-owner " << n << " has write access to page " << p);
      if (e.access == svm::Access::kRead) {
        IVY_CHECK_MSG(reachable.contains(n),
                      "reader " << n << " unreachable from owner's copy tree"
                                << " for page " << p);
        IVY_CHECK_MSG(oe.access != svm::Access::kWrite,
                      "owner writes page " << p << " while " << n << " reads");
      }
    }
    // probOwner chains terminate at the owner within nodes-1 hops.
    for (NodeId n = 0; n < cfg_.nodes; ++n) {
      NodeId cursor = n;
      int hops = 0;
      while (cursor != owner) {
        cursor = node_of(cursor).svm.table().at(p).prob_owner;
        IVY_CHECK_MSG(++hops <= static_cast<int>(cfg_.nodes),
                      "probOwner chain from " << n << " for page " << p
                                              << " does not reach owner");
      }
    }
  }
}

}  // namespace ivy::runtime
