#include "ivy/runtime/config.h"

#include "ivy/base/check.h"

namespace ivy::runtime {

void Config::validate() const {
  IVY_CHECK_GT(nodes, 0u);
  IVY_CHECK_LE(nodes, kMaxNodes);
  IVY_CHECK_GE(page_size, std::size_t{256});
  IVY_CHECK_EQ(page_size & (page_size - 1), 0u);  // power of two
  IVY_CHECK_GT(heap_pages, 0u);
  IVY_CHECK_GT(stack_region_pages, 0u);
  IVY_CHECK_GT(frames_per_node, std::size_t{4});
  IVY_CHECK_LT(manager_node, nodes);
  IVY_CHECK_LT(initial_owner, nodes);
  IVY_CHECK_GT(sched.stack_pages, 0u);
  IVY_CHECK_GT(chunk_bytes, 0u);
  IVY_CHECK_EQ(chunk_bytes % page_size, 0u);
  IVY_CHECK_LE(sched.lower_threshold, sched.upper_threshold);
}

}  // namespace ivy::runtime
