#include "ivy/runtime/flags.h"

#include <cstdlib>
#include <cstring>

namespace ivy::runtime {
namespace {

bool parse_manager(const std::string& text, svm::ManagerKind* out) {
  if (text == "centralized") {
    *out = svm::ManagerKind::kCentralized;
  } else if (text == "fixed" || text == "fixed_distributed") {
    *out = svm::ManagerKind::kFixedDistributed;
  } else if (text == "dynamic" || text == "dynamic_distributed") {
    *out = svm::ManagerKind::kDynamicDistributed;
  } else if (text == "broadcast") {
    *out = svm::ManagerKind::kBroadcast;
  } else {
    return false;
  }
  return true;
}

/// Parses a duration with an optional ms/us/ns suffix (bare numbers are
/// nanoseconds): "5ms", "250us", "1000".
bool parse_duration(const char* text, Time* out) {
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (end == text || v < 0) return false;
  if (std::strcmp(end, "ms") == 0) {
    *out = ms(v);
  } else if (std::strcmp(end, "us") == 0) {
    *out = us(v);
  } else if (std::strcmp(end, "ns") == 0 || *end == '\0') {
    *out = v;
  } else {
    return false;
  }
  return true;
}

}  // namespace

void ObsFlags::apply(Config& cfg) const {
  if (tracing() || !metrics_out.empty()) {
    cfg.trace_enabled = true;
    cfg.trace_capacity = trace_capacity;
  }
  if (oracle != oracle::Mode::kOff) cfg.oracle_mode = oracle;
  if (manager.has_value()) cfg.manager = *manager;
  if (fault.active()) cfg.fault = fault;
  if (fault_seed.has_value()) cfg.fault_seed = *fault_seed;
  if (profiling()) {
    cfg.prof_enabled = true;
    cfg.prof_slice = prof_slice;
  }
}

bool parse_obs_flags(int* argc, char** argv, ObsFlags* out,
                     std::string* error) {
  int kept = 1;
  bool ok = true;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    // Splits "--name" / "--name=value" / "--name value"; value may be
    // null for an unrecognized token.
    std::string name = arg;
    const char* value = nullptr;
    if (const char* eq = std::strchr(arg, '=');
        eq != nullptr && arg[0] == '-') {
      name.assign(arg, eq);
      value = eq + 1;
    }
    const auto take_value = [&]() -> const char* {
      if (value != nullptr) return value;
      if (i + 1 < *argc) return argv[++i];
      *error = name + " needs a value";
      ok = false;
      return nullptr;
    };
    if (name == "--trace-out") {
      if (const char* v = take_value()) out->trace_out = v;
    } else if (name == "--metrics-out") {
      if (const char* v = take_value()) out->metrics_out = v;
    } else if (name == "--trace-capacity") {
      if (const char* v = take_value()) {
        out->trace_capacity = std::strtoull(v, nullptr, 10);
        if (out->trace_capacity == 0) {
          *error = "--trace-capacity must be positive";
          ok = false;
        }
      }
    } else if (name == "--hot-pages") {
      if (const char* v = take_value()) {
        out->hot_pages = std::strtoull(v, nullptr, 10);
      }
    } else if (name == "--oracle") {
      if (const char* v = take_value()) {
        if (!oracle::parse_mode(v, &out->oracle)) {
          *error = std::string("--oracle expects off|warn|strict, got ") + v;
          ok = false;
        }
      }
    } else if (name == "--manager") {
      if (const char* v = take_value()) {
        svm::ManagerKind kind;
        if (parse_manager(v, &kind)) {
          out->manager = kind;
        } else {
          *error = std::string(
                       "--manager expects centralized|fixed|dynamic|"
                       "broadcast, got ") +
                   v;
          ok = false;
        }
      }
    } else if (name == "--fault") {
      if (const char* v = take_value()) {
        std::string why;
        if (!fault::parse_fault_spec(v, &out->fault, &why)) {
          *error = "--fault: " + why;
          ok = false;
        }
      }
    } else if (name == "--fault-seed") {
      if (const char* v = take_value()) {
        out->fault_seed = std::strtoull(v, nullptr, 0);
      }
    } else if (name == "--prof-out") {
      if (const char* v = take_value()) out->prof_out = v;
    } else if (name == "--prof-slice") {
      if (const char* v = take_value()) {
        if (!parse_duration(v, &out->prof_slice) || out->prof_slice <= 0) {
          *error = std::string(
                       "--prof-slice expects a positive duration "
                       "(e.g. 5ms, 250us, 1000ns), got ") +
                   v;
          ok = false;
        }
      }
    } else {
      argv[kept++] = argv[i];  // not ours: keep for the caller
      continue;
    }
    if (!ok) break;
  }
  if (ok) *argc = kept;
  return ok;
}

const char* obs_flags_usage() {
  return "[--trace-out PATH] [--metrics-out PATH] [--trace-capacity N]\n"
         "          [--hot-pages N] [--oracle off|warn|strict]\n"
         "          [--manager centralized|fixed|dynamic|broadcast]\n"
         "          [--fault SPEC] [--fault-seed N]\n"
         "          [--prof-out PATH] [--prof-slice DUR]";
}

}  // namespace ivy::runtime
