// Typed views over shared virtual memory.
//
// "Programs ... do not need to know where the shared data structures are
// in the sense that references to these data structures are the same as
// to other data structures."  SharedArray<T> gives application code plain
// operator[] syntax; each element access goes through the page-table
// rights check and, on a miss, the full coherence protocol.
#pragma once

#include <type_traits>

#include "ivy/proc/svm_io.h"

namespace ivy::runtime {

namespace detail {

/// Lvalue proxy so `a[i] = x`, `x = a[i]`, and `a[i] += x` all work with
/// the right fault semantics (reads take read faults, stores write
/// faults, updates both).
template <typename T>
class ElementProxy {
 public:
  explicit ElementProxy(SvmAddr addr) : addr_(addr) {}

  operator T() const { return proc::svm_read<T>(addr_); }  // NOLINT(google-explicit-constructor)

  ElementProxy& operator=(const T& value) {
    proc::svm_write<T>(addr_, value);
    return *this;
  }
  ElementProxy& operator=(const ElementProxy& other) {
    return *this = static_cast<T>(other);
  }
  ElementProxy& operator+=(const T& v) { return *this = static_cast<T>(*this) + v; }
  ElementProxy& operator-=(const T& v) { return *this = static_cast<T>(*this) - v; }
  ElementProxy& operator*=(const T& v) { return *this = static_cast<T>(*this) * v; }

 private:
  SvmAddr addr_;
};

}  // namespace detail

template <typename T>
class SharedArray {
  static_assert(std::is_trivially_copyable_v<T>,
                "shared memory holds trivially copyable values");

 public:
  SharedArray() = default;
  SharedArray(SvmAddr base, std::size_t count) : base_(base), count_(count) {}

  [[nodiscard]] T get(std::size_t i) const {
    return proc::svm_read<T>(address_of(i));
  }
  void set(std::size_t i, const T& value) const {
    proc::svm_write<T>(address_of(i), value);
  }
  [[nodiscard]] detail::ElementProxy<T> operator[](std::size_t i) const {
    return detail::ElementProxy<T>(address_of(i));
  }

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] SvmAddr address() const { return base_; }
  [[nodiscard]] SvmAddr address_of(std::size_t i) const {
    IVY_CHECK_LT(i, count_);
    return base_ + static_cast<SvmAddr>(i) * sizeof(T);
  }
  [[nodiscard]] bool valid() const { return base_ != kNullSvmAddr; }

  /// Sub-view [from, from+len).
  [[nodiscard]] SharedArray slice(std::size_t from, std::size_t len) const {
    IVY_CHECK_LE(from + len, count_);
    return SharedArray(address_of(from), len);
  }

 private:
  SvmAddr base_ = kNullSvmAddr;
  std::size_t count_ = 0;
};

template <typename T>
class SharedScalar {
 public:
  SharedScalar() = default;
  explicit SharedScalar(SvmAddr addr) : addr_(addr) {}

  [[nodiscard]] T get() const { return proc::svm_read<T>(addr_); }
  void set(const T& value) const { proc::svm_write<T>(addr_, value); }

  [[nodiscard]] SvmAddr address() const { return addr_; }
  [[nodiscard]] bool valid() const { return addr_ != kNullSvmAddr; }

 private:
  SvmAddr addr_ = kNullSvmAddr;
};

}  // namespace ivy::runtime
