// The IVY runtime — the paper's initialization module plus the client
// interface that ties remote operation, memory mapping, process
// management and memory allocation together (Figure 2).
//
// Typical use:
//
//   ivy::runtime::Config cfg;
//   cfg.nodes = 8;
//   ivy::runtime::Runtime rt(cfg);
//   auto x = rt.alloc_array<double>(n);
//   for (ivy::NodeId p = 0; p < cfg.nodes; ++p)
//     rt.spawn_on(p, [=] { /* parallel work touching x[...] */ });
//   ivy::Time elapsed = rt.run();
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "ivy/alloc/central_allocator.h"
#include "ivy/alloc/two_level_allocator.h"
#include "ivy/fault/plane.h"
#include "ivy/net/ring.h"
#include "ivy/prof/prof.h"
#include "ivy/runtime/config.h"
#include "ivy/runtime/shared.h"
#include "ivy/sync/barrier.h"
#include "ivy/trace/trace.h"

namespace ivy::runtime {

class Runtime {
 public:
  explicit Runtime(Config cfg);
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // --- bootstrap allocation (host side, between runs) --------------------

  [[nodiscard]] SvmAddr alloc_raw(std::size_t bytes);
  void free_raw(SvmAddr addr);

  template <typename T>
  [[nodiscard]] SharedArray<T> alloc_array(std::size_t count) {
    return SharedArray<T>(alloc_raw(count * sizeof(T)), count);
  }
  template <typename T>
  [[nodiscard]] SharedScalar<T> alloc_scalar() {
    return SharedScalar<T>(alloc_raw(sizeof(T)));
  }
  /// `pages` > 1 extends the waiter array over linked pages, for
  /// eventcounts with very many simultaneous waiters.
  [[nodiscard]] sync::Eventcount create_eventcount(std::uint32_t pages = 1);
  [[nodiscard]] sync::Barrier create_barrier(int parties);
  [[nodiscard]] sync::SvmLock create_lock();

  // --- processes ------------------------------------------------------------

  /// Manual scheduling: place a process on a given processor.
  ProcId spawn_on(NodeId node, std::function<void()> body,
                  bool migratable = true);
  /// System scheduling: spawn at the contact node (0) and let the passive
  /// load balancer spread work (enable cfg.sched.load_balancing).
  ProcId spawn(std::function<void()> body, bool migratable = true);

  /// Runs the machine until every process finished; returns the virtual
  /// time that elapsed.  Aborts with diagnostics on deadlock.
  Time run();

  // --- host-side data access (initialization / verification) --------------

  void host_read_bytes(SvmAddr addr, std::span<std::byte> out);
  void host_write_bytes(SvmAddr addr, std::span<const std::byte> in);
  template <typename T>
  [[nodiscard]] T host_read(SvmAddr addr) {
    T v;
    host_read_bytes(addr, std::as_writable_bytes(std::span(&v, 1)));
    return v;
  }
  template <typename T>
  [[nodiscard]] T host_read(const SharedArray<T>& arr, std::size_t i) {
    return host_read<T>(arr.address_of(i));
  }
  template <typename T>
  void host_write(SvmAddr addr, const T& v) {
    host_write_bytes(addr, std::as_bytes(std::span(&v, 1)));
  }

  // --- plumbing ----------------------------------------------------------

  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] NodeId nodes() const { return cfg_.nodes; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] Stats& stats() { return stats_; }
  [[nodiscard]] net::Ring& ring() { return ring_; }
  [[nodiscard]] svm::Svm& svm(NodeId node) { return node_of(node).svm; }
  [[nodiscard]] proc::Scheduler& scheduler(NodeId node) {
    return node_of(node).sched;
  }
  [[nodiscard]] rpc::RemoteOp& rpc(NodeId node) { return node_of(node).rpc; }
  /// Process-context allocator for a node (one- or two-level per config).
  [[nodiscard]] alloc::SharedHeap& heap(NodeId node);
  [[nodiscard]] Time now() const { return sim_.now(); }
  /// Closes a measurement epoch (e.g. one Jacobi iteration, Table 1).
  void mark_epoch() { stats_.mark_epoch(); }

  // --- observability -------------------------------------------------------

  /// The machine's event tracer.  Inert (no buffer) unless enabled via
  /// cfg.trace_enabled or enable_tracing().
  [[nodiscard]] trace::Tracer& tracer() { return tracer_; }
  /// The coherence oracle, or nullptr when cfg.oracle_mode == kOff.
  [[nodiscard]] oracle::Oracle* oracle() { return oracle_.get(); }
  /// The profiler state as of the end of the most recent run(), or
  /// nullptr before the first profiled run.  Tools prefer this over the
  /// live profiler: verification host-reads after a run drain the
  /// simulator, and that tail is not part of the program's profile.
  [[nodiscard]] const prof::Profiler::Snapshot* run_prof() const {
    return run_prof_.get();
  }

  /// The cost-attribution profiler, or nullptr when cfg.prof_enabled is
  /// off.  run() syncs it to the clock and self-checks the attribution.
  [[nodiscard]] prof::Profiler* prof() { return prof_.get(); }
  /// The installed fault plane, or nullptr when cfg.fault is empty.
  [[nodiscard]] fault::FaultPlane* fault_plane() { return fault_plane_.get(); }
  /// Arms the tracer mid-flight (e.g. to trace only a later phase).
  void enable_tracing(std::size_t capacity = 1 << 16);
  /// Writes the retained events as Chrome trace_event JSON (load in
  /// Perfetto / chrome://tracing).  Returns false and warns on I/O error
  /// or when tracing was never enabled.
  bool write_trace(const std::string& path) const;
  /// Writes counters, epoch deltas, latency histograms (and, when tracing
  /// is on, the hot-page ranking) as JSON — or CSV when `path` ends in
  /// ".csv".  `elapsed` labels the run time in the JSON header.
  bool write_metrics(const std::string& path, Time elapsed = 0) const;
  /// Writes the profiler's folded-stack attribution (speedscope /
  /// flamegraph.pl collapsed format) to `path`; with a prof slice armed,
  /// the per-slice utilization timeline additionally lands in
  /// `path + ".util.csv"`.  False (with a warning) when the profiler is
  /// off or on I/O error.
  bool write_prof(const std::string& path);

  /// Runs all still-queued events to completion (straggler deliveries,
  /// retransmission scans).  run() stops the instant the last process
  /// finishes, so ownership handed off by a final duplicate serve can
  /// still be in flight; drain settles the machine.
  void drain() { sim_.run_until_idle(); }

  /// Multi-line diagnostic dump of every non-quiescent page and every
  /// scheduler (used by the deadlock report; handy in tests).
  [[nodiscard]] std::string dump_state() const;

  /// Invariant audit over all page tables (see DESIGN.md §5): exactly one
  /// owner per page, writer exclusivity, copyset ⊇ readers, probOwner
  /// chains terminate.  Drains in-flight events first.  Cheap enough to
  /// call from tests after every phase.
  void check_coherence_invariants();

 private:
  struct NodeCtx {
    NodeCtx(Runtime& rt, NodeId id);
    rpc::RemoteOp rpc;
    svm::Svm svm;
    proc::Scheduler sched;
    alloc::CentralAllocator central;
    std::optional<alloc::TwoLevelAllocator> two_level;
  };

  [[nodiscard]] NodeCtx& node_of(NodeId node) {
    IVY_CHECK_LT(node, nodes_.size());
    return *nodes_[node];
  }
  [[nodiscard]] const NodeCtx& node_of(NodeId node) const {
    IVY_CHECK_LT(node, nodes_.size());
    return *nodes_[node];
  }

  Config cfg_;
  sim::Simulator sim_;
  Stats stats_;
  trace::Tracer tracer_;
  net::Ring ring_;
  std::unique_ptr<fault::FaultPlane> fault_plane_;
  proc::LiveCounter live_;
  // Declared before nodes_: the per-node Svm instances hold raw observer
  // pointers into the oracle, so it must outlive them.
  std::unique_ptr<oracle::Oracle> oracle_;
  std::unique_ptr<prof::Profiler> prof_;
  std::unique_ptr<prof::Profiler::Snapshot> run_prof_;
  std::vector<std::unique_ptr<NodeCtx>> nodes_;
};

}  // namespace ivy::runtime
