// System configuration — the knobs of the whole machine: topology, page
// geometry, physical memory per node, coherence algorithm, scheduling and
// allocation policy, and the virtual-time cost model.
#pragma once

#include <cstdint>
#include <string>

#include "ivy/fault/spec.h"
#include "ivy/oracle/oracle.h"
#include "ivy/proc/scheduler.h"
#include "ivy/sim/cost_model.h"
#include "ivy/svm/svm.h"

namespace ivy::runtime {

struct Config {
  /// Number of processors on the ring (paper: up to 8).
  NodeId nodes = 1;

  // --- shared virtual memory geometry -----------------------------------
  std::size_t page_size = 1024;  ///< paper default: 1 KiB
  /// Pages in the shared heap (allocatable region).
  PageId heap_pages = 8192;
  /// Pages reserved per node for process stacks.
  std::uint32_t stack_region_pages = 512;
  /// Physical frames per node.  Make it smaller than the working set to
  /// reproduce the paging behaviour of Figure 4 / Table 1.
  std::size_t frames_per_node = 1 << 22;
  /// Page replacement policy (Aegis: approximate LRU).
  mem::ReplacementPolicy replacement = mem::ReplacementPolicy::kSampledLru;
  /// Disk transfers stall the whole node (IVY had no I/O overlap);
  /// disable to model the integrated scheduler of the conclusion.
  bool disk_io_stalls_node = true;

  // --- coherence ---------------------------------------------------------
  svm::ManagerKind manager = svm::ManagerKind::kDynamicDistributed;
  NodeId manager_node = 0;
  NodeId initial_owner = 0;
  bool broadcast_invalidation = false;
  /// "Distribution of copy sets": read faults may be served by any copy
  /// holder; copies form a tree and invalidations recurse through it.
  bool distributed_copysets = false;

  // --- processes -----------------------------------------------------------
  proc::SchedConfig sched;

  // --- allocation ------------------------------------------------------------
  /// Use the two-level (chunk-caching) allocator instead of pure
  /// one-level centralized control.
  bool two_level_alloc = false;
  std::size_t chunk_bytes = 64 * 1024;

  // --- observability ---------------------------------------------------------
  /// Arm the structured event tracer at startup.  Off by default: when
  /// disabled no event buffer is allocated and the record macro costs a
  /// single null-pointer test.
  bool trace_enabled = false;
  /// Ring-buffer capacity in events (oldest overwritten when full).
  std::size_t trace_capacity = 1 << 16;
  /// Online coherence oracle: a global observer (zero virtual-time cost)
  /// that checks the single-owner / copyset / chain / invalidation
  /// invariants on every transition.  kStrict aborts on the first
  /// violation; kWarn logs and counts.
  oracle::Mode oracle_mode = oracle::Mode::kOff;
  /// Arm the ivy::prof cost-attribution profiler: every virtual
  /// nanosecond of every node is charged to one category and the sums
  /// are verified against elapsed time after each run.
  bool prof_enabled = false;
  /// Utilization-timeline slice width (0 = per-run totals only).
  Time prof_slice = 0;

  // --- fault injection -------------------------------------------------------
  /// Fault rules applied per (frame, recipient) between the ring and
  /// delivery.  Empty = no fault plane installed: zero extra RNG draws,
  /// bit-identical to a build without the plane.
  fault::FaultSpec fault;
  /// Seed of the fault plane's private RNG stream, independent of `seed`
  /// so the same workload can be rerun under different fault draws.
  std::uint64_t fault_seed = 0xfa017;

  // --- rpc robustness --------------------------------------------------------
  /// Client retransmission timeout / scan period (see rpc::RemoteOp).
  Time rpc_request_timeout = sec(2);
  Time rpc_check_interval = ms(500);
  /// Retransmissions per request before a terminal RequestFailure.
  std::uint32_t rpc_max_retransmits = 16;

  // --- timing ----------------------------------------------------------------
  sim::CostModel costs;

  std::uint64_t seed = 0x19880615;
  std::string name = "ivy";

  [[nodiscard]] PageId total_pages() const {
    return heap_pages + nodes * stack_region_pages;
  }
  [[nodiscard]] svm::Geometry geometry() const {
    return svm::Geometry{page_size, total_pages()};
  }
  /// Validates internal consistency (counts, bounds); aborts on misuse.
  void validate() const;
};

}  // namespace ivy::runtime
