// Shared observability command-line flags.
//
// Every harness in this repo (benches, examples, tools that run a
// machine) accepts the same observability switches; this helper owns
// their parsing so the flag set evolves in exactly one place:
//
//   --trace-out PATH      Chrome trace_event JSON of the (last) run
//   --metrics-out PATH    counters/histograms JSON (CSV if PATH ends .csv)
//   --trace-capacity N    event ring capacity (default 262144)
//   --hot-pages N         print the top-N hot-page table
//   --oracle MODE         coherence oracle: off | warn | strict
//   --fault SPEC          fault-injection rules (see ivy/fault/spec.h)
//   --fault-seed N        seed of the fault plane's private RNG stream
//   --prof-out PATH       folded-stack cost attribution (speedscope)
//   --prof-slice DUR      utilization timeline slice (e.g. 5ms, 250us)
//
// Both "--flag value" and "--flag=value" spellings are accepted.
// Recognized flags are REMOVED from argv, so callers parse their own
// positionals afterwards without seeing ours.
#pragma once

#include <optional>
#include <string>

#include "ivy/runtime/config.h"

namespace ivy::runtime {

struct ObsFlags {
  std::string trace_out;
  std::string metrics_out;
  std::size_t trace_capacity = 1 << 18;
  std::size_t hot_pages = 0;
  oracle::Mode oracle = oracle::Mode::kOff;
  /// Coherence algorithm override (--manager KIND), for driving one
  /// binary across all four managers from CI.
  std::optional<svm::ManagerKind> manager;
  /// Fault-injection rules (--fault SPEC); empty = no fault plane.
  fault::FaultSpec fault;
  std::optional<std::uint64_t> fault_seed;
  /// Folded-stack attribution output (--prof-out PATH); arming it (or a
  /// slice) turns the profiler on.
  std::string prof_out;
  /// Utilization-timeline slice width (--prof-slice DUR).
  Time prof_slice = 0;

  [[nodiscard]] bool tracing() const {
    return !trace_out.empty() || hot_pages > 0;
  }
  [[nodiscard]] bool profiling() const {
    return !prof_out.empty() || prof_slice > 0;
  }
  [[nodiscard]] bool any() const {
    return tracing() || !metrics_out.empty() ||
           oracle != oracle::Mode::kOff || manager.has_value() ||
           fault.active() || fault_seed.has_value() || profiling();
  }

  /// Arms tracing / the oracle / the manager override on a config.
  void apply(Config& cfg) const;
};

/// Parses and strips the shared flags from argv; *argc is updated.
/// Returns false with a description in *error on a malformed flag
/// (unknown flags are left in place for the caller).
bool parse_obs_flags(int* argc, char** argv, ObsFlags* out,
                     std::string* error);

/// One-line usage text for the shared flags, for harness usage messages.
[[nodiscard]] const char* obs_flags_usage();

}  // namespace ivy::runtime
