// IVY — a shared virtual memory system for parallel computing.
//
// Umbrella header and convenience aliases for client programs.  See
// README.md for a tour; examples/quickstart.cpp is the smallest complete
// program.
#pragma once

#include "ivy/base/rng.h"
#include "ivy/base/stats.h"
#include "ivy/proc/svm_io.h"
#include "ivy/runtime/runtime.h"
#include "ivy/sync/barrier.h"
#include "ivy/sync/eventcount.h"
#include "ivy/sync/svm_lock.h"
#include "ivy/trace/chrome_trace.h"
#include "ivy/trace/hot_pages.h"
#include "ivy/trace/metrics.h"

namespace ivy {

using runtime::Config;
using runtime::Runtime;
using runtime::SharedArray;
using runtime::SharedScalar;
using sync::Barrier;
using sync::Eventcount;
using sync::SvmLock;
using sync::SvmLockGuard;

/// Node the current process runs on (process context only).
[[nodiscard]] inline NodeId self_node() {
  return proc::Scheduler::current_scheduler()->node();
}

/// PID of the current process.
[[nodiscard]] inline ProcId current_pid() {
  return proc::Scheduler::current_pcb()->id;
}

/// Charges `units` of application compute time (cost model units).
inline void charge(std::int64_t units) { proc::charge_compute(units); }

/// Marks the current process (non-)migratable.
inline void set_migratable(bool migratable) {
  proc::Scheduler::set_migratable(migratable);
}

}  // namespace ivy
