// Dynamic distributed manager: no managers at all.  Every node keeps a
// probOwner hint per page and fault requests chase the hints; hints are
// rewritten as ownership moves, so chains stay short (Li & Hudak bound
// the total forwarding cost).
//
// Hint updates (paper: "whenever a processor receives an invalidation
// request, relinquishes ownership of the page, or forwards a page fault
// request"):
//   - invalidation: probOwner := new owner          (Svm::on_invalidate)
//   - relinquish:   probOwner := requester          (Manager::serve_write)
//   - forward:      probOwner := requester, for *write* faults — the
//     requester is the owner-to-be.  See the class comment in manager.h
//     for why read-fault forwards leave the hint unchanged here: pointing
//     hints at a node that never becomes owner breaks the
//     "hints point forward in ownership time" invariant that guarantees
//     chains terminate.
#include "ivy/prof/prof.h"
#include "ivy/svm/manager.h"
#include "ivy/svm/observer.h"
#include "ivy/trace/trace.h"

namespace ivy::svm {

void DynamicDistributedManager::route_initial(PageId page,
                                              net::MsgKind kind) {
  const NodeId dst = svm_.table().at(page).prob_owner;
  IVY_CHECK_NE(dst, svm_.self());
  send_fault(dst, page, kind);
}

void DynamicDistributedManager::route_request(net::Message&& msg,
                                              PageId page) {
  PageEntry& entry = svm_.table().at(page);
  if (svm_.options().distributed_copysets &&
      msg.kind == net::MsgKind::kReadFault &&
      entry.access != Access::kNil && svm_.frames().resident(page)) {
    // Distribution of copy sets: a copy holder serves the read itself
    // and remembers the reader as its child in the copy tree.
    entry.copyset.add(msg.origin);
    GrantPayload grant;
    grant.page = page;
    grant.version = entry.version;
    grant.write_grant = false;
    grant.body = svm_.snapshot(page);
    svm_.stats().bump(svm_.self(), Counter::kPageTransfers);
    IVY_EVT(svm_.stats(), record(svm_.self(), trace::EventKind::kPageSent,
                                 page, msg.origin));
    if (CoherenceObserver* obs = svm_.observer()) {
      obs->on_read_served(svm_.self(), page, msg.origin);
      svm_.notify_content(page, entry.version, /*at_source=*/true);
    }
    IVY_PROF(svm_.stats(),
             retag_wait(msg.origin, prof::Domain::kPageFault, page,
                        prof::Cat::kReadFaultTransfer,
                        svm_.simulator().now()));
    svm_.rpc().reply_to(msg, grant, grant.wire_bytes());
    return;
  }
  const NodeId next = entry.prob_owner;
  IVY_CHECK_NE(next, svm_.self());
  // next == msg.origin is possible for rerouted/retransmitted requests
  // whose era the hints already passed; the origin's dispatch recognizes
  // its own request and re-issues along its fresher hint.
  if (msg.kind == net::MsgKind::kWriteFault && next != msg.origin) {
    entry.prob_owner = msg.origin;
  }
  IVY_PROF(svm_.stats(), note_hop(msg.origin, page));
  note_forward(msg, page, next);
  svm_.rpc().forward(std::move(msg), next);
}

}  // namespace ivy::svm
