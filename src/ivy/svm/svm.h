// The memory mapping manager — one per node.
//
// "Memory mapping managers implement the mapping between local memories
// and the shared virtual memory address space.  Other than mapping, their
// chief responsibility is to keep the address space coherent at all
// times."
//
// Svm owns this node's page table, physical frame pool and paging disk,
// and delegates the coherence strategy to a Manager (one of the paper's
// three algorithms, plus a broadcast baseline).  Its client-facing API is
// asynchronous: request_access() invokes a completion callback once the
// right is granted; the process layer turns that into fiber blocking.
#pragma once

#include <functional>
#include <memory>
#include <span>

#include "ivy/base/stats.h"
#include "ivy/mem/disk.h"
#include "ivy/mem/frame_pool.h"
#include "ivy/rpc/remote_op.h"
#include "ivy/svm/page_table.h"
#include "ivy/svm/protocol.h"

namespace ivy::svm {

class CoherenceObserver;
class Manager;

enum class ManagerKind : std::uint8_t {
  kCentralized,        ///< improved centralized manager (owner map on one node)
  kFixedDistributed,   ///< manager of page p is H(p) = p mod N
  kDynamicDistributed, ///< probOwner hints, no managers
  kBroadcast,          ///< faults broadcast, owner answers (baseline)
};

[[nodiscard]] const char* to_string(ManagerKind kind);

struct SvmOptions {
  Geometry geo;
  ManagerKind manager = ManagerKind::kDynamicDistributed;
  NodeId manager_node = 0;   ///< centralized manager's host
  NodeId initial_owner = 0;  ///< default owner of all pages at start
  std::size_t frames_per_node = 8192;
  /// Page replacement (Aegis did approximate LRU; see FramePool).
  mem::ReplacementPolicy replacement = mem::ReplacementPolicy::kSampledLru;
  std::uint64_t seed = 0x1988;
  /// Invalidate via one ring broadcast instead of per-member messages.
  bool broadcast_invalidation = false;
  /// Li & Hudak's "distribution of copy sets" refinement: any node
  /// holding a valid copy may serve a read fault (adding the reader to
  /// its *own* copyset), so copies form a tree rooted at the owner and
  /// invalidation propagates recursively.  Off: only the owner serves
  /// reads (the base algorithms of the ICPP paper).
  bool distributed_copysets = false;
  /// IVY had no disk/compute overlap ("I/O overlaps among the
  /// lightweight processes do not exist in IVY"): a page-in/out stalls
  /// the whole node, not just the faulting process.  Disable to model
  /// the integrated scheduler the conclusion asks for.
  bool disk_io_stalls_node = true;
  /// Global coherence observer (the oracle); null = no observation.
  /// Outside the simulated machine: hooks cost no virtual time.
  CoherenceObserver* observer = nullptr;
};

/// Record used by process migration's direct stack-page handoff
/// ("ownership transfer is inexpensive because it only requires setting
/// the protection bits of the page frames").
struct PageTransfer {
  PageId page = kNoPage;
  std::uint64_t version = 0;
  NodeSet copyset;
  PageBody body;  ///< null when only ownership (not contents) moves
  /// True when the body was requested but elided because the receiver
  /// already holds a valid read copy at the current version (adopt_page
  /// then requires a resident local frame).  False for body == nullptr
  /// transfers whose contents are genuinely meaningless.
  bool body_elided = false;
};

class Svm {
 public:
  Svm(sim::Simulator& sim, rpc::RemoteOp& rpc, Stats& stats, NodeId self,
      NodeId num_nodes, const SvmOptions& options);
  ~Svm();
  Svm(const Svm&) = delete;
  Svm& operator=(const Svm&) = delete;

  // --- client interface -------------------------------------------------

  [[nodiscard]] bool has_access(PageId page, Access want) const {
    return satisfies(table_.at(page).access, want);
  }

  /// Ensures `want` access to `page`; `done` runs when granted (possibly
  /// synchronously).  Access may be revoked again before the caller acts:
  /// callers must re-check and loop.
  void request_access(PageId page, Access want, std::function<void()> done);

  /// Data plane.  Requires the right already held (checked); may span
  /// pages.
  void read_bytes(SvmAddr addr, std::span<std::byte> out);
  void write_bytes(SvmAddr addr, std::span<const std::byte> in);

  // --- migration support --------------------------------------------------

  /// Detaches an owned page for direct transfer to `new_owner`
  /// (migration).  `with_body` ships the current contents (the migrated
  /// process's *current* stack page); otherwise only ownership moves
  /// (upper stack pages, whose content "is meaningless").
  [[nodiscard]] PageTransfer detach_page(PageId page, NodeId new_owner,
                                         bool with_body);
  /// Installs a detached page as owned with write access.
  void adopt_page(const PageTransfer& transfer);
  [[nodiscard]] bool owns(PageId page) const { return table_.at(page).owned; }

  /// Extends the shared address space to `new_num_pages` pages at
  /// runtime.  Every node must perform the same growth (the space is
  /// shared); new pages start owned by the configured initial owner.
  /// Safe mid-protocol: PageEntry references are never held across the
  /// async resume points where this can run.
  void grow_table(PageId new_num_pages);

  // --- plumbing ---------------------------------------------------------

  [[nodiscard]] const Geometry& geometry() const { return options_.geo; }
  [[nodiscard]] const SvmOptions& options() const { return options_; }
  [[nodiscard]] NodeId self() const { return self_; }
  [[nodiscard]] NodeId nodes() const { return nodes_; }
  [[nodiscard]] PageTable& table() { return table_; }
  [[nodiscard]] const PageTable& table() const { return table_; }
  [[nodiscard]] mem::FramePool& frames() { return pool_; }
  [[nodiscard]] mem::Disk& paging_disk() { return disk_; }
  [[nodiscard]] rpc::RemoteOp& rpc() { return rpc_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] Stats& stats() { return stats_; }
  [[nodiscard]] Manager& manager() { return *manager_; }
  [[nodiscard]] CoherenceObserver* observer() const { return observer_; }
  /// Whether a two-phase ownership transfer of `page` awaits its ack.
  [[nodiscard]] bool transfer_pending(PageId page) const {
    return pending_transfers_.contains(page);
  }
  /// Reports this node's current frame image of `page` to the observer
  /// (no-op without an observer or a resident frame).  `at_source` marks
  /// the shipping side of a transfer, false the installing side.
  void notify_content(PageId page, std::uint64_t version, bool at_source);

  /// Virtual time cost accrued by protocol activity on behalf of the
  /// local client (evictions, disk restores) since the last drain; the
  /// process layer charges it to the resuming fiber.
  [[nodiscard]] Time take_pending_charge() {
    Time t = pending_charge_;
    pending_charge_ = 0;
    return t;
  }
  void add_pending_charge(Time t) { pending_charge_ += t; }

  /// Hook stalling this node's CPU for `t` (wired to the scheduler by the
  /// runtime); used when disk_io_stalls_node models IVY's missing
  /// I/O overlap.
  void set_stall_hook(std::function<void(Time)> hook) {
    stall_hook_ = std::move(hook);
  }
  void stall_node(Time t) {
    if (options_.disk_io_stalls_node && stall_hook_) stall_hook_(t);
  }

  // --- helpers shared by the manager strategies --------------------------

  /// Frame bytes for `page`, materializing a zero page lazily for owned
  /// never-touched pages.  Requires the page be usable (owner, not on
  /// disk, or holding a copy).
  [[nodiscard]] std::byte* usable_frame(PageId page);

  /// Starts a disk restore of this node's evicted owned page.  Marks the
  /// page fault-in-progress (deferring remote requests) and completes
  /// after the disk latency.  Requires owned && on_disk && no fault in
  /// progress.
  void begin_disk_restore(PageId page);

  /// Snapshot of the current frame contents as a message body.
  [[nodiscard]] PageBody snapshot(PageId page);

  /// Copies a granted body into the local frame.
  void install_body(PageId page, const PageBody& body);

  /// Finishes an outstanding local fault: clears the flag, resumes local
  /// waiters, replays deferred remote requests.
  void complete_fault(PageId page);

  /// Queues a remote request that cannot be served while this node is
  /// mid-fault (or in post-fault grace) on the page.
  void defer_request(PageId page, net::Message&& msg);

  /// A local process performed an access on a page in post-fault grace;
  /// when all granted waiters have touched it, deferred remote requests
  /// replay.  Called by the ensure_access fast path.
  void consume_grace(PageId page);

  /// Replays all deferred remote requests of `page` through the manager.
  void replay_deferred(PageId page);

  /// Sends invalidations to the owner-held copyset of `page` (version
  /// must already be bumped); `done` runs after all acknowledgements.
  /// Completes synchronously for an empty copyset.
  void invalidate_copies(PageId page, std::function<void()> done);

  /// Invalidation server (wired to kInvalidate / kInvalidateBcast).
  void on_invalidate(net::Message&& msg);

  /// Absorbs a write grant that no longer matches an outstanding fault (a
  /// duplicate request double-served after a retransmission).  Ownership
  /// is a conserved token: the addressee adopts the grant when it is
  /// newer than local knowledge, and acknowledges (or aborts) the
  /// two-phase transfer either way.  Returns true if absorbed.
  bool absorb_grant(const GrantPayload& grant, NodeId from);

  // --- two-phase ownership transfer ---------------------------------------

  /// Old-owner side: marks `page` as granted-to-`to` at `version` and
  /// defers all requests until the kGrantAck arrives.  Called by
  /// Manager::serve_write after the grant reply is sent.  `bodyless`
  /// records that the grant elided the page body (the requester holds a
  /// valid copy), so re-offers and resends elide it too.
  void begin_pending_transfer(PageId page, NodeId to, std::uint64_t version,
                              bool bodyless = false);

  /// New-owner side: confirms (or aborts) a received write grant.
  void send_grant_ack(NodeId to, PageId page, std::uint64_t version,
                      bool accept);

  /// Old-owner side kGrantAck server.
  void on_grant_ack(net::Message&& msg);

  /// If `msg` is a (retransmitted) write fault from the very node this
  /// page is pending-transfer to, answer it with a fresh grant instead of
  /// deferring it — deferring would deadlock: the transfer waits for the
  /// requester's ack, and the requester waits for this reply.  Returns
  /// true when handled.
  bool resend_pending_grant(const net::Message& msg);

  /// kGrantPush server: a re-offered grant arrives as a reliable request
  /// (not a reply), absorbed or rejected like an orphan grant.
  void on_grant_push(net::Message&& msg);

 private:
  mem::FramePool::EvictAction on_evict(PageId page,
                                       std::span<const std::byte> bytes);

  struct PendingTransfer {
    NodeId to = kNoNode;
    std::uint64_t version = 0;
    /// A kGrantPush re-offer for this transfer is in flight.
    bool push_in_flight = false;
    /// The grant elided the page body (requester holds a valid copy at
    /// this version); re-offers and resends stay bodyless.
    bool bodyless = false;
  };

  /// Old-owner liveness for the two-phase transfer: the grant travels as
  /// an rpc *reply*, which is only re-driven by the requester's
  /// retransmissions.  If the requester's rpc no longer exists (it was a
  /// double-served duplicate of an already-satisfied fault) and the grant
  /// frame is lost, nothing re-asks — the transfer would pend forever and
  /// the old owner would defer every request for the page.  The re-offer
  /// timer pushes the held grant to the target as a reliable *request*
  /// (kGrantPush) until the transfer settles either way.
  void arm_reoffer(PageId page, std::uint64_t version);
  void push_pending_grant(PageId page);

  sim::Simulator& sim_;
  rpc::RemoteOp& rpc_;
  Stats& stats_;
  NodeId self_;
  NodeId nodes_;
  SvmOptions options_;
  CoherenceObserver* observer_;
  PageTable table_;
  mem::FramePool pool_;
  mem::Disk disk_;
  std::unique_ptr<Manager> manager_;
  std::unordered_map<PageId, PendingTransfer> pending_transfers_;
  std::function<void(Time)> stall_hook_;
  Time pending_charge_ = 0;
};

}  // namespace ivy::svm
