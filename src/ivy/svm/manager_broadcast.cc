// Broadcast manager: each fault is located with the remote-operation
// module's "reply from any receiving processor" broadcast scheme (the
// paper names locating page owners as the use case for that scheme).
// Simple, but every fault interrupts every processor — the ablation
// bench quantifies the cost.
#include "ivy/svm/manager.h"

#include "ivy/prof/prof.h"

namespace ivy::svm {

BroadcastManager::BroadcastManager(Svm& svm) : Manager(svm) {
  // Busy nodes ignore probes instead of deferring them (see
  // defer_busy_requests), so a fault that races an ownership move is
  // resolved by retransmitting the broadcast; the default half-second
  // cadence would make contended faults glacial.
  svm.rpc().set_request_timeout(ms(40));
  svm.rpc().set_check_interval(ms(20));
}

void BroadcastManager::route_initial(PageId page, net::MsgKind kind) {
  IVY_CHECK_GT(svm_.nodes(), 1u);
  PageEntry& entry = svm_.table().at(page);
  FaultPayload payload;
  payload.page = page;
  payload.has_copy = entry.access == Access::kRead;
  payload.hint = entry.prob_owner;
  payload.broadcast = true;
  payload.copy_version = entry.version;
  entry.fault_rpc = svm_.rpc().broadcast(
      kind, payload, FaultPayload::kWireBytes, rpc::BcastReply::kAny,
      [this](net::Message&& reply) { on_grant(std::move(reply)); });
}

void BroadcastManager::route_request(net::Message&& msg, PageId page) {
  // Not the owner: a broadcast probe that is none of our business.  Still
  // count it against the requester as a wasted probe hop — it is exactly
  // the "every fault interrupts every processor" cost the ablation bench
  // quantifies.
  IVY_PROF(svm_.stats(), note_hop(msg.origin, page));
  svm_.rpc().ignore(msg);
}

}  // namespace ivy::svm
