// Coherence manager strategies.
//
// All of the paper's algorithms use write-invalidate with a single
// (moving) owner per page; they differ only in how a faulting processor
// *locates* the owner:
//
//   - improved centralized manager: ask the manager node, which keeps an
//     owner map and forwards the request; the owner answers directly and
//     keeps the copyset, so no confirmation to the manager is needed.
//   - fixed distributed manager: identical, but the manager of page p is
//     H(p) = p mod N, spreading the bottleneck.
//   - dynamic distributed manager: no managers; each node chases its
//     probOwner hint, and hints are compressed as requests flow.
//   - broadcast manager: every fault is a ring broadcast; the owner
//     replies, everyone else ignores (baseline for the ablation).
//
// The owner-side mechanics — serving read copies, transferring ownership
// with the copyset, invalidation, deferring requests that arrive while a
// node is itself mid-fault on the page — are shared here in Manager.
#pragma once

#include <memory>

#include "ivy/net/message.h"
#include "ivy/svm/svm.h"

namespace ivy::svm {

class Manager {
 public:
  static std::unique_ptr<Manager> create(Svm& svm);
  virtual ~Manager() = default;

  /// Client side: initiate a fault for `page` at level `want`.  The local
  /// PageEntry already has fault_in_progress set; completion goes through
  /// Svm::complete_fault().
  void start_fault(PageId page, Access want);

  /// Server side: a kReadFault/kWriteFault request arrived (possibly
  /// forwarded, possibly replayed from the deferred queue).
  void on_fault_request(net::Message&& msg);

  /// Pushes a deferred request back into the routing fabric (used by the
  /// deadlock-avoidance reroute of requests parked at non-owners).
  void reroute(net::Message&& msg, PageId page) {
    route_request(std::move(msg), page);
  }

  /// The shared address space grew (Svm::grow_table): managers with
  /// per-page bookkeeping extend it.  New pages start with the
  /// configured initial owner, matching the page-table init.
  virtual void on_table_grown(PageId new_num_pages);

 protected:
  explicit Manager(Svm& svm) : svm_(svm) {}

  /// Routes the initial request of a fault this node cannot satisfy
  /// locally.  `kind` is kReadFault or kWriteFault.
  virtual void route_initial(PageId page, net::MsgKind kind) = 0;

  /// Routes a received request this node cannot serve (it is not the
  /// owner and has no fault in progress for the page).
  virtual void route_request(net::Message&& msg, PageId page) = 0;

  /// Whether requests arriving while this node is protocol-busy on the
  /// page are queued for replay (unicast managers: the deferred message
  /// is the only live copy) or silently ignored (broadcast probes: every
  /// node got one, and replaying a stale copy could double-serve it).
  [[nodiscard]] virtual bool defer_busy_requests() const { return true; }

  // --- shared owner-side mechanics ---------------------------------------

  /// Serves a read fault at the owner: downgrade to read access, add the
  /// requester to the copyset, reply with a copy.
  void serve_read(net::Message&& msg, PageId page);

  /// Serves a write fault at the owner: bump version, relinquish
  /// ownership and access, reply with page + copyset.
  void serve_write(net::Message&& msg, PageId page);

  /// Requester side: a grant reply arrived.
  void on_grant(net::Message&& reply);

  /// Owner-side local write upgrade (owner already, needs invalidation
  /// and/or disk restore only).  Returns true when handled locally.
  bool try_local_write_upgrade(PageId page);

  /// Bookkeeping hook invoked after serving a write fault (ownership
  /// handed to `new_owner`); centralized/fixed managers refresh their
  /// owner maps here.
  virtual void note_write_grant(PageId page, NodeId new_owner);

  /// Locates the owner with the remote-operation module's any-reply
  /// broadcast — the fallback when hint chains degenerate into cycles.
  void broadcast_locate(PageId page, net::MsgKind kind);

  /// Records a routing hop (trace event + observer) just before the
  /// request is handed to rpc().forward().
  void note_forward(const net::Message& msg, PageId page, NodeId next);

  /// Re-drives an in-progress fault after its request bounced or its
  /// grant proved stale.  Handles the case where ownership arrived
  /// through a side channel (absorbed duplicate) in the meantime.
  void retry_fault(PageId page, net::MsgKind kind);

  /// Builds and sends the fault request for this node's outstanding
  /// fault, wiring the reply into on_grant().
  void send_fault(NodeId dst, PageId page, net::MsgKind kind);

  /// Failure callback attached to every fault request.  Retransmission
  /// makes individual frame losses survivable, but a lost *grant* whose
  /// request was then cancelled leaves eagerly-updated owner maps and
  /// probOwner hints pointing at a node that never became owner; requests
  /// routed by that state can cycle without ever reaching the true owner,
  /// and the origin's retransmissions are re-forwarded into the same
  /// cycle.  When the rpc layer gives up, the routing state is presumed
  /// poisoned and the fault escalates to a broadcast locate, which
  /// consults no routing state at all.  Bounded per fault by
  /// PageEntry::lost_retries; exhausting the bound aborts the run.
  [[nodiscard]] rpc::RemoteOp::FailureCallback relocate_on_failure(
      PageId page);

  Svm& svm_;
};

/// Improved centralized manager.  The manager node keeps owner[p]; on a
/// write fault it forwards the request and eagerly records the requester
/// as the new owner, so no confirmation round-trip exists.
class CentralizedManager final : public Manager {
 public:
  explicit CentralizedManager(Svm& svm);

 public:
  void on_table_grown(PageId new_num_pages) override;

 protected:
  void route_initial(PageId page, net::MsgKind kind) override;
  void route_request(net::Message&& msg, PageId page) override;
  void note_write_grant(PageId page, NodeId new_owner) override;

 private:
  [[nodiscard]] bool is_manager() const {
    return svm_.self() == svm_.options().manager_node;
  }
  /// Manager bookkeeping: picks the forward target and updates the owner
  /// map for write faults.
  NodeId manage(PageId page, net::MsgKind kind, NodeId origin);

  std::vector<NodeId> owner_map_;  ///< populated only on the manager node
};

/// Fixed distributed manager: manager(p) = p mod N.
class FixedDistributedManager final : public Manager {
 public:
  explicit FixedDistributedManager(Svm& svm);
  void on_table_grown(PageId new_num_pages) override;

 protected:
  void route_initial(PageId page, net::MsgKind kind) override;
  void route_request(net::Message&& msg, PageId page) override;
  void note_write_grant(PageId page, NodeId new_owner) override;

 private:
  [[nodiscard]] NodeId manager_of(PageId page) const {
    return static_cast<NodeId>(page % svm_.nodes());
  }
  NodeId manage(PageId page, net::MsgKind kind, NodeId origin);

  std::vector<NodeId> owner_map_;  ///< entries for pages this node manages
};

/// Dynamic distributed manager: chase probOwner hints; forwarding a
/// *write* fault rewrites the hint to the requester (the owner-to-be).
///
/// Deviation note: the paper says probOwner is updated on *every*
/// forward.  We update it only on write-fault forwards; a read requester
/// never becomes an owner, and pointing hints at it can (in an
/// event-driven implementation that defers requests at faulting nodes)
/// route a node's own retried request back to itself.  Read forwards
/// leaving the hint untouched costs at most extra hops along ownership
/// history and preserves the termination invariant the tests check.
class DynamicDistributedManager final : public Manager {
 public:
  explicit DynamicDistributedManager(Svm& svm) : Manager(svm) {}

 protected:
  void route_initial(PageId page, net::MsgKind kind) override;
  void route_request(net::Message&& msg, PageId page) override;
};

/// Broadcast manager: the paper's "reply from any receiving processor"
/// broadcast locates the owner in one round at the cost of interrupting
/// every node on every fault.
class BroadcastManager final : public Manager {
 public:
  explicit BroadcastManager(Svm& svm);

 protected:
  void route_initial(PageId page, net::MsgKind kind) override;
  void route_request(net::Message&& msg, PageId page) override;
  bool defer_busy_requests() const override { return false; }
};

}  // namespace ivy::svm
