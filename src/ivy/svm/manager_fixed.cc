// Fixed distributed manager: "every processor [is given] a predetermined
// set of pages to manage ... there is one manager per processor, each
// responsible for the pages specified by the fixed mapping function H".
// We use the paper's most straightforward H(p) = p mod N.
#include "ivy/svm/manager.h"

#include "ivy/prof/prof.h"

namespace ivy::svm {

FixedDistributedManager::FixedDistributedManager(Svm& svm) : Manager(svm) {
  // Full-size map; only the entries with manager_of(p) == self are used.
  owner_map_.assign(svm.geometry().num_pages, svm.options().initial_owner);
}

NodeId FixedDistributedManager::manage(PageId page, net::MsgKind kind,
                                       NodeId origin) {
  IVY_CHECK_EQ(manager_of(page), svm_.self());
  NodeId owner = owner_map_[page];
  if (owner == origin) owner = kNoNode;  // stale (migration handoff)
  if (kind == net::MsgKind::kWriteFault) owner_map_[page] = origin;
  return owner;
}

void FixedDistributedManager::route_initial(PageId page, net::MsgKind kind) {
  const NodeId mgr = manager_of(page);
  if (mgr != svm_.self()) {
    send_fault(mgr, page, kind);
    return;
  }
  NodeId owner = manage(page, kind, svm_.self());
  if (owner == kNoNode || owner == svm_.self()) {
    owner = svm_.table().at(page).prob_owner;
  }
  IVY_CHECK_NE(owner, svm_.self());
  send_fault(owner, page, kind);
}

void FixedDistributedManager::route_request(net::Message&& msg, PageId page) {
  if (manager_of(page) == svm_.self()) {
    const auto payload = std::any_cast<FaultPayload>(msg.payload);
    NodeId owner = manage(page, msg.kind, msg.origin);
    if (owner == kNoNode) owner = payload.hint;
    if (owner == svm_.self() || owner == kNoNode) {
      // The map (or the requester's hint) points at us, but we are not
      // the owner — stale bookkeeping after an aborted transfer.  Chase
      // our own hint instead.
      owner = svm_.table().at(page).prob_owner;
    }
    IVY_CHECK_NE(owner, svm_.self());
    IVY_PROF(svm_.stats(), note_hop(msg.origin, page));
    note_forward(msg, page, owner);
    svm_.rpc().forward(std::move(msg), owner);
    return;
  }
  const NodeId next = svm_.table().at(page).prob_owner;
  IVY_CHECK_NE(next, svm_.self());
  // next may equal msg.origin (stale routing); the origin re-issues.
  IVY_PROF(svm_.stats(), note_hop(msg.origin, page));
  note_forward(msg, page, next);
  svm_.rpc().forward(std::move(msg), next);
}

void FixedDistributedManager::note_write_grant(PageId page,
                                               NodeId new_owner) {
  if (manager_of(page) == svm_.self()) owner_map_[page] = new_owner;
}

void FixedDistributedManager::on_table_grown(PageId new_num_pages) {
  if (owner_map_.size() < new_num_pages) {
    owner_map_.resize(new_num_pages, svm_.options().initial_owner);
  }
}

}  // namespace ivy::svm
