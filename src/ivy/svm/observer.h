// Coherence state-transition observer.
//
// The SVM layer reports every protocol-relevant state change — fault
// life cycle, request routing, grant serving, the two-phase ownership
// transfer, migration handoff, invalidation rounds, page-body movement —
// through this interface.  The observer is a *global* entity outside the
// simulated machines (it sees all nodes at once and costs no virtual
// time); the coherence oracle (ivy/oracle) implements it to check the
// protocol invariants online.  A null observer (the default) costs one
// pointer test per site.
//
// All hooks fire *after* the local page-table mutation they describe, so
// an observer inspecting the tables sees the post-transition state.
#pragma once

#include <cstdint>
#include <span>

#include "ivy/svm/page_table.h"

namespace ivy::svm {

class Svm;

class CoherenceObserver {
 public:
  virtual ~CoherenceObserver() = default;

  /// A node's Svm came up; called once per node before the run starts.
  virtual void attach(Svm* svm) = 0;

  // --- fault life cycle (at the faulting node) ---------------------------

  virtual void on_fault_start(NodeId node, PageId page, Access want) = 0;
  virtual void on_fault_complete(NodeId node, PageId page, Access level) = 0;

  // --- request routing ---------------------------------------------------

  /// `node` forwarded `origin`'s fault request for `page` to `next`.
  virtual void on_forward(NodeId node, PageId page, NodeId next,
                          NodeId origin, bool write_fault) = 0;

  // --- grant serving (at the owner / copy holder) ------------------------

  virtual void on_read_served(NodeId server, PageId page, NodeId reader) = 0;
  /// Write grant sent: `owner` bumped the page to `version` and opened a
  /// two-phase transfer to `to`.
  virtual void on_write_served(NodeId owner, PageId page, NodeId to,
                               std::uint64_t version) = 0;

  // --- two-phase ownership transfer --------------------------------------

  /// `node` accepted a write grant from `from` (now transiently a second
  /// owner, until `from` receives the ack and releases).
  virtual void on_ownership_gained(NodeId node, PageId page, NodeId from,
                                   std::uint64_t version) = 0;
  /// `node` (the old owner) received the accept ack and relinquished.
  virtual void on_ownership_released(NodeId node, PageId page, NodeId to,
                                     std::uint64_t version) = 0;
  /// `node` (the old owner) received a reject ack and resumed ownership.
  virtual void on_transfer_aborted(NodeId node, PageId page,
                                   std::uint64_t version) = 0;

  // --- migration handoff --------------------------------------------------

  /// `node` detached an owned page for direct transfer to `new_owner`
  /// (the token is in flight: transiently zero owners).
  virtual void on_page_detached(NodeId node, PageId page, NodeId new_owner,
                                std::uint64_t version) = 0;
  virtual void on_page_adopted(NodeId node, PageId page,
                               std::uint64_t version) = 0;

  // --- invalidation -------------------------------------------------------

  /// `node` started an invalidation round covering `copies` members.
  virtual void on_invalidate_round(NodeId node, PageId page,
                                   std::uint64_t version, int copies) = 0;
  /// All acknowledgements of the round arrived back at `node`.
  virtual void on_invalidate_round_done(NodeId node, PageId page,
                                        std::uint64_t version) = 0;
  /// `node` dropped its copy on receiving an invalidation.
  virtual void on_copy_dropped(NodeId node, PageId page, NodeId new_owner,
                               std::uint64_t version) = 0;

  // --- page contents ------------------------------------------------------

  /// Page bytes at a transfer endpoint: `at_source` when `node` ships
  /// (or holds) the authoritative image at `version`, false when `node`
  /// installed a received image claiming that version.
  virtual void on_page_content(NodeId node, PageId page,
                               std::uint64_t version,
                               std::span<const std::byte> bytes,
                               bool at_source) = 0;
};

}  // namespace ivy::svm
