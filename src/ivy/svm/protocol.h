// Payloads of the coherence protocol messages.
//
// All nodes live in one host address space, so payloads are plain structs
// carried by value; the page body travels in a shared_ptr (a retransmitted
// or broadcast message copies the handle, not the kilobyte).  Wire sizes
// used for ring timing are declared next to each payload.
#pragma once

#include <memory>
#include <vector>

#include "ivy/base/types.h"
#include "ivy/svm/page_table.h"

namespace ivy::svm {

using PageBody = std::shared_ptr<const std::vector<std::byte>>;

/// kReadFault / kWriteFault request.
struct FaultPayload {
  PageId page = kNoPage;
  /// The requester still holds a valid read copy (write fault by a
  /// copyset member): the grant then moves ownership without the body.
  bool has_copy = false;
  /// The requester's probOwner hint.  Lets a centralized/fixed manager
  /// recover when its owner map went stale through a direct ownership
  /// handoff (process migration bypasses the managers).
  NodeId hint = kNoNode;
  /// This copy was broadcast to locate the owner ("a reply from any
  /// receiving processor ... useful for broadcasting page fault requests
  /// to locate page owners"): only the owner reacts, nobody forwards.
  bool broadcast = false;
  /// Version of the read copy advertised by has_copy.  The owner elides
  /// the page body only when this matches its current version — a copy
  /// granted under an older ownership era must be re-shipped in full.
  std::uint64_t copy_version = 0;

  static constexpr std::uint32_t kWireBytes = 24;
};

/// Reply to a fault request, sent by the (old) owner directly to the
/// faulting processor.
struct GrantPayload {
  PageId page = kNoPage;
  /// Page image; null when the requester already holds a valid copy
  /// (write fault by a copyset member — only ownership moves).
  PageBody body;
  /// Copyset handed to the new owner (write grants only).
  NodeSet copyset;
  /// Page version after the grant (owner bumps it on write grants).
  std::uint64_t version = 0;
  /// True for ownership transfers, false for read copies.
  bool write_grant = false;

  [[nodiscard]] std::uint32_t wire_bytes() const {
    return 32 + static_cast<std::uint32_t>(body ? body->size() : 0);
  }
};

/// kInvalidate request (new owner -> copyset member) and the broadcast
/// variant.
struct InvalidatePayload {
  PageId page = kNoPage;
  NodeId new_owner = kNoNode;
  /// Version at which the invalidation was issued; receivers ignore
  /// stale (retransmitted) invalidations for newer copies.
  std::uint64_t version = 0;
  /// The copy holders this round addresses.  A station outside the set
  /// neither applies nor acknowledges the invalidation (the round
  /// completes on acks from actual holders only); empty = unaddressed
  /// (legacy unicast), every receiver reacts.
  NodeSet copyset;

  static constexpr std::uint32_t kWireBytes = 32;
};

/// Generic short acknowledgement.
struct AckPayload {
  PageId page = kNoPage;

  static constexpr std::uint32_t kWireBytes = 8;
};

/// kGrantAck: closes a two-phase ownership transfer.  Ownership is a
/// conserved token; the old owner keeps the page (and defers all
/// requests for it) until the new owner confirms, so a duplicate-served
/// or dropped grant can never orphan the page.  `accept == false` aborts
/// the transfer (the receiver found the grant stale) and the old owner
/// resumes ownership with its data intact.
struct GrantAckPayload {
  PageId page = kNoPage;
  std::uint64_t version = 0;
  bool accept = true;

  static constexpr std::uint32_t kWireBytes = 24;
};

}  // namespace ivy::svm
