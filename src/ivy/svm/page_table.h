// Per-node page table of the shared virtual memory.
//
// Every node sees the same paged address space; its table records, per
// page, the local access right (nil / read / write), whether this node is
// the owner, the copyset (meaningful at the owner: every node that may
// hold a read copy), and the probOwner hint used by the dynamic
// distributed manager ("not necessarily correct at all times, but if
// incorrect it will at least provide the beginning of a sequence of
// processors through which the true owner can be found").
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "ivy/base/check.h"
#include "ivy/base/types.h"
#include "ivy/net/message.h"

namespace ivy::svm {

enum class Access : std::uint8_t { kNil = 0, kRead = 1, kWrite = 2 };

[[nodiscard]] constexpr bool satisfies(Access have, Access want) {
  return static_cast<std::uint8_t>(have) >= static_cast<std::uint8_t>(want);
}

[[nodiscard]] constexpr const char* to_string(Access a) {
  switch (a) {
    case Access::kNil: return "nil";
    case Access::kRead: return "read";
    case Access::kWrite: return "write";
  }
  return "?";
}

/// Shape of the shared virtual address space.
struct Geometry {
  std::size_t page_size = 1024;  ///< paper default: 1 KiB
  PageId num_pages = 4096;

  [[nodiscard]] SvmAddr size_bytes() const {
    return static_cast<SvmAddr>(page_size) * num_pages;
  }
  [[nodiscard]] PageId page_of(SvmAddr addr) const {
    IVY_CHECK_LT(addr, size_bytes());
    return static_cast<PageId>(addr / page_size);
  }
  [[nodiscard]] std::size_t offset_of(SvmAddr addr) const {
    return static_cast<std::size_t>(addr % page_size);
  }
};

/// A local lightweight process waiting for a fault on this page to
/// complete (several processes on one node may fault on the same page).
struct LocalWaiter {
  Access want = Access::kRead;
  std::function<void()> resume;
};

struct PageEntry {
  Access access = Access::kNil;
  bool owned = false;
  /// Owner hint; exact at the owner's last known location.  All managers
  /// maintain it (the centralized/fixed algorithms use it to bounce
  /// stragglers toward the new owner after a transfer).
  NodeId prob_owner = 0;
  /// Nodes that may hold read copies.  Authoritative at the owner.
  NodeSet copyset;
  /// Monotone page version, bumped by the owner at every write grant.
  /// Guards against stale retransmitted invalidations.
  std::uint64_t version = 0;
  /// The owner's image currently lives on its local disk (evicted).
  bool on_disk = false;

  /// A fault initiated by this node is outstanding for this page.  Also
  /// set during an owner's disk restore, which is a page fault in IVY
  /// terms: remote requests arriving meanwhile are deferred.
  bool fault_in_progress = false;
  /// Level of the outstanding fault (valid while fault_in_progress;
  /// kNil marks a pure disk restore or a pending outbound transfer).
  Access fault_level = Access::kNil;
  /// rpc id of the in-flight fault request, so a bounced request can be
  /// cancelled and re-issued along a fresher hint.
  std::uint64_t fault_rpc = 0;
  /// Virtual time the outstanding fault began, for latency accounting.
  Time fault_start = 0;
  /// Times the in-flight fault bounced back to its originator.  Mutually
  /// stale hints (two concurrent write faulters pointing at each other)
  /// can cycle forever; after a couple of bounces the fault falls back to
  /// locating the owner by broadcast.
  int bounce_count = 0;
  /// Times the in-flight fault's request was given up by the rpc layer
  /// (retransmission cap) and re-driven through a broadcast locate —
  /// recovery from routing state poisoned by a lost grant.  Bounded; see
  /// Manager::relocate_on_failure.
  int lost_retries = 0;
  /// Versions of ownership grants this node accepted whose accept ack the
  /// old owner has not yet confirmed processing (the kGrantAck request's
  /// reply is the confirmation).  A duplicate of such a grant — the old
  /// owner re-sends it under a fresh rpc id while the ack is in flight —
  /// must be re-acked as accepted, never rejected: a reject could
  /// overtake the original accept and abort a confirmed transfer, leaving
  /// two owners.  (page, version) identifies a grant uniquely: owners
  /// bump the version at every serve and never reuse one, even across
  /// aborted transfers.  Once confirmed, the old owner has settled that
  /// transfer and a reject of a late duplicate is harmlessly ignored.
  std::vector<std::uint64_t> unconfirmed_accepts;

  [[nodiscard]] bool accepted_unconfirmed(std::uint64_t version) const {
    return std::find(unconfirmed_accepts.begin(), unconfirmed_accepts.end(),
                     version) != unconfirmed_accepts.end();
  }
  /// Post-fault grace: number of local waiters that still must perform
  /// their first access before deferred remote requests are replayed.  A
  /// real MMU retries the faulting instruction before any other fault is
  /// serviced; without this hold, a deferred remote write request would
  /// steal the page back before the local process ever ran — a livelock
  /// under write contention.
  int grace = 0;

  [[nodiscard]] bool busy() const { return fault_in_progress || grace > 0; }

  /// Local processes waiting on the outstanding fault.
  std::vector<LocalWaiter> local_waiters;
  /// Remote requests that arrived while this node was mid-fault on the
  /// page; replayed once the fault completes.
  std::deque<net::Message> deferred_requests;
  /// A reroute sweep for the deferred queue is scheduled (see
  /// Svm::defer_request: requests held by a non-owner are periodically
  /// re-routed along the probOwner chain so that two concurrent write
  /// faults deferring each other's requests cannot deadlock).
  bool reroute_armed = false;
};

class PageTable {
 public:
  explicit PageTable(const Geometry& geo, NodeId initial_owner, NodeId self)
      : entries_(geo.num_pages) {
    for (auto& e : entries_) {
      e.prob_owner = initial_owner;
      if (self == initial_owner) {
        // "the probOwner field of every entry on all processors is set to
        // some default processor that can be considered the initial owner"
        e.owned = true;
        e.access = Access::kWrite;
      }
    }
  }

  [[nodiscard]] PageEntry& at(PageId page) {
    IVY_CHECK_LT(page, entries_.size());
    return entries_[page];
  }
  [[nodiscard]] const PageEntry& at(PageId page) const {
    IVY_CHECK_LT(page, entries_.size());
    return entries_[page];
  }

  [[nodiscard]] PageId num_pages() const {
    return static_cast<PageId>(entries_.size());
  }

  /// Extends the table to `new_num_pages`, initializing the new entries
  /// exactly as the constructor does (no-op if already that large).
  /// Growth invalidates PageEntry references — callers must re-look up.
  void grow(PageId new_num_pages, NodeId initial_owner, NodeId self) {
    if (new_num_pages <= entries_.size()) return;
    const std::size_t old_size = entries_.size();
    entries_.resize(new_num_pages);
    for (std::size_t i = old_size; i < entries_.size(); ++i) {
      PageEntry& e = entries_[i];
      e.prob_owner = initial_owner;
      if (self == initial_owner) {
        e.owned = true;
        e.access = Access::kWrite;
      }
    }
  }

 private:
  std::vector<PageEntry> entries_;
};

}  // namespace ivy::svm
