#include "ivy/svm/svm.h"

#include <cstring>
#include <memory>
#include <utility>

#include "ivy/base/log.h"
#include "ivy/prof/prof.h"
#include "ivy/svm/manager.h"
#include "ivy/svm/observer.h"
#include "ivy/trace/trace.h"

namespace ivy::svm {

const char* to_string(ManagerKind kind) {
  switch (kind) {
    case ManagerKind::kCentralized: return "centralized";
    case ManagerKind::kFixedDistributed: return "fixed_distributed";
    case ManagerKind::kDynamicDistributed: return "dynamic_distributed";
    case ManagerKind::kBroadcast: return "broadcast";
  }
  return "?";
}

Svm::Svm(sim::Simulator& sim, rpc::RemoteOp& rpc, Stats& stats, NodeId self,
         NodeId num_nodes, const SvmOptions& options)
    : sim_(sim),
      rpc_(rpc),
      stats_(stats),
      self_(self),
      nodes_(num_nodes),
      options_(options),
      observer_(options.observer),
      table_(options.geo, options.initial_owner, self),
      pool_(stats, self, options.geo.page_size, options.frames_per_node,
            options.replacement, options.seed),
      disk_(stats, sim.costs(), self) {
  IVY_CHECK_LT(self, num_nodes);
  IVY_CHECK_LT(options.initial_owner, num_nodes);
  IVY_CHECK_LT(options.manager_node, num_nodes);

  pool_.set_evict_callback([this](PageId page, std::span<const std::byte> b) {
    return on_evict(page, b);
  });
  manager_ = Manager::create(*this);

  auto to_manager = [this](net::Message&& msg) {
    manager_->on_fault_request(std::move(msg));
  };
  rpc_.set_handler(net::MsgKind::kReadFault, to_manager);
  rpc_.set_handler(net::MsgKind::kWriteFault, to_manager);
  // Ownership is a conserved token: a grant that raced past its (already
  // answered) request must be absorbed, not dropped.
  auto orphan = [this](net::Message&& msg) {
    absorb_grant(std::any_cast<GrantPayload>(msg.payload), msg.src);
  };
  rpc_.set_orphan_reply_handler(net::MsgKind::kReadFault, orphan);
  rpc_.set_orphan_reply_handler(net::MsgKind::kWriteFault, orphan);
  rpc_.set_handler(net::MsgKind::kInvalidate, [this](net::Message&& msg) {
    on_invalidate(std::move(msg));
  });
  rpc_.set_handler(net::MsgKind::kInvalidateBcast, [this](net::Message&& msg) {
    on_invalidate(std::move(msg));
  });
  rpc_.set_handler(net::MsgKind::kGrantAck, [this](net::Message&& msg) {
    on_grant_ack(std::move(msg));
  });
  rpc_.set_handler(net::MsgKind::kGrantPush, [this](net::Message&& msg) {
    on_grant_push(std::move(msg));
  });
}

Svm::~Svm() = default;

void Svm::request_access(PageId page, Access want,
                         std::function<void()> done) {
  IVY_CHECK(want != Access::kNil);
  PageEntry& entry = table_.at(page);
  if (satisfies(entry.access, want)) {
    done();
    return;
  }
  entry.local_waiters.push_back(LocalWaiter{want, std::move(done)});
  if (entry.fault_in_progress) {
    // A fault for this page is already in flight; the waiter queues on
    // it.  If the level is insufficient the drain loop re-requests.
    return;
  }
  entry.fault_in_progress = true;
  entry.fault_level = want;
  entry.fault_start = sim_.now();
  stats_.bump(self_, want == Access::kRead ? Counter::kReadFaults
                                           : Counter::kWriteFaults);
  // The fault starts in its locate leg; serving/invalidation sites retag
  // the wait as the critical path advances, complete_fault ends it.
  IVY_PROF(stats_, begin_wait(self_,
                              want == Access::kRead
                                  ? prof::Cat::kReadFaultLocate
                                  : prof::Cat::kWriteFaultLocate,
                              prof::Domain::kPageFault, page, sim_.now()));
  if (entry.owned && entry.on_disk) {
    // Owner's image was paged out: a plain disk fault, no protocol.
    stats_.bump(self_, Counter::kLocalFaultHits);
    entry.fault_in_progress = false;  // begin_disk_restore re-arms it
    begin_disk_restore(page);
    return;
  }
  if (observer_ != nullptr) observer_->on_fault_start(self_, page, want);
  manager_->start_fault(page, want);
}

void Svm::notify_content(PageId page, std::uint64_t version, bool at_source) {
  if (observer_ == nullptr) return;
  const std::byte* bytes = pool_.lookup(page);
  if (bytes == nullptr) return;  // never-materialized zero page
  observer_->on_page_content(
      self_, page, version,
      std::span<const std::byte>(bytes, options_.geo.page_size), at_source);
}

void Svm::read_bytes(SvmAddr addr, std::span<std::byte> out) {
  const Geometry& geo = options_.geo;
  std::size_t done = 0;
  while (done < out.size()) {
    const SvmAddr a = addr + done;
    const PageId page = geo.page_of(a);
    const std::size_t off = geo.offset_of(a);
    const std::size_t chunk = std::min(out.size() - done, geo.page_size - off);
    const PageEntry& entry = table_.at(page);
    IVY_CHECK_MSG(satisfies(entry.access, Access::kRead),
                  "read without access: node " << self_ << " page " << page);
    const std::byte* frame = usable_frame(page);
    std::memcpy(out.data() + done, frame + off, chunk);
    done += chunk;
  }
}

void Svm::write_bytes(SvmAddr addr, std::span<const std::byte> in) {
  const Geometry& geo = options_.geo;
  std::size_t done = 0;
  while (done < in.size()) {
    const SvmAddr a = addr + done;
    const PageId page = geo.page_of(a);
    const std::size_t off = geo.offset_of(a);
    const std::size_t chunk = std::min(in.size() - done, geo.page_size - off);
    const PageEntry& entry = table_.at(page);
    IVY_CHECK_MSG(satisfies(entry.access, Access::kWrite),
                  "write without access: node " << self_ << " page " << page);
    std::byte* frame = usable_frame(page);
    std::memcpy(frame + off, in.data() + done, chunk);
    done += chunk;
  }
}

std::byte* Svm::usable_frame(PageId page) {
  if (std::byte* bytes = pool_.lookup(page); bytes != nullptr) return bytes;
  // Lazily materialize a zero page: only the owner of a never-touched,
  // never-spilled page may be here.
  const PageEntry& entry = table_.at(page);
  IVY_CHECK_MSG(entry.owned && !entry.on_disk,
                "no frame for accessible page " << page << " on node "
                                                << self_);
  return pool_.acquire(page);
}

void Svm::begin_disk_restore(PageId page) {
  PageEntry& entry = table_.at(page);
  IVY_CHECK(entry.owned && entry.on_disk);
  IVY_CHECK(!entry.fault_in_progress);
  entry.fault_in_progress = true;
  entry.fault_level = Access::kNil;
  entry.fault_start = sim_.now();
  IVY_EVT(stats_, record(self_, trace::EventKind::kDiskFault, page));
  // Upserts: a fault that peeled into a disk restore moves its wait here.
  IVY_PROF(stats_, begin_wait(self_, prof::Cat::kDisk,
                              prof::Domain::kPageFault, page, sim_.now()));
  stall_node(sim_.costs().disk_io);
  sim_.schedule_after(sim_.costs().disk_io, [this, page] {
    PageEntry& e = table_.at(page);
    IVY_CHECK(e.owned && e.on_disk);
    std::byte* bytes = pool_.acquire(page);
    disk_.read(page, std::span<std::byte>(bytes, options_.geo.page_size));
    disk_.discard(page);
    e.on_disk = false;
    e.access = e.copyset.empty() ? Access::kWrite : Access::kRead;
    // Sampled at IO completion, matching the kDiskRead span below — not
    // at schedule time, which would timestamp the stall before it
    // happened.
    stats_.record_latency(self_, Hist::kDiskStall, sim_.costs().disk_io);
    IVY_EVT(stats_,
            record_span(self_, trace::EventKind::kDiskRead,
                        sim_.now() - sim_.costs().disk_io,
                        sim_.costs().disk_io, page));
    complete_fault(page);
  });
}

PageBody Svm::snapshot(PageId page) {
  const std::byte* bytes = usable_frame(page);
  return std::make_shared<const std::vector<std::byte>>(
      bytes, bytes + options_.geo.page_size);
}

void Svm::install_body(PageId page, const PageBody& body) {
  if (body == nullptr) {
    // Ownership-only grant: we promised we still hold a valid copy.
    IVY_CHECK_MSG(pool_.resident(page),
                  "bodyless grant but no local copy of page " << page);
    return;
  }
  IVY_CHECK_EQ(body->size(), options_.geo.page_size);
  std::byte* bytes = pool_.acquire(page);
  std::memcpy(bytes, body->data(), body->size());
}

void Svm::complete_fault(PageId page) {
  PageEntry& entry = table_.at(page);
  IVY_CHECK(entry.fault_in_progress);
  const Access level = entry.fault_level;
  const Time started = entry.fault_start;
  entry.fault_in_progress = false;
  entry.fault_level = Access::kNil;
  entry.bounce_count = 0;
  entry.lost_retries = 0;
  // Tolerant for kNil holds that never began a wait (pending transfers).
  IVY_PROF(stats_,
           end_wait(self_, prof::Domain::kPageFault, page, sim_.now()));
  if (level != Access::kNil) {
    // kNil marks protocol-internal holds (disk restore, outbound
    // transfer), which account for themselves at their own sites.
    const Time dur = sim_.now() - started;
    stats_.record_latency(self_, Hist::kFaultResolution, dur);
    IVY_EVT(stats_, record_span(self_,
                                level == Access::kRead
                                    ? trace::EventKind::kReadFault
                                    : trace::EventKind::kWriteFault,
                                started, dur, page));
    if (observer_ != nullptr) observer_->on_fault_complete(self_, page, level);
  }

  auto waiters = std::move(entry.local_waiters);
  entry.local_waiters.clear();
  int satisfied = 0;
  for (LocalWaiter& w : waiters) {
    if (satisfies(entry.access, w.want)) {
      ++satisfied;
      w.resume();
    } else {
      // Fault completed below the waiter's level (e.g. read grant while a
      // writer queued behind it): start the next fault.
      request_access(page, w.want, std::move(w.resume));
    }
  }
  if (satisfied > 0) {
    // Hold deferred remote requests until each satisfied waiter performed
    // its access (ensure_access consumes the grace); see PageEntry::grace.
    entry.grace = satisfied;
    // Liveness backstop: if the granted processes never touch the page
    // (e.g. one migrated away first), release the hold after a bounded
    // delay rather than starving remote requesters.
    sim_.schedule_after(50 * sim_.costs().context_switch, [this, page] {
      PageEntry& e = table_.at(page);
      if (e.grace > 0 && !e.fault_in_progress) {
        e.grace = 0;
        replay_deferred(page);
      }
    });
    return;
  }
  replay_deferred(page);
}

void Svm::consume_grace(PageId page) {
  PageEntry& entry = table_.at(page);
  if (entry.grace == 0) return;
  if (--entry.grace == 0 && !entry.fault_in_progress) {
    // Replay as a follow-up event, not synchronously: we are inside the
    // running process's access sequence, and serving a deferred write
    // request here would revoke the page mid-"instruction".
    sim_.schedule_at(sim_.now(), [this, page] {
      const PageEntry& e = table_.at(page);
      if (!e.busy()) replay_deferred(page);
    });
  }
}

void Svm::replay_deferred(PageId page) {
  PageEntry& entry = table_.at(page);
  auto deferred = std::move(entry.deferred_requests);
  entry.deferred_requests.clear();
  for (net::Message& msg : deferred) {
    manager_->on_fault_request(std::move(msg));
  }
}

void Svm::defer_request(PageId page, net::Message&& msg) {
  PageEntry& entry = table_.at(page);
  IVY_DEBUG() << "node " << self_ << " defers " << net::to_string(msg.kind)
              << " from " << msg.origin << " for page " << page;
  entry.deferred_requests.push_back(std::move(msg));
  // An owner (or a node with a pending outbound transfer) serves its
  // queue when it settles.  A *non-owner* holding requests is only a
  // waypoint: its own fault may transitively depend on a requester whose
  // request it is holding — two concurrent write faults can park each
  // other's requests and deadlock.  Re-route parked requests along the
  // (meanwhile improved) hint chain after a short delay.
  if (entry.owned || entry.reroute_armed) return;
  entry.reroute_armed = true;
  sim_.schedule_after(ms(25), [this, page] {
    PageEntry& e = table_.at(page);
    e.reroute_armed = false;
    if (!e.busy() || e.owned || pending_transfers_.contains(page)) {
      return;  // settled (or about to serve); the normal replay handles it
    }
    auto parked = std::move(e.deferred_requests);
    e.deferred_requests.clear();
    for (net::Message& m : parked) {
      manager_->reroute(std::move(m), page);
    }
  });
}

void Svm::invalidate_copies(PageId page, std::function<void()> done) {
  // Copy everything needed out of the entry up front: the observer hook
  // and the ack continuations below are callouts that may mutate the page
  // table — growing it (grow_table) reallocates the entry vector, so a
  // PageEntry reference must never be held across them.
  const NodeSet copyset = table_.at(page).copyset;
  const std::uint64_t version = table_.at(page).version;
  if (copyset.empty()) {
    done();
    return;
  }
  if (observer_ != nullptr) {
    observer_->on_invalidate_round(self_, page, version, copyset.count());
  }
  // A fault waiting on this page has reached its invalidation leg (the
  // leg keeps the wait's read/write family; non-fault waits are left).
  IVY_PROF(stats_, fault_leg(self_, page, prof::FaultLeg::kInvalidate,
                             sim_.now()));
  // Wrap the continuation so the full invalidation round (request out to
  // last ack in) is timed, whichever reply scheme runs it.
  done = [this, page, copies = copyset.count(), version,
          start = sim_.now(), done = std::move(done)] {
    const Time dur = sim_.now() - start;
    stats_.record_latency(self_, Hist::kInvalidateRound, dur);
    IVY_EVT(stats_, record_span(self_, trace::EventKind::kInvalidateSent,
                                start, dur, page,
                                static_cast<std::uint64_t>(copies)));
    if (observer_ != nullptr) {
      observer_->on_invalidate_round_done(self_, page, version);
    }
    done();
  };
  const InvalidatePayload payload{page, self_, version, copyset};
  copyset.for_each([&](NodeId member) {
    IVY_CHECK_NE(member, self_);  // owner never sits in its own copyset
    stats_.bump(self_, Counter::kInvalidationsSent);
  });

  if (copyset.count() == 1 && !options_.broadcast_invalidation) {
    // A single holder: a unicast is already one frame.
    NodeId member = kNoNode;
    copyset.for_each([&](NodeId n) { member = n; });
    rpc_.request(member, net::MsgKind::kInvalidate, payload,
                 InvalidatePayload::kWireBytes,
                 [done = std::move(done)](net::Message&&) { done(); });
    return;
  }

  // One frame on the ring for the whole copyset (token-ring multicast
  // costs one rotation), acknowledged by the actual holders only.  The
  // broadcast_invalidation variant puts a true broadcast frame on the
  // wire (every station copies it) but still completes on the holders'
  // acks — bystander acks no longer pad Hist::kInvalidateRound.
  stats_.bump(self_, Counter::kInvalidateMulticasts);
  rpc_.multicast(copyset,
                 options_.broadcast_invalidation
                     ? net::MsgKind::kInvalidateBcast
                     : net::MsgKind::kInvalidate,
                 payload, InvalidatePayload::kWireBytes,
                 [done = std::move(done)](std::vector<net::Message>&&) {
                   done();
                 },
                 /*timeout=*/0, /*on_fail=*/nullptr,
                 /*deliver_to_all=*/options_.broadcast_invalidation);
}

void Svm::on_invalidate(net::Message&& msg) {
  const auto payload = std::any_cast<InvalidatePayload>(msg.payload);
  if (!payload.copyset.empty() && !payload.copyset.contains(self_)) {
    // Copyset-addressed round reaching a bystander (a broadcast frame
    // every station copies): apply nothing and send no ack.  An ack here
    // would count toward the round's expected replies and could complete
    // it before a real holder was invalidated — a transient stale read.
    rpc_.ignore(msg);
    return;
  }
  PageEntry& entry = table_.at(payload.page);
  // The owner never receives a valid invalidation for its own page, and
  // a copy at version >= the invalidation's was granted by a newer owner
  // state; both mean a stale retransmission.  Acknowledge regardless so
  // the invalidator can finish.
  if (!entry.owned && payload.version > entry.version) {
    entry.access = Access::kNil;
    entry.version = payload.version;
    entry.prob_owner = payload.new_owner;
    pool_.release(payload.page);
    IVY_EVT(stats_, record(self_, trace::EventKind::kInvalidateRecv,
                           payload.page, payload.new_owner));
    if (observer_ != nullptr) {
      observer_->on_copy_dropped(self_, payload.page, payload.new_owner,
                                 payload.version);
    }
    if (options_.distributed_copysets && !entry.copyset.empty()) {
      // This copy served readers of its own (distributed copysets): the
      // invalidation recurses down the tree; acknowledge upward only
      // once every child acknowledged.
      const auto pending = rpc::RemoteOp::reply_later(msg);
      invalidate_copies(payload.page, [this, pending, page = payload.page] {
        table_.at(page).copyset.clear();
        rpc_.reply(pending, AckPayload{page}, AckPayload::kWireBytes);
      });
      return;
    }
  }
  rpc_.reply_to(msg, AckPayload{payload.page}, AckPayload::kWireBytes);
}

bool Svm::absorb_grant(const GrantPayload& grant, NodeId from) {
  if (!grant.write_grant) return false;  // read copies carry no resource
  PageEntry& entry = table_.at(grant.page);
  if (entry.accepted_unconfirmed(grant.version)) {
    // Duplicate of a grant this node already accepted.  Re-ack the
    // acceptance but install nothing — the first copy did.  Rejecting
    // instead could overtake the original accept (delay faults reorder
    // traffic) and abort a transfer the old owner must finalize.
    IVY_DEBUG() << "node " << self_ << " re-acks accepted grant of page "
                << grant.page << " v" << grant.version;
    send_grant_ack(from, grant.page, grant.version, /*accept=*/true);
    return true;
  }
  if (pending_transfers_.contains(grant.page) ||
      (entry.fault_in_progress && entry.fault_level == Access::kNil) ||
      grant.version <= entry.version ||
      (grant.body == nullptr && !pool_.resident(grant.page))) {
    // Stale, colliding with a protocol-internal state (outbound transfer
    // or disk restore), or bodyless without a surviving local copy:
    // abort the transfer — the old owner still holds the page and data.
    IVY_DEBUG() << "node " << self_ << " rejects orphan grant of page "
                << grant.page << " v" << grant.version << " from " << from;
    send_grant_ack(from, grant.page, grant.version, /*accept=*/false);
    return false;
  }
  IVY_DEBUG() << "node " << self_ << " absorbs orphan grant of page "
              << grant.page << " v" << grant.version << " from " << from;
  send_grant_ack(from, grant.page, grant.version, /*accept=*/true);
  entry.owned = true;
  entry.version = grant.version;
  entry.copyset |= grant.copyset;  // keep our own served readers too
  entry.copyset.remove(self_);
  entry.prob_owner = self_;
  entry.on_disk = false;
  if (grant.body != nullptr) install_body(grant.page, grant.body);
  entry.access = entry.copyset.empty() ? Access::kWrite : Access::kRead;
  stats_.bump(self_, Counter::kOwnershipTransfers);
  IVY_EVT(stats_,
          record(self_, trace::EventKind::kOwnershipGained, grant.page, from));
  if (observer_ != nullptr) {
    observer_->on_ownership_gained(self_, grant.page, from, grant.version);
    notify_content(grant.page, grant.version, /*at_source=*/false);
  }
  if (entry.access != Access::kWrite) {
    // Invalidate the inherited readers even without local write intent:
    // the grant's version was bumped at detach, so surviving copies from
    // the previous ownership era would sit below the owner's version
    // forever (the next writer would invalidate them anyway, but a page
    // can settle in this skewed state and read as a lost invalidation).
    if (!entry.fault_in_progress) {
      // Hold the page busy for the round (like a disk restore) so a
      // concurrent local upgrade cannot start a colliding round.
      entry.fault_in_progress = true;
      entry.fault_level = Access::kNil;
      entry.fault_start = sim_.now();
    } else if (entry.fault_level == Access::kWrite) {
      ++entry.version;  // the local write starts a new version
    }
    invalidate_copies(grant.page,
                      [this, page = grant.page, ver = entry.version] {
      PageEntry& e = table_.at(page);
      // Commit only if the round's world is still current (same guard
      // as the manager's upgrade paths): a concurrent round at a newer
      // version, a completed fault, or a page granted away mid-round
      // all supersede this one — restoring write access then would
      // fork the writer token.
      if (!e.owned || e.version != ver || !e.fault_in_progress) return;
      e.copyset.clear();
      e.access = Access::kWrite;
      complete_fault(page);
    });
  } else if (entry.fault_in_progress) {
    // The adopted ownership satisfies our own outstanding fault: finish
    // it now, or our re-issued request would chase a chain ending here.
    complete_fault(grant.page);
  }
  return true;
}

void Svm::begin_pending_transfer(PageId page, NodeId to,
                                 std::uint64_t version, bool bodyless) {
  PageEntry& entry = table_.at(page);
  IVY_CHECK(entry.owned);
  IVY_CHECK(!entry.fault_in_progress);
  // Hold the token (and the data) until the new owner confirms; defer
  // every request meanwhile via the fault-in-progress machinery.
  entry.access = Access::kNil;
  entry.fault_in_progress = true;
  entry.fault_level = Access::kNil;
  entry.fault_start = sim_.now();
  pending_transfers_[page] =
      PendingTransfer{to, version, /*push_in_flight=*/false, bodyless};
  IVY_DEBUG() << "node " << self_ << " holds page " << page
              << " pending transfer to " << to << " v" << version;
  arm_reoffer(page, version);
}

void Svm::arm_reoffer(PageId page, std::uint64_t version) {
  // Quiet period before re-offering: long enough that the requester's own
  // retransmissions (which make the old owner resend the grant) have had
  // every chance first.
  const Time wait = 4 * rpc_.request_timeout();
  sim_.schedule_after(wait, [this, page, version] {
    auto it = pending_transfers_.find(page);
    if (it == pending_transfers_.end() || it->second.version != version) {
      return;  // the transfer settled (acked or aborted)
    }
    if (!it->second.push_in_flight) push_pending_grant(page);
    arm_reoffer(page, version);
  });
}

void Svm::push_pending_grant(PageId page) {
  auto it = pending_transfers_.find(page);
  IVY_CHECK(it != pending_transfers_.end());
  PendingTransfer& pending = it->second;
  GrantPayload grant;
  grant.page = page;
  grant.version = pending.version;
  grant.write_grant = true;
  grant.copyset = table_.at(page).copyset;
  grant.copyset.remove(pending.to);
  if (!pending.bodyless) {
    // Bodyless grants stay bodyless on re-offer: the target's read copy
    // is pinned by its outstanding fault (busy pages never evict), and
    // absorb_grant rejects the offer if the copy is somehow gone.
    grant.body = snapshot(page);
  }
  pending.push_in_flight = true;
  stats_.bump(self_, Counter::kGrantReoffers);
  IVY_DEBUG() << "node " << self_ << " re-offers unacked grant of page "
              << page << " v" << pending.version << " to " << pending.to;
  const auto clear = [this, page, version = pending.version] {
    auto i = pending_transfers_.find(page);
    if (i != pending_transfers_.end() && i->second.version == version) {
      i->second.push_in_flight = false;
    }
  };
  rpc_.request(pending.to, net::MsgKind::kGrantPush, grant,
               grant.wire_bytes(),
               [clear](net::Message&&) { clear(); },
               /*timeout=*/0, [clear](const rpc::RequestFailure&) { clear(); });
}

void Svm::on_grant_push(net::Message&& msg) {
  const auto grant = std::any_cast<GrantPayload>(msg.payload);
  // absorb_grant adopts or rejects the offer and sends the kGrantAck that
  // settles the pusher's pending transfer; the push reply itself only
  // confirms delivery.
  absorb_grant(grant, msg.origin);
  rpc_.reply_to(msg, AckPayload{grant.page}, AckPayload::kWireBytes);
}

void Svm::send_grant_ack(NodeId to, PageId page, std::uint64_t version,
                         bool accept) {
  if (accept) {
    // Remember the acceptance until the old owner confirms it processed
    // the ack (the request's reply): duplicates of this grant arriving
    // meanwhile must be re-acked accept, never rejected.  Bounded as a
    // backstop against a terminally-failed ack (a re-offered grant will
    // re-drive the handshake in that case).
    auto& set = table_.at(page).unconfirmed_accepts;
    if (std::find(set.begin(), set.end(), version) == set.end()) {
      set.push_back(version);
      if (set.size() > 8) set.erase(set.begin());
    }
  }
  rpc_.request(to, net::MsgKind::kGrantAck,
               GrantAckPayload{page, version, accept},
               GrantAckPayload::kWireBytes,
               [this, page, version, accept](net::Message&&) {
                 if (!accept) return;
                 std::erase(table_.at(page).unconfirmed_accepts, version);
               },
               /*timeout=*/0,
               [](const rpc::RequestFailure&) {
                 // Terminal ack loss: keep the version marked; the old
                 // owner's grant re-offer restarts the handshake.
               });
}

void Svm::on_grant_ack(net::Message&& msg) {
  const auto ack = std::any_cast<GrantAckPayload>(msg.payload);
  auto it = pending_transfers_.find(ack.page);
  if (it == pending_transfers_.end() || it->second.version != ack.version) {
    // Duplicate ack for an already-settled transfer.
    IVY_DEBUG() << "node " << self_ << " ignores settled grant-ack for page "
                << ack.page << " v" << ack.version << " accept=" << ack.accept;
    rpc_.reply_to(msg, AckPayload{ack.page}, AckPayload::kWireBytes);
    return;
  }
  IVY_DEBUG() << "node " << self_ << " grant-ack for page " << ack.page
              << " v" << ack.version << " accept=" << ack.accept << " from "
              << msg.origin;
  PageEntry& entry = table_.at(ack.page);
  IVY_CHECK_MSG(entry.owned && entry.fault_in_progress,
                "grant-ack state: node " << self_ << " page " << ack.page
                    << " owned=" << entry.owned << " fip="
                    << entry.fault_in_progress << " lvl="
                    << static_cast<int>(entry.fault_level) << " acc="
                    << to_string(entry.access) << " ver=" << entry.version
                    << " ackver=" << ack.version << " accept="
                    << ack.accept << " to=" << it->second.to);
  if (ack.accept) {
    // Transfer landed: fully relinquish.  The span covers the window the
    // token was in flight (grant sent to ack received).
    IVY_EVT(stats_, record_span(self_, trace::EventKind::kOwnershipLost,
                                entry.fault_start,
                                sim_.now() - entry.fault_start, ack.page,
                                it->second.to));
    entry.owned = false;
    entry.copyset.clear();
    entry.prob_owner = it->second.to;
    pool_.release(ack.page);
    disk_.discard(ack.page);
    entry.on_disk = false;
    if (observer_ != nullptr) {
      observer_->on_ownership_released(self_, ack.page, it->second.to,
                                       ack.version);
    }
  } else {
    // Transfer aborted (receiver found the grant stale): resume
    // ownership; the frame and copyset were never touched.
    entry.access = entry.copyset.empty() ? Access::kWrite : Access::kRead;
    if (observer_ != nullptr) {
      observer_->on_transfer_aborted(self_, ack.page, ack.version);
    }
  }
  pending_transfers_.erase(it);
  rpc_.reply_to(msg, AckPayload{ack.page}, AckPayload::kWireBytes);
  complete_fault(ack.page);  // replay everything deferred meanwhile
}

bool Svm::resend_pending_grant(const net::Message& msg) {
  if (msg.kind != net::MsgKind::kWriteFault) return false;
  const auto payload = std::any_cast<FaultPayload>(msg.payload);
  auto it = pending_transfers_.find(payload.page);
  if (it == pending_transfers_.end() || it->second.to != msg.origin) {
    return false;
  }
  // The grant (or its cached resend) was lost; rebuild it from the held
  // state.  A bodyless grant stays bodyless: the requester's copy is
  // pinned by its outstanding fault, and its retry path re-faults with
  // has_copy=false if the copy is gone, which re-serves with the body.
  GrantPayload grant;
  grant.page = payload.page;
  grant.version = it->second.version;
  grant.write_grant = true;
  grant.copyset = table_.at(payload.page).copyset;
  grant.copyset.remove(msg.origin);
  if (!it->second.bodyless) {
    grant.body = snapshot(payload.page);
    stats_.bump(self_, Counter::kPageTransfers);
    IVY_EVT(stats_, record(self_, trace::EventKind::kPageSent, payload.page,
                           msg.origin));
  }
  IVY_DEBUG() << "node " << self_ << " resends pending grant of page "
              << payload.page << " v" << it->second.version << " to "
              << msg.origin << (it->second.bodyless ? " (bodyless)" : "");
  // The requester's fault is in its transfer leg again (fresh grant on
  // the wire); the profiler is global, so the serving side may retag it.
  IVY_PROF(stats_, retag_wait(msg.origin, prof::Domain::kPageFault,
                              payload.page, prof::Cat::kWriteFaultTransfer,
                              sim_.now()));
  notify_content(payload.page, it->second.version, /*at_source=*/true);
  rpc_.reply_to(msg, grant, grant.wire_bytes());
  return true;
}

PageTransfer Svm::detach_page(PageId page, NodeId new_owner, bool with_body) {
  PageEntry& entry = table_.at(page);
  IVY_CHECK_MSG(entry.owned, "detach of non-owned page " << page);
  IVY_CHECK_MSG(!entry.fault_in_progress,
                "detach during fault on page " << page);
  PageTransfer transfer;
  transfer.page = page;
  transfer.copyset = entry.copyset;
  ++entry.version;  // ownership changes bump the version
  transfer.version = entry.version;
  if (with_body) {
    if (!entry.on_disk && entry.copyset.contains(new_owner)) {
      // The receiver holds a valid read copy: copyset membership at the
      // owner implies content-current (an owner with a non-empty copyset
      // cannot have written).  Move ownership without the kilobyte.
      transfer.body_elided = true;
      stats_.bump(self_, Counter::kBodylessUpgrades);
      notify_content(page, transfer.version, /*at_source=*/true);
    } else {
      if (entry.on_disk) {
        std::byte* bytes = pool_.acquire(page);
        disk_.read(page, std::span<std::byte>(bytes, options_.geo.page_size));
        add_pending_charge(sim_.costs().disk_io);
      }
      transfer.body = snapshot(page);
      notify_content(page, transfer.version, /*at_source=*/true);
    }
  }
  disk_.discard(page);
  pool_.release(page);
  entry.owned = false;
  entry.access = Access::kNil;
  entry.on_disk = false;
  entry.copyset.clear();
  entry.prob_owner = new_owner;
  if (observer_ != nullptr) {
    observer_->on_page_detached(self_, page, new_owner, transfer.version);
  }
  return transfer;
}

void Svm::adopt_page(const PageTransfer& transfer) {
  PageEntry& entry = table_.at(transfer.page);
  IVY_CHECK(!entry.owned);
  IVY_CHECK(!entry.fault_in_progress);
  entry.owned = true;
  entry.version = transfer.version;
  entry.copyset = transfer.copyset;
  entry.copyset.remove(self_);
  entry.on_disk = false;
  entry.prob_owner = self_;
  if (transfer.body != nullptr) {
    install_body(transfer.page, transfer.body);
  } else if (transfer.body_elided) {
    // The donor elided the body because this node holds a valid copy.
    IVY_CHECK_MSG(pool_.resident(transfer.page),
                  "elided transfer body but no local copy of page "
                      << transfer.page);
  }
  entry.access = entry.copyset.empty() ? Access::kWrite : Access::kRead;
  stats_.bump(self_, Counter::kOwnershipTransfers);
  IVY_EVT(stats_, record(self_, trace::EventKind::kOwnershipGained,
                         transfer.page, kMaxNodes));
  if (observer_ != nullptr) {
    observer_->on_page_adopted(self_, transfer.page, transfer.version);
    if (transfer.body != nullptr || transfer.body_elided) {
      notify_content(transfer.page, transfer.version, /*at_source=*/false);
    }
  }
}

void Svm::grow_table(PageId new_num_pages) {
  if (new_num_pages <= table_.num_pages()) return;
  table_.grow(new_num_pages, options_.initial_owner, self_);
  options_.geo.num_pages = new_num_pages;
  manager_->on_table_grown(new_num_pages);
}

mem::FramePool::EvictAction Svm::on_evict(PageId page,
                                          std::span<const std::byte> bytes) {
  PageEntry& entry = table_.at(page);
  if (entry.busy()) return mem::FramePool::EvictAction::kSkip;
  if (entry.owned) {
    disk_.write(page, bytes);
    add_pending_charge(sim_.costs().disk_io);
    stall_node(sim_.costs().disk_io);
    entry.on_disk = true;
    entry.access = Access::kNil;
    IVY_EVT(stats_,
            record(self_, trace::EventKind::kDiskWrite, page));
    IVY_EVT(stats_, record(self_, trace::EventKind::kEviction, page, 1));
    return mem::FramePool::EvictAction::kWriteToDisk;
  }
  entry.access = Access::kNil;
  IVY_EVT(stats_, record(self_, trace::EventKind::kEviction, page, 0));
  return mem::FramePool::EvictAction::kDrop;
}

}  // namespace ivy::svm
