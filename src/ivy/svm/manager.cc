// Shared owner-side mechanics of all coherence managers.
#include "ivy/svm/manager.h"

#include <utility>

#include "ivy/base/log.h"
#include "ivy/prof/prof.h"
#include "ivy/svm/observer.h"
#include "ivy/trace/trace.h"

namespace ivy::svm {
namespace {
/// Broadcast-locate escalations allowed per fault before declaring the
/// owner unreachable and aborting the run.
constexpr int kMaxFaultRelocates = 8;
}  // namespace

std::unique_ptr<Manager> Manager::create(Svm& svm) {
  switch (svm.options().manager) {
    case ManagerKind::kCentralized:
      return std::make_unique<CentralizedManager>(svm);
    case ManagerKind::kFixedDistributed:
      return std::make_unique<FixedDistributedManager>(svm);
    case ManagerKind::kDynamicDistributed:
      return std::make_unique<DynamicDistributedManager>(svm);
    case ManagerKind::kBroadcast:
      return std::make_unique<BroadcastManager>(svm);
  }
  IVY_UNREACHABLE("bad manager kind");
}

void Manager::start_fault(PageId page, Access want) {
  if (want == Access::kWrite && try_local_write_upgrade(page)) return;
  const PageEntry& entry = svm_.table().at(page);
  IVY_CHECK_MSG(!entry.owned, "remote fault on owned page " << page);
  route_initial(page, want == Access::kRead ? net::MsgKind::kReadFault
                                            : net::MsgKind::kWriteFault);
}

bool Manager::try_local_write_upgrade(PageId page) {
  PageEntry& entry = svm_.table().at(page);
  if (!entry.owned) return false;
  // The on-disk case was peeled off as a disk fault before reaching here.
  IVY_CHECK(!entry.on_disk);
  IVY_CHECK(entry.access != Access::kNil);
  svm_.stats().bump(svm_.self(), Counter::kLocalFaultHits);
  ++entry.version;
  svm_.invalidate_copies(page, [this, page, ver = entry.version] {
    PageEntry& e = svm_.table().at(page);
    // Commit only if the round's world is still current: a duplicate
    // grant can start a concurrent round at a newer version, and the
    // page may have been granted away (or the fault completed) before
    // this round's last ack lands — restoring write access then would
    // fork the writer token.  The last-started round completes the
    // fault; superseded rounds fall through.
    if (!e.owned || e.version != ver || !e.fault_in_progress) return;
    e.copyset.clear();
    e.access = Access::kWrite;
    svm_.complete_fault(page);
  });
  return true;
}

void Manager::on_fault_request(net::Message&& msg) {
  const auto payload = std::any_cast<FaultPayload>(msg.payload);
  const PageId page = payload.page;
  PageEntry& entry = svm_.table().at(page);

  if (msg.origin == svm_.self()) {
    // Our own request ghosted back to us: a stale hint somewhere routes
    // toward us instead of the real owner.  If the fault is still
    // pending, abandon the bounced request and retry — first along our
    // own (possibly fresher) hint, then, if the hints have degenerated
    // into a cycle, by locating the owner with a broadcast.  A
    // superseded request's reply, if it ever arrives, is absorbed by the
    // orphan machinery.
    svm_.rpc().ignore(msg);
    // Only the *current* request's bounce triggers a retry: a stale
    // duplicate of an already-superseded request can still be circulating
    // (fault-injected delays make this common) and must not cancel a
    // healthy in-flight successor.
    if (entry.fault_in_progress && entry.fault_level != Access::kNil &&
        msg.rpc_id == entry.fault_rpc) {
      svm_.rpc().cancel(entry.fault_rpc);
      ++entry.bounce_count;
      retry_fault(page, entry.fault_level == Access::kWrite
                            ? net::MsgKind::kWriteFault
                            : net::MsgKind::kReadFault);
    }
    return;
  }
  if (svm_.resend_pending_grant(msg)) return;
  if (payload.broadcast && !entry.owned) {
    // Broadcast probe at a non-owner: every node (including the owner)
    // received its own copy; ours carries no information.
    svm_.rpc().ignore(msg);
    return;
  }
  if (entry.busy()) {
    if (!defer_busy_requests()) {
      // Broadcast probes reach every node including the live owner; a
      // busy bystander (or owner-to-be) simply stays silent and the
      // requester's retransmission finds the owner once it exists.
      // Deferring a *copy* of a broadcast here could serve it a second
      // time later, after another server already answered it.
      svm_.rpc().ignore(msg);
      return;
    }
    // This node is itself mid-fault (or in post-fault grace, or holding
    // a pending ownership transfer) on the page; the request is replayed
    // once that settles.  In particular an owner-to-be queues requests
    // until its ownership arrives.
    svm_.defer_request(page, std::move(msg));
    return;
  }
  if (entry.owned) {
    if (entry.on_disk) {
      // Serving requires the image; restore first, then replay.
      svm_.defer_request(page, std::move(msg));
      svm_.begin_disk_restore(page);
      return;
    }
    if (msg.kind == net::MsgKind::kReadFault) {
      serve_read(std::move(msg), page);
    } else {
      serve_write(std::move(msg), page);
    }
    return;
  }
  route_request(std::move(msg), page);
}

void Manager::serve_read(net::Message&& msg, PageId page) {
  PageEntry& entry = svm_.table().at(page);
  IVY_CHECK(entry.owned && !entry.on_disk);
  // Granting a read copy forces the owner itself down to read access.
  entry.access = Access::kRead;
  entry.copyset.add(msg.origin);

  GrantPayload grant;
  grant.page = page;
  grant.version = entry.version;
  grant.write_grant = false;
  grant.body = svm_.snapshot(page);  // a read fault always wants the data
  svm_.stats().bump(svm_.self(), Counter::kPageTransfers);
  IVY_EVT(svm_.stats(), record(svm_.self(), trace::EventKind::kPageSent, page,
                               msg.origin));
  // The requester's fault found the owner: its wait moves from the
  // locate leg to the transfer leg (the profiler is global; the serving
  // side may retag the requester's wait at zero virtual cost).
  IVY_PROF(svm_.stats(),
           retag_wait(msg.origin, prof::Domain::kPageFault, page,
                      prof::Cat::kReadFaultTransfer,
                      svm_.simulator().now()));
  if (CoherenceObserver* obs = svm_.observer()) {
    obs->on_read_served(svm_.self(), page, msg.origin);
    svm_.notify_content(page, entry.version, /*at_source=*/true);
  }
  svm_.rpc().reply_to(msg, grant, grant.wire_bytes());
}

void Manager::serve_write(net::Message&& msg, PageId page) {
  const auto payload = std::any_cast<FaultPayload>(msg.payload);
  PageEntry& entry = svm_.table().at(page);
  IVY_CHECK(entry.owned && !entry.on_disk);

  // Version-checked before the bump: the requester's copy is reusable
  // only if it was granted under this very ownership era.  A copy from
  // an older era (the copyset travelled through detaches that bumped the
  // version) may be content-stale relative to what a strict reading of
  // the protocol allows — ship the body then.
  const bool requester_copy_valid =
      payload.has_copy && entry.copyset.contains(msg.origin) &&
      payload.copy_version == entry.version;
  ++entry.version;
  GrantPayload grant;
  grant.page = page;
  grant.version = entry.version;
  grant.write_grant = true;
  grant.copyset = entry.copyset;
  grant.copyset.remove(msg.origin);
  if (!requester_copy_valid) {
    grant.body = svm_.snapshot(page);
    svm_.stats().bump(svm_.self(), Counter::kPageTransfers);
    IVY_EVT(svm_.stats(), record(svm_.self(), trace::EventKind::kPageSent,
                                 page, msg.origin));
  } else {
    // In-place write upgrade: only the 32-byte grant header travels.
    svm_.stats().bump(svm_.self(), Counter::kBodylessUpgrades);
  }
  svm_.stats().bump(svm_.self(), Counter::kOwnershipTransfers);

  // Two-phase relinquish: keep the token and the data until the new
  // owner's kGrantAck; all requests for the page defer meanwhile.
  note_write_grant(page, msg.origin);
  IVY_PROF(svm_.stats(),
           retag_wait(msg.origin, prof::Domain::kPageFault, page,
                      prof::Cat::kWriteFaultTransfer,
                      svm_.simulator().now()));
  svm_.rpc().reply_to(msg, grant, grant.wire_bytes());
  svm_.begin_pending_transfer(page, msg.origin, entry.version,
                              requester_copy_valid);
  if (CoherenceObserver* obs = svm_.observer()) {
    obs->on_write_served(svm_.self(), page, msg.origin, entry.version);
    // Report the held image even for a bodyless grant: the requester's
    // surviving copy must match it, which is exactly the interesting
    // integrity check.
    svm_.notify_content(page, entry.version, /*at_source=*/true);
  }
}

void Manager::on_grant(net::Message&& reply) {
  const auto grant = std::any_cast<GrantPayload>(reply.payload);
  const PageId page = grant.page;
  PageEntry& entry = svm_.table().at(page);
  if (!entry.fault_in_progress || entry.fault_level == Access::kNil) {
    // No requester fault is waiting for this grant (the fault completed
    // through another path, or the fault-in-progress marker belongs to a
    // disk restore / pending outbound transfer).  If the grant carries
    // the ownership token, absorb or abort it — never drop it.
    svm_.absorb_grant(grant, reply.src);
    return;
  }

  if (!grant.write_grant) {
    if (grant.version < entry.version) {
      // The copy was invalidated while the (retransmitted) grant was in
      // flight; the data is stale.  Retry the fault.
      IVY_DEBUG() << "node " << svm_.self() << " rejects stale read grant of"
                  << " page " << page;
      retry_fault(page, net::MsgKind::kReadFault);
      return;
    }
    if (grant.body == nullptr && !svm_.frames().resident(page)) {
      // Bodyless grant assuming a local copy we no longer hold (it was
      // invalidated or evicted while the request was in flight — the
      // server judged a stale has_copy hint).  The data never travelled;
      // re-request it.
      IVY_DEBUG() << "node " << svm_.self() << " lacks the copy a bodyless"
                  << " read grant of page " << page << " assumed; retrying";
      retry_fault(page, net::MsgKind::kReadFault);
      return;
    }
    svm_.install_body(page, grant.body);
    entry.access = Access::kRead;
    entry.version = grant.version;
    entry.prob_owner = reply.src;  // we now know the owner
    svm_.notify_content(page, grant.version, /*at_source=*/false);
    svm_.complete_fault(page);
    return;
  }

  if (grant.version <= entry.version) {
    if (entry.accepted_unconfirmed(grant.version)) {
      // Duplicate of a grant this node already accepted (the old owner
      // re-sent it under a fresh rpc id before our ack landed).  Re-ack
      // the acceptance — a reject could overtake the original accept and
      // abort a confirmed transfer, leaving two owners.
      svm_.send_grant_ack(reply.src, page, grant.version, /*accept=*/true);
      retry_fault(page, net::MsgKind::kWriteFault);
      return;
    }
    // Stale ownership era.  Abort the transfer (the old owner resumes)
    // and chase the live owner again.
    IVY_DEBUG() << "node " << svm_.self() << " rejects stale write grant of"
                << " page " << page << " v" << grant.version << " from "
                << reply.src;
    svm_.send_grant_ack(reply.src, page, grant.version, /*accept=*/false);
    retry_fault(page, net::MsgKind::kWriteFault);
    return;
  }
  if (grant.body == nullptr && !svm_.frames().resident(page)) {
    // Bodyless ownership grant, but the local copy it assumed is gone
    // (invalidated or evicted mid-flight).  Abort the transfer — the old
    // owner still holds the data — and re-request; the retry advertises
    // has_copy=false, so the next grant ships the body.
    IVY_DEBUG() << "node " << svm_.self() << " lacks the copy a bodyless"
                << " write grant of page " << page << " assumed; retrying";
    svm_.send_grant_ack(reply.src, page, grant.version, /*accept=*/false);
    retry_fault(page, net::MsgKind::kWriteFault);
    return;
  }
  IVY_DEBUG() << "node " << svm_.self() << " accepts grant of page " << page
              << " v" << grant.version << " from " << reply.src;
  svm_.send_grant_ack(reply.src, page, grant.version, /*accept=*/true);
  entry.owned = true;
  entry.version = grant.version;
  IVY_EVT(svm_.stats(), record(svm_.self(), trace::EventKind::kOwnershipGained,
                               page, reply.src));
  // Merge rather than overwrite: with distributed copysets this node may
  // itself have served readers, who must be invalidated with the rest.
  entry.copyset |= grant.copyset;
  entry.copyset.remove(svm_.self());
  entry.prob_owner = svm_.self();
  svm_.install_body(page, grant.body);
  if (CoherenceObserver* obs = svm_.observer()) {
    obs->on_ownership_gained(svm_.self(), page, reply.src, grant.version);
    svm_.notify_content(page, grant.version, /*at_source=*/false);
  }
  svm_.invalidate_copies(page, [this, page, ver = entry.version] {
    PageEntry& e = svm_.table().at(page);
    // Superseded-round guard (see try_local_write_upgrade).
    if (!e.owned || e.version != ver || !e.fault_in_progress) return;
    e.copyset.clear();
    e.access = Access::kWrite;
    svm_.complete_fault(page);
  });
}

void Manager::note_write_grant(PageId, NodeId) {}

void Manager::on_table_grown(PageId) {}

void Manager::note_forward(const net::Message& msg, PageId page,
                           NodeId next) {
  IVY_EVT(svm_.stats(), record(svm_.self(), trace::EventKind::kForward, page,
                               msg.origin));
  if (CoherenceObserver* obs = svm_.observer()) {
    obs->on_forward(svm_.self(), page, next, msg.origin,
                    msg.kind == net::MsgKind::kWriteFault);
  }
}

void Manager::retry_fault(PageId page, net::MsgKind kind) {
  PageEntry& entry = svm_.table().at(page);
  IVY_CHECK(entry.fault_in_progress);
  if (entry.owned) {
    // Ownership arrived through an absorbed duplicate while this fault's
    // own request was still in flight: finish locally.
    const Access want =
        kind == net::MsgKind::kWriteFault ? Access::kWrite : Access::kRead;
    if (satisfies(entry.access, want)) {
      svm_.complete_fault(page);
      return;
    }
    ++entry.version;
    svm_.invalidate_copies(page, [this, page, ver = entry.version] {
      PageEntry& e = svm_.table().at(page);
      // Superseded-round guard (see try_local_write_upgrade).
      if (!e.owned || e.version != ver || !e.fault_in_progress) return;
      e.copyset.clear();
      e.access = Access::kWrite;
      svm_.complete_fault(page);
    });
    return;
  }
  if (entry.bounce_count >= 2 && svm_.nodes() > 1) {
    broadcast_locate(page, kind);
  } else {
    route_initial(page, kind);
  }
}

void Manager::broadcast_locate(PageId page, net::MsgKind kind) {
  PageEntry& entry = svm_.table().at(page);
  FaultPayload payload;
  payload.page = page;
  payload.has_copy = entry.access == Access::kRead;
  payload.hint = entry.prob_owner;
  payload.broadcast = true;
  payload.copy_version = entry.version;
  // Busy nodes ignore broadcast probes, so locate retries briskly.
  entry.fault_rpc = svm_.rpc().broadcast(
      kind, payload, FaultPayload::kWireBytes, rpc::BcastReply::kAny,
      [this](net::Message&& reply) { on_grant(std::move(reply)); }, nullptr,
      ms(50), relocate_on_failure(page));
}

void Manager::send_fault(NodeId dst, PageId page, net::MsgKind kind) {
  PageEntry& entry = svm_.table().at(page);
  FaultPayload payload;
  payload.page = page;
  payload.has_copy = entry.access == Access::kRead;
  payload.hint = entry.prob_owner;
  payload.copy_version = entry.version;
  entry.fault_rpc = svm_.rpc().request(
      dst, kind, payload, FaultPayload::kWireBytes,
      [this](net::Message&& reply) { on_grant(std::move(reply)); },
      /*timeout=*/0, relocate_on_failure(page));
}

rpc::RemoteOp::FailureCallback Manager::relocate_on_failure(PageId page) {
  return [this, page](const rpc::RequestFailure& failure) {
    PageEntry& entry = svm_.table().at(page);
    if (!entry.fault_in_progress || entry.fault_level == Access::kNil ||
        entry.fault_rpc != failure.rpc_id) {
      return;  // the fault already moved on (retried or completed)
    }
    ++entry.lost_retries;
    IVY_CHECK_MSG(entry.lost_retries <= kMaxFaultRelocates,
                  "node " << svm_.self() << " cannot reach the owner of page "
                          << page << " after " << entry.lost_retries
                          << " locate rounds — unrecoverable fault load");
    IVY_DEBUG() << "node " << svm_.self() << " fault request for page " << page
                << " exhausted retransmissions; relocating the owner by"
                << " broadcast (round " << entry.lost_retries << ")";
    // Skip straight past hint chasing: whatever routing state swallowed
    // this request would swallow its successor too.
    entry.bounce_count = 2;
    retry_fault(page, entry.fault_level == Access::kWrite
                          ? net::MsgKind::kWriteFault
                          : net::MsgKind::kReadFault);
  };
}

}  // namespace ivy::svm
