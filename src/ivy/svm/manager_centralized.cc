// Improved centralized manager (paper §"Shared Virtual Memory Mapping",
// Li & Hudak's improved variant).
//
// One node keeps owner[p] for every page; copysets stay with the owners,
// so the manager forwards a fault in one hop and needs no confirmation:
// for a write fault it eagerly records the requester as the new owner at
// forward time, and the serialization of requests through the (moving)
// owner's deferred queue provides the synchronization the original
// algorithm achieved with manager-side locks.
#include "ivy/svm/manager.h"

#include "ivy/prof/prof.h"

namespace ivy::svm {

CentralizedManager::CentralizedManager(Svm& svm) : Manager(svm) {
  if (is_manager()) {
    owner_map_.assign(svm.geometry().num_pages, svm.options().initial_owner);
  }
}

NodeId CentralizedManager::manage(PageId page, net::MsgKind kind,
                                  NodeId origin) {
  IVY_CHECK(is_manager());
  NodeId owner = owner_map_[page];
  // owner == origin means the map is stale: ownership moved without
  // telling us (direct handoff by process migration).  The caller falls
  // back to the requester's own hint.
  if (owner == origin) owner = kNoNode;
  if (kind == net::MsgKind::kWriteFault) owner_map_[page] = origin;
  return owner;
}

void CentralizedManager::route_initial(PageId page, net::MsgKind kind) {
  if (!is_manager()) {
    send_fault(svm_.options().manager_node, page, kind);
    return;
  }
  // The manager is the faulting processor: consult the map locally.
  NodeId owner = manage(page, kind, svm_.self());
  if (owner == kNoNode || owner == svm_.self()) {
    owner = svm_.table().at(page).prob_owner;
  }
  IVY_CHECK_NE(owner, svm_.self());
  send_fault(owner, page, kind);
}

void CentralizedManager::route_request(net::Message&& msg, PageId page) {
  if (is_manager()) {
    const auto payload = std::any_cast<FaultPayload>(msg.payload);
    NodeId owner = manage(page, msg.kind, msg.origin);
    if (owner == kNoNode) owner = payload.hint;
    if (owner == svm_.self() || owner == kNoNode) {
      // The map (or the requester's hint) points at us, but we are not
      // the owner — stale bookkeeping after an aborted transfer.  Chase
      // our own hint instead.
      owner = svm_.table().at(page).prob_owner;
    }
    IVY_CHECK_NE(owner, svm_.self());
    IVY_PROF(svm_.stats(), note_hop(msg.origin, page));
    note_forward(msg, page, owner);
    svm_.rpc().forward(std::move(msg), owner);
    return;
  }
  // A request reached a node that relinquished before it arrived (only
  // possible through retransmitted duplicates); chase the hint.
  const NodeId next = svm_.table().at(page).prob_owner;
  IVY_CHECK_NE(next, svm_.self());
  // next may equal msg.origin (stale routing); the origin re-issues.
  IVY_PROF(svm_.stats(), note_hop(msg.origin, page));
  note_forward(msg, page, next);
  svm_.rpc().forward(std::move(msg), next);
}

void CentralizedManager::note_write_grant(PageId page, NodeId new_owner) {
  if (is_manager()) owner_map_[page] = new_owner;
}

void CentralizedManager::on_table_grown(PageId new_num_pages) {
  if (is_manager() && owner_map_.size() < new_num_pages) {
    owner_map_.resize(new_num_pages, svm_.options().initial_owner);
  }
}

}  // namespace ivy::svm
