// Simulated per-node paging disk.
//
// IVY sits on top of the Aegis virtual memory: when a node's physical
// memory overflows, pages spill to its local disk.  The pooled-memory
// effect — Figure 4's super-linear speedup and Table 1's disk-transfer
// counts — exists precisely because remote memory (a ~1 ms page move) is
// two orders of magnitude cheaper than a ~25 ms disk transfer.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "ivy/base/stats.h"
#include "ivy/sim/cost_model.h"

namespace ivy::mem {

class Disk {
 public:
  Disk(Stats& stats, const sim::CostModel& costs, NodeId node)
      : stats_(stats), costs_(costs), node_(node) {}

  /// Writes a page image; returns the virtual time the transfer takes.
  Time write(PageId page, std::span<const std::byte> bytes) {
    auto& slot = store_[page];
    slot.assign(bytes.begin(), bytes.end());
    stats_.bump(node_, Counter::kDiskWrites);
    return costs_.disk_io;
  }

  /// Reads a page image back; returns the transfer time.  The page must
  /// have been written before.
  Time read(PageId page, std::span<std::byte> out) {
    auto it = store_.find(page);
    IVY_CHECK_MSG(it != store_.end(),
                  "disk read of unwritten page " << page << " on node "
                                                 << node_);
    IVY_CHECK_EQ(it->second.size(), out.size());
    std::copy(it->second.begin(), it->second.end(), out.begin());
    stats_.bump(node_, Counter::kDiskReads);
    return costs_.disk_io;
  }

  /// Discards a page image (ownership moved elsewhere).
  void discard(PageId page) { store_.erase(page); }

  [[nodiscard]] bool holds(PageId page) const {
    return store_.contains(page);
  }
  [[nodiscard]] std::size_t pages_stored() const { return store_.size(); }

 private:
  Stats& stats_;
  const sim::CostModel& costs_;
  NodeId node_;
  std::unordered_map<PageId, std::vector<std::byte>> store_;
};

}  // namespace ivy::mem
