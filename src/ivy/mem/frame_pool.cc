#include "ivy/mem/frame_pool.h"

#include <cstring>

#include "ivy/base/check.h"
#include "ivy/base/log.h"

namespace ivy::mem {

FramePool::FramePool(Stats& stats, NodeId node, std::size_t page_size,
                     std::size_t capacity_frames, ReplacementPolicy policy,
                     std::uint64_t seed)
    : stats_(stats),
      node_(node),
      page_size_(page_size),
      capacity_(capacity_frames),
      policy_(policy),
      rng_(seed ^ (static_cast<std::uint64_t>(node) << 32)) {
  IVY_CHECK_GT(page_size, 0u);
  IVY_CHECK_GT(capacity_frames, 0u);
}

std::byte* FramePool::acquire(PageId page) {
  if (std::byte* bytes = lookup(page); bytes != nullptr) return bytes;
  while (frames_.size() >= capacity_) evict_one();

  Frame f;
  f.page = page;
  f.bytes = std::make_unique<std::byte[]>(page_size_);
  std::memset(f.bytes.get(), 0, page_size_);
  f.last_used = ++tick_;
  index_.emplace(page, frames_.size());
  frames_.push_back(std::move(f));
  return frames_.back().bytes.get();
}

void FramePool::release(PageId page) {
  auto it = index_.find(page);
  if (it == index_.end()) return;
  IVY_CHECK_EQ(frames_[it->second].pin_count, 0);
  remove_at(it->second);
}

void FramePool::remove_at(std::size_t idx) {
  IVY_CHECK_LT(idx, frames_.size());
  index_.erase(frames_[idx].page);
  if (idx + 1 != frames_.size()) {
    frames_[idx] = std::move(frames_.back());
    index_[frames_[idx].page] = idx;
  }
  frames_.pop_back();
}

void FramePool::pin(PageId page) {
  auto it = index_.find(page);
  IVY_CHECK_MSG(it != index_.end(), "pin of non-resident page " << page);
  ++frames_[it->second].pin_count;
}

void FramePool::unpin(PageId page) {
  auto it = index_.find(page);
  IVY_CHECK_MSG(it != index_.end(), "unpin of non-resident page " << page);
  IVY_CHECK_GT(frames_[it->second].pin_count, 0);
  --frames_[it->second].pin_count;
}

std::size_t FramePool::pick_victim(const std::vector<bool>& unevictable) {
  std::size_t best = SIZE_MAX;
  if (policy_ == ReplacementPolicy::kStrictLru) {
    for (std::size_t i = 0; i < frames_.size(); ++i) {
      if (frames_[i].pin_count > 0 || unevictable[i]) continue;
      if (best == SIZE_MAX ||
          frames_[i].last_used < frames_[best].last_used) {
        best = i;
      }
    }
    return best;
  }
  // Sampled (approximate) LRU: probe a handful of random frames and take
  // the oldest candidate; fall back to a full scan if every probe missed.
  for (int probe = 0; probe < kSampleProbes; ++probe) {
    const std::size_t i = rng_.below(frames_.size());
    if (frames_[i].pin_count > 0 || unevictable[i]) continue;
    if (best == SIZE_MAX || frames_[i].last_used < frames_[best].last_used) {
      best = i;
    }
  }
  if (best != SIZE_MAX) return best;
  for (std::size_t i = 0; i < frames_.size(); ++i) {
    if (frames_[i].pin_count == 0 && !unevictable[i]) return i;
  }
  return SIZE_MAX;
}

void FramePool::evict_one() {
  IVY_CHECK_MSG(on_evict_ != nullptr, "frame pool full with no evictor");
  // Pages the owner refuses to part with (kSkip: protocol-busy) are
  // excluded and another victim is probed.
  std::vector<bool> unevictable(frames_.size(), false);
  for (;;) {
    const std::size_t idx = pick_victim(unevictable);
    IVY_CHECK_MSG(idx != SIZE_MAX, "all frames pinned or busy; cannot evict");
    Frame& victim = frames_[idx];
    const EvictAction action = on_evict_(
        victim.page,
        std::span<const std::byte>(victim.bytes.get(), page_size_));
    if (action == EvictAction::kSkip) {
      unevictable[idx] = true;
      continue;
    }
    stats_.bump(node_, Counter::kEvictions);
    IVY_TRACE() << "node " << node_ << " evicts page " << victim.page;
    remove_at(idx);
    return;
  }
}

}  // namespace ivy::mem
