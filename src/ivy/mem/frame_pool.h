// Bounded per-node physical page frames with pluggable replacement.
//
// Each node's local memory is "a large cache of the shared virtual
// memory address space".  The pool holds real byte copies — coherence
// bugs therefore manifest as observably stale data, which the property
// tests rely on.
//
// Replacement: IVY sat on Aegis, which "performs an approximate LRU page
// replacement strategy".  The distinction matters: *strict* LRU is
// pathological on the cyclic sweeps of the Jacobi programs (every page's
// reuse distance exceeds memory, so everything misses), while sampled
// "approximate" LRU evicts a randomly probed old page and misses roughly
// in proportion to the overflow — which is the regime Table 1 shows.
// Both policies are provided; an ablation bench compares them.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "ivy/base/rng.h"
#include "ivy/base/stats.h"
#include "ivy/base/types.h"

namespace ivy::mem {

enum class ReplacementPolicy : std::uint8_t {
  kStrictLru,
  kSampledLru,  ///< evict the oldest of a few random probes (≈ Aegis)
};

[[nodiscard]] constexpr const char* to_string(ReplacementPolicy p) {
  switch (p) {
    case ReplacementPolicy::kStrictLru: return "strict_lru";
    case ReplacementPolicy::kSampledLru: return "sampled_lru";
  }
  return "?";
}

class FramePool {
 public:
  /// What to do with an evicted page's bytes.
  enum class EvictAction : std::uint8_t {
    kWriteToDisk,  ///< this node owns the page: preserve the image
    kDrop,         ///< read-only copy: the owner still has the data
    kSkip,         ///< page is protocol-busy; pick another victim
  };
  /// Decides the disposition of a victim page and performs the page-table
  /// side effects (access -> nil, disk write bookkeeping).  Receives the
  /// victim id and its current bytes.
  using EvictCallback =
      std::function<EvictAction(PageId, std::span<const std::byte>)>;

  FramePool(Stats& stats, NodeId node, std::size_t page_size,
            std::size_t capacity_frames,
            ReplacementPolicy policy = ReplacementPolicy::kSampledLru,
            std::uint64_t seed = 0x1988);

  void set_evict_callback(EvictCallback cb) { on_evict_ = std::move(cb); }

  /// Bytes of a resident page, touching it for recency; nullptr if absent.
  [[nodiscard]] std::byte* lookup(PageId page) {
    auto it = index_.find(page);
    if (it == index_.end()) return nullptr;
    Frame& f = frames_[it->second];
    f.last_used = ++tick_;
    return f.bytes.get();
  }

  /// Bytes without affecting recency (for assertions / server peeks).
  [[nodiscard]] const std::byte* peek(PageId page) const {
    auto it = index_.find(page);
    return it == index_.end() ? nullptr : frames_[it->second].bytes.get();
  }

  [[nodiscard]] bool resident(PageId page) const {
    return index_.contains(page);
  }

  /// Allocates (or returns) a frame for `page`, evicting if necessary.
  /// Contents of a fresh frame are zeroed.
  std::byte* acquire(PageId page);

  /// Drops a resident page without invoking the eviction callback (used
  /// when the protocol itself invalidates or transfers the page away).
  void release(PageId page);

  /// Pins a resident page so replacement skips it (eventcount pages are
  /// pinned during their atomic operations).
  void pin(PageId page);
  void unpin(PageId page);

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t resident_count() const { return frames_.size(); }
  [[nodiscard]] std::size_t page_size() const { return page_size_; }
  [[nodiscard]] ReplacementPolicy policy() const { return policy_; }

 private:
  struct Frame {
    PageId page = kNoPage;
    std::unique_ptr<std::byte[]> bytes;
    std::uint64_t last_used = 0;
    int pin_count = 0;
  };

  void evict_one();
  /// Index of the next victim candidate, or SIZE_MAX if all are
  /// unevictable this round.
  [[nodiscard]] std::size_t pick_victim(
      const std::vector<bool>& unevictable);
  void remove_at(std::size_t idx);

  Stats& stats_;
  NodeId node_;
  std::size_t page_size_;
  std::size_t capacity_;
  ReplacementPolicy policy_;
  Rng rng_;
  std::uint64_t tick_ = 0;
  std::vector<Frame> frames_;                        ///< dense storage
  std::unordered_map<PageId, std::size_t> index_;    ///< page -> slot
  EvictCallback on_evict_;

  static constexpr int kSampleProbes = 2;
};

}  // namespace ivy::mem
