// Binary locks on shared virtual memory words.
//
// "IVY uses a binary lock ... a test-and-set operation is performed on
// the lock.  A failed process will be put into a queue and will be
// awakened by an unlock operation."  The lock word and its waiter queue
// share one SVM page; like eventcounts, atomicity comes from holding
// write access across a non-blocking manipulation.
#pragma once

#include <cstdint>

#include "ivy/base/types.h"

namespace ivy::sync {

class SvmLock {
 public:
  SvmLock() = default;
  explicit SvmLock(SvmAddr base) : base_(base) {}

  void lock();
  void unlock();
  /// Single test-and-set attempt; true on success.
  [[nodiscard]] bool try_lock();

  [[nodiscard]] SvmAddr address() const { return base_; }
  [[nodiscard]] bool valid() const { return base_ != kNullSvmAddr; }

  struct WaitRecord {
    std::uint32_t home = 0;
    std::uint32_t pcb_index = 0;
    std::uint32_t serial = 0;
    std::uint32_t epoch = 0;
  };
  static constexpr std::size_t kHeaderBytes = 16;

  [[nodiscard]] static std::size_t capacity(std::size_t page_size) {
    return (page_size - kHeaderBytes) / sizeof(WaitRecord);
  }

 private:
  void acquire_page();

  SvmAddr base_ = kNullSvmAddr;
};

/// RAII guard.
class SvmLockGuard {
 public:
  explicit SvmLockGuard(SvmLock& lock) : lock_(lock) { lock_.lock(); }
  ~SvmLockGuard() { lock_.unlock(); }
  SvmLockGuard(const SvmLockGuard&) = delete;
  SvmLockGuard& operator=(const SvmLockGuard&) = delete;

 private:
  SvmLock& lock_;
};

}  // namespace ivy::sync
