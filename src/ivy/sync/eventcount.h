// Eventcounts — IVY's process synchronization mechanism.
//
// "An eventcount synchronization mechanism has four primitive operations:
// Init, Read, Wait(ec, value), Advance. ... The implementation of these
// primitives is based on shared virtual memory.  The atomic operation is
// implemented by pinning memory pages and using test-and-set
// instructions. ... eventcount primitives become local operations when
// the eventcount data structure has been paged into the local processor."
//
// The data structure lives in a single SVM page: a 64-bit value, a waiter
// count, and an array of waiter records.  Atomicity comes exactly where
// the paper gets it: a processor holds write access to the page while it
// manipulates it, and the manipulation contains no blocking point.
#pragma once

#include <cstdint>

#include "ivy/base/types.h"

namespace ivy::sync {

class Eventcount {
 public:
  Eventcount() = default;
  /// Binds to an eventcount whose storage starts at `base`
  /// (page-aligned).  "In most cases, only one page is needed for each
  /// eventcount"; when more waiters must be parked than one page holds,
  /// `pages` contiguous pages extend the record array (the paper's
  /// "additional pages will be linked together").
  explicit Eventcount(SvmAddr base, std::uint32_t pages = 1)
      : base_(base), pages_(pages) {}

  /// Re-initializes: value = 0, no waiters.  (Fresh SVM pages are zero,
  /// so a newly allocated eventcount is already initialized.)
  void init();

  /// Returns the current value.
  [[nodiscard]] std::int64_t read();

  /// Increments the value and wakes every process waiting for a value
  /// now reached.
  void advance();

  /// Suspends the calling process until the value reaches `value`.
  void wait(std::int64_t value);

  [[nodiscard]] SvmAddr address() const { return base_; }
  [[nodiscard]] std::uint32_t pages() const { return pages_; }
  [[nodiscard]] bool valid() const { return base_ != kNullSvmAddr; }

  struct WaitRecord {
    std::uint32_t home = 0;
    std::uint32_t pcb_index = 0;
    std::uint32_t serial = 0;
    std::uint32_t epoch = 0;
    std::int64_t target = 0;
  };
  static constexpr std::size_t kHeaderBytes = 16;

  /// Waiter capacity for a given page size and page count.
  [[nodiscard]] static std::size_t capacity(std::size_t page_size,
                                            std::uint32_t pages = 1) {
    return (page_size * pages - kHeaderBytes) / sizeof(WaitRecord);
  }

 private:
  /// Acquires write access + the pin/test-and-set preamble.
  void acquire();

  SvmAddr base_ = kNullSvmAddr;
  std::uint32_t pages_ = 1;
};

}  // namespace ivy::sync
