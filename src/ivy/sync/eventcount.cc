#include "ivy/sync/eventcount.h"

#include <vector>

#include "ivy/proc/svm_io.h"
#include "ivy/prof/prof.h"
#include "ivy/trace/trace.h"

namespace ivy::sync {
namespace {

// Layout offsets within the eventcount page.
constexpr SvmAddr kValueOff = 0;
constexpr SvmAddr kNWaitersOff = 8;
constexpr SvmAddr kRecordsOff = Eventcount::kHeaderBytes;

}  // namespace

void Eventcount::acquire() {
  proc::Scheduler* sched = proc::Scheduler::current_scheduler();
  IVY_CHECK_MSG(sched != nullptr, "eventcount op outside a process");
  // Write access to the whole structure (all linked pages), then the
  // test-and-set the paper uses for atomicity (two 68000 instructions).
  proc::ensure_access(base_, sched->svm().geometry().page_size * pages_,
                      svm::Access::kWrite);
  proc::Scheduler::charge_current(sched->simulator().costs().test_and_set);
  // Pin the page for the duration of the (non-blocking) manipulation.
  (void)sched->svm().usable_frame(sched->svm().geometry().page_of(base_));
}

void Eventcount::init() {
  acquire();
  proc::svm_write<std::int64_t>(base_ + kValueOff, 0);
  proc::svm_write<std::uint32_t>(base_ + kNWaitersOff, 0);
}

std::int64_t Eventcount::read() {
  proc::ensure_access(base_, sizeof(std::int64_t), svm::Access::kRead);
  return proc::svm_read<std::int64_t>(base_ + kValueOff);
}

void Eventcount::advance() {
  proc::Scheduler* sched = proc::Scheduler::current_scheduler();
  acquire();
  sched->stats().bump(sched->node(), Counter::kEcAdvances);

  const auto value = proc::svm_read<std::int64_t>(base_ + kValueOff) + 1;
  proc::svm_write<std::int64_t>(base_ + kValueOff, value);
  IVY_EVT(sched->stats(),
          record(sched->node(), trace::EventKind::kEcAdvance,
                 sched->svm().geometry().page_of(base_),
                 static_cast<std::uint64_t>(value)));

  // Wake every waiter whose target is reached; compact the array.
  auto nwaiters = proc::svm_read<std::uint32_t>(base_ + kNWaitersOff);
  std::vector<WaitRecord> waking;
  std::uint32_t kept = 0;
  for (std::uint32_t i = 0; i < nwaiters; ++i) {
    const SvmAddr rec_addr = base_ + kRecordsOff + i * sizeof(WaitRecord);
    const auto rec = proc::svm_read<WaitRecord>(rec_addr);
    if (rec.target <= value) {
      waking.push_back(rec);
    } else {
      if (kept != i) {
        proc::svm_write<WaitRecord>(
            base_ + kRecordsOff + kept * sizeof(WaitRecord), rec);
      }
      ++kept;
    }
  }
  proc::svm_write<std::uint32_t>(base_ + kNWaitersOff, kept);

  for (const WaitRecord& rec : waking) {
    const ProcId pid{rec.home, rec.pcb_index, rec.serial};
    const std::uint32_t epoch = rec.epoch;
    // Wakeups leave this node at the advancing process's current virtual
    // time; Scheduler::resume routes locally or via kRemoteResume.
    proc::defer_from_fiber(
        [sched, pid, epoch] { sched->resume(pid, epoch); });
  }
}

void Eventcount::wait(std::int64_t value) {
  proc::Scheduler* sched = proc::Scheduler::current_scheduler();
  const std::size_t cap =
      capacity(sched->svm().geometry().page_size, pages_);
  Time wait_start = 0;
  bool blocked = false;
  for (;;) {
    acquire();
    if (proc::svm_read<std::int64_t>(base_ + kValueOff) >= value) {
      if (blocked) {
        const Time dur = sched->simulator().now() - wait_start;
        sched->stats().record_latency(sched->node(), Hist::kEcWait, dur);
        IVY_EVT(sched->stats(),
                record_span(sched->node(), trace::EventKind::kEcWait,
                            wait_start, dur,
                            sched->svm().geometry().page_of(base_),
                            static_cast<std::uint64_t>(value)));
        IVY_PROF(sched->stats(),
                 end_wait(sched->node(), prof::Domain::kSync,
                          sched->svm().geometry().page_of(base_),
                          sched->simulator().now()));
      }
      return;
    }
    if (!blocked) {
      blocked = true;
      wait_start = sched->simulator().now();
      IVY_PROF(sched->stats(),
               begin_wait(sched->node(), prof::Cat::kSyncWait,
                          prof::Domain::kSync,
                          sched->svm().geometry().page_of(base_), wait_start));
    }

    const auto nwaiters = proc::svm_read<std::uint32_t>(base_ + kNWaitersOff);
    IVY_CHECK_MSG(nwaiters < cap,
                  "eventcount waiter overflow (page too small)");
    proc::Pcb* pcb = proc::Scheduler::current_pcb();
    WaitRecord rec;
    rec.home = pcb->id.home;
    rec.pcb_index = pcb->id.pcb_index;
    rec.serial = pcb->id.serial;
    rec.epoch = pcb->block_epoch + 1;  // the epoch of the upcoming block
    rec.target = value;
    proc::svm_write<WaitRecord>(
        base_ + kRecordsOff + nwaiters * sizeof(WaitRecord), rec);
    proc::svm_write<std::uint32_t>(base_ + kNWaitersOff, nwaiters + 1);
    sched->stats().bump(sched->node(), Counter::kEcWaits);

    // No blocking point separates the record write from this yield, so
    // an advancer can only observe the record once we are suspended.
    proc::Scheduler::block_current(nullptr);
    // Re-check on wakeup (monotone value makes this a formality).
  }
}

}  // namespace ivy::sync
