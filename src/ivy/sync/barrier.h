// Iteration barrier built on a single eventcount, the way the paper's
// Jacobi programs synchronize ("all the processes are synchronized at
// each iteration by using an event count"): in round r every party
// advances once and waits for the value to reach parties * (r + 1).
#pragma once

#include "ivy/sync/eventcount.h"

namespace ivy::sync {

class Barrier {
 public:
  Barrier() = default;
  Barrier(Eventcount ec, int parties) : ec_(ec), parties_(parties) {}

  /// Blocks until all `parties` processes have arrived for `round`
  /// (rounds are 0-based and must be used in order by every party).
  void arrive(std::int64_t round) {
    ec_.advance();
    ec_.wait(parties_ * (round + 1));
  }

  [[nodiscard]] int parties() const { return parties_; }
  [[nodiscard]] Eventcount& eventcount() { return ec_; }
  [[nodiscard]] bool valid() const { return ec_.valid() && parties_ > 0; }

 private:
  Eventcount ec_;
  int parties_ = 0;
};

}  // namespace ivy::sync
