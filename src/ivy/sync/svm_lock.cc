#include "ivy/sync/svm_lock.h"

#include "ivy/proc/svm_io.h"
#include "ivy/prof/prof.h"
#include "ivy/trace/trace.h"

namespace ivy::sync {
namespace {

constexpr SvmAddr kWordOff = 0;
constexpr SvmAddr kNWaitersOff = 8;
constexpr SvmAddr kRecordsOff = SvmLock::kHeaderBytes;

}  // namespace

void SvmLock::acquire_page() {
  proc::Scheduler* sched = proc::Scheduler::current_scheduler();
  IVY_CHECK_MSG(sched != nullptr, "lock op outside a process");
  proc::ensure_access(base_, kHeaderBytes, svm::Access::kWrite);
  // Scoped after ensure_access: the fault above may yield, and a scope
  // across a yield would leak into whatever fiber runs meanwhile.
  prof::ChargeScope spin(sched->stats().prof(), prof::Cat::kLockSpin);
  proc::Scheduler::charge_current(sched->simulator().costs().test_and_set);
}

bool SvmLock::try_lock() {
  proc::Scheduler* sched = proc::Scheduler::current_scheduler();
  acquire_page();
  if (proc::svm_read<std::uint64_t>(base_ + kWordOff) != 0) {
    sched->stats().bump(sched->node(), Counter::kLockSpins);
    return false;
  }
  proc::svm_write<std::uint64_t>(base_ + kWordOff, 1);
  sched->stats().bump(sched->node(), Counter::kLockAcquisitions);
  return true;
}

void SvmLock::lock() {
  proc::Scheduler* sched = proc::Scheduler::current_scheduler();
  const std::size_t cap = capacity(sched->svm().geometry().page_size);
  Time wait_start = 0;
  bool contended = false;
  for (;;) {
    if (try_lock()) {
      if (contended) {
        // Contended path only: uncontended acquisitions would flood the
        // histogram with zeros and hide the tail that matters.
        const Time dur = sched->simulator().now() - wait_start;
        sched->stats().record_latency(sched->node(), Hist::kLockWait, dur);
        IVY_EVT(sched->stats(),
                record_span(sched->node(), trace::EventKind::kLockWait,
                            wait_start, dur,
                            sched->svm().geometry().page_of(base_)));
        IVY_PROF(sched->stats(),
                 end_wait(sched->node(), prof::Domain::kLock,
                          sched->svm().geometry().page_of(base_),
                          sched->simulator().now()));
      }
      return;
    }
    if (!contended) {
      contended = true;
      wait_start = sched->simulator().now();
      IVY_PROF(sched->stats(),
               begin_wait(sched->node(), prof::Cat::kLockWait,
                          prof::Domain::kLock,
                          sched->svm().geometry().page_of(base_), wait_start));
    }
    // Enqueue and sleep until an unlock wakes us; then contend again.
    const auto nwaiters = proc::svm_read<std::uint32_t>(base_ + kNWaitersOff);
    IVY_CHECK_MSG(nwaiters < cap, "lock waiter overflow (page too small)");
    proc::Pcb* pcb = proc::Scheduler::current_pcb();
    WaitRecord rec{pcb->id.home, pcb->id.pcb_index, pcb->id.serial,
                   pcb->block_epoch + 1};
    proc::svm_write<WaitRecord>(
        base_ + kRecordsOff + nwaiters * sizeof(WaitRecord), rec);
    proc::svm_write<std::uint32_t>(base_ + kNWaitersOff, nwaiters + 1);
    proc::Scheduler::block_current(nullptr);
  }
}

void SvmLock::unlock() {
  proc::Scheduler* sched = proc::Scheduler::current_scheduler();
  acquire_page();
  IVY_CHECK_MSG(proc::svm_read<std::uint64_t>(base_ + kWordOff) == 1,
                "unlock of a free lock");
  proc::svm_write<std::uint64_t>(base_ + kWordOff, 0);

  const auto nwaiters = proc::svm_read<std::uint32_t>(base_ + kNWaitersOff);
  if (nwaiters == 0) return;
  // FIFO handoff attempt: wake the oldest waiter, shift the rest down.
  const auto first = proc::svm_read<WaitRecord>(base_ + kRecordsOff);
  for (std::uint32_t i = 1; i < nwaiters; ++i) {
    const auto rec = proc::svm_read<WaitRecord>(base_ + kRecordsOff +
                                                i * sizeof(WaitRecord));
    proc::svm_write<WaitRecord>(
        base_ + kRecordsOff + (i - 1) * sizeof(WaitRecord), rec);
  }
  proc::svm_write<std::uint32_t>(base_ + kNWaitersOff, nwaiters - 1);

  const ProcId pid{first.home, first.pcb_index, first.serial};
  const std::uint32_t epoch = first.epoch;
  proc::defer_from_fiber([sched, pid, epoch] { sched->resume(pid, epoch); });
}

}  // namespace ivy::sync
