#include "ivy/trace/hot_pages.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

namespace ivy::trace {

std::vector<HotPage> hot_pages(const Tracer& tracer, std::size_t top_n) {
  std::unordered_map<PageId, HotPage> by_page;
  tracer.for_each([&](const Event& e) {
    switch (e.kind) {
      case EventKind::kReadFault:
      case EventKind::kWriteFault: {
        HotPage& h = by_page[static_cast<PageId>(e.arg0)];
        ++h.faults;
        if (e.node < kMaxNodes) h.faulting_nodes.add(e.node);
        break;
      }
      case EventKind::kInvalidateRecv:
        ++by_page[static_cast<PageId>(e.arg0)].invalidations;
        break;
      case EventKind::kOwnershipGained:
        ++by_page[static_cast<PageId>(e.arg0)].transfers;
        break;
      default:
        break;
    }
  });

  std::vector<HotPage> ranked;
  ranked.reserve(by_page.size());
  for (auto& [page, h] : by_page) {
    h.page = page;
    ranked.push_back(h);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const HotPage& a, const HotPage& b) {
              if (a.faults != b.faults) return a.faults > b.faults;
              if (a.invalidations != b.invalidations) {
                return a.invalidations > b.invalidations;
              }
              return a.page < b.page;
            });
  if (ranked.size() > top_n) ranked.resize(top_n);
  return ranked;
}

std::string hot_page_report(const Tracer& tracer, std::size_t top_n) {
  const std::vector<HotPage> ranked = hot_pages(tracer, top_n);
  if (ranked.empty()) return {};
  std::string out =
      "  page        faults  invalidations  ownership_moves  nodes\n";
  char line[128];
  for (const HotPage& h : ranked) {
    std::snprintf(line, sizeof(line), "  %-10u %7llu %14llu %16llu %6d\n",
                  h.page, static_cast<unsigned long long>(h.faults),
                  static_cast<unsigned long long>(h.invalidations),
                  static_cast<unsigned long long>(h.transfers),
                  h.faulting_nodes.count());
    out += line;
  }
  return out;
}

}  // namespace ivy::trace
