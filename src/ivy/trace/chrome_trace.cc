#include "ivy/trace/chrome_trace.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "ivy/base/log.h"

namespace ivy::trace {
namespace {

/// Virtual nanoseconds -> the microsecond floats Chrome traces use.
/// Three decimals keep full nanosecond precision.
void put_us(std::ostream& out, Time ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%03d", ns / 1000,
                static_cast<int>(ns % 1000));
  out << buf;
}

void put_metadata(std::ostream& out, const char* what, NodeId pid, int tid,
                  const std::string& name, bool& first) {
  if (!first) out << ",\n";
  first = false;
  out << R"(    {"name":")" << what << R"(","ph":"M","pid":)" << pid;
  if (tid >= 0) out << R"(,"tid":)" << tid;
  out << R"(,"args":{"name":")" << name << R"("}})";
}

}  // namespace

void write_chrome_trace(std::ostream& out, const Tracer& tracer,
                        const std::string& machine_name,
                        const prof::Profiler* prof) {
  out << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
  bool first = true;

  // Process/thread naming: one "process" per node, one "thread" per
  // event category, discovered from the events actually present.
  std::array<std::uint64_t, 64> node_cats{};  // bitmask of categories seen
  tracer.for_each([&](const Event& e) {
    if (e.node < node_cats.size()) {
      node_cats[e.node] |=
          std::uint64_t{1} << static_cast<int>(category_of(e.kind));
    }
  });
  for (NodeId n = 0; n < node_cats.size(); ++n) {
    if (node_cats[n] == 0) continue;
    put_metadata(out, "process_name", n, -1,
                 machine_name + " node " + std::to_string(n), first);
    for (std::size_t c = 0; c < kCategoryCount; ++c) {
      if ((node_cats[n] >> c & 1) == 0) continue;
      put_metadata(out, "thread_name", n, static_cast<int>(c),
                   to_string(static_cast<Category>(c)), first);
    }
  }

  tracer.for_each([&](const Event& e) {
    if (!first) out << ",\n";
    first = false;
    const int tid = static_cast<int>(category_of(e.kind));
    out << R"(    {"name":")" << to_string(e.kind) << R"(","cat":")"
        << to_string(category_of(e.kind)) << R"(","pid":)" << e.node
        << R"(,"tid":)" << tid << R"(,"ts":)";
    put_us(out, e.ts);
    if (e.dur > 0) {
      out << R"(,"ph":"X","dur":)";
      put_us(out, e.dur);
    } else {
      out << R"(,"ph":"i","s":"t")";
    }
    out << R"(,"args":{)";
    bool first_arg = true;
    if (const char* a0 = arg0_name(e.kind); a0[0] != '\0') {
      out << '"' << a0 << "\":" << e.arg0;
      first_arg = false;
    }
    if (const char* a1 = arg1_name(e.kind); a1[0] != '\0') {
      if (!first_arg) out << ',';
      out << '"' << a1 << "\":" << e.arg1;
    }
    out << "}}";
  });

  // Utilization counter tracks: one "C" sample per slice per node, with
  // the slice's nanoseconds split by category.  Perfetto stacks them
  // into an area chart alongside the event tracks.
  if (prof != nullptr && prof->slice() > 0) {
    const Time slice = prof->slice();
    for (NodeId n = 0; n < prof->nodes(); ++n) {
      const auto& bins = prof->slices(n);
      for (std::size_t b = 0; b < bins.size(); ++b) {
        if (!first) out << ",\n";
        first = false;
        out << R"(    {"name":"utilization","ph":"C","pid":)" << n
            << R"(,"ts":)";
        put_us(out, static_cast<Time>(b) * slice);
        out << R"(,"args":{)";
        bool first_cat = true;
        for (std::size_t c = 0; c < prof::kCatCount; ++c) {
          if (bins[b][c] == 0) continue;
          if (!first_cat) out << ',';
          first_cat = false;
          out << '"' << prof::cat_names()[c] << "\":" << bins[b][c];
        }
        out << "}}";
      }
    }
  }

  out << "\n  ]\n}\n";
}

bool write_chrome_trace_file(const std::string& path, const Tracer& tracer,
                             const std::string& machine_name,
                             const prof::Profiler* prof) {
  std::ofstream out(path);
  if (!out) {
    IVY_WARN() << "cannot open trace output file " << path;
    return false;
  }
  write_chrome_trace(out, tracer, machine_name, prof);
  return static_cast<bool>(out);
}

}  // namespace ivy::trace
