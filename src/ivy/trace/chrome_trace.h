// Chrome trace_event-format exporter.
//
// Produces the JSON Object Format of the Trace Event specification:
// nodes render as processes, event categories as threads, duration
// events as "X" phases and instants as "i" phases.  The file loads
// directly in Perfetto (ui.perfetto.dev) or chrome://tracing.
#pragma once

#include <iosfwd>
#include <string>

#include "ivy/prof/prof.h"
#include "ivy/trace/trace.h"

namespace ivy::trace {

/// Writes the retained events of `tracer` as Chrome trace JSON.
/// `machine_name` labels the trace (shown as process-name suffix).
/// With a profiler whose slice() > 0, each node additionally gets "C"
/// counter tracks: one utilization sample per slice with the per-category
/// share of that slice (stacked area chart in Perfetto).
void write_chrome_trace(std::ostream& out, const Tracer& tracer,
                        const std::string& machine_name = "ivy",
                        const prof::Profiler* prof = nullptr);

/// File convenience wrapper; returns false (and logs) on I/O failure.
bool write_chrome_trace_file(const std::string& path, const Tracer& tracer,
                             const std::string& machine_name = "ivy",
                             const prof::Profiler* prof = nullptr);

}  // namespace ivy::trace
