#include "ivy/trace/trace.h"

namespace ivy::trace {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kReadFault: return "read_fault";
    case EventKind::kWriteFault: return "write_fault";
    case EventKind::kDiskFault: return "disk_fault";
    case EventKind::kInvalidateSent: return "invalidate_round";
    case EventKind::kInvalidateRecv: return "invalidated";
    case EventKind::kOwnershipGained: return "ownership_gained";
    case EventKind::kOwnershipLost: return "ownership_transfer";
    case EventKind::kPageSent: return "page_sent";
    case EventKind::kForward: return "forward";
    case EventKind::kMsgSend: return "msg_send";
    case EventKind::kRetransmit: return "retransmit";
    case EventKind::kRemoteOp: return "remote_op";
    case EventKind::kFaultInjected: return "fault_injected";
    case EventKind::kMsgCorrupted: return "msg_corrupted";
    case EventKind::kRpcBackoff: return "rpc_backoff";
    case EventKind::kRpcFailed: return "rpc_failed";
    case EventKind::kRpcRequest: return "rpc_request";
    case EventKind::kRpcReplySent: return "rpc_reply_sent";
    case EventKind::kRpcOrphan: return "rpc_orphan";
    case EventKind::kRpcCancel: return "rpc_cancel";
    case EventKind::kDiskRead: return "disk_read";
    case EventKind::kDiskWrite: return "disk_write";
    case EventKind::kEviction: return "eviction";
    case EventKind::kProcSpawn: return "proc_spawn";
    case EventKind::kProcFinish: return "proc_finish";
    case EventKind::kMigrateOut: return "migrate_out";
    case EventKind::kMigrateIn: return "migrate_in";
    case EventKind::kLockWait: return "lock_wait";
    case EventKind::kEcWait: return "ec_wait";
    case EventKind::kEcAdvance: return "ec_advance";
    case EventKind::kCount: break;
  }
  return "?";
}

const char* to_string(Category cat) {
  switch (cat) {
    case Category::kFault: return "fault";
    case Category::kCoherence: return "coherence";
    case Category::kNet: return "net";
    case Category::kDisk: return "disk";
    case Category::kSched: return "sched";
    case Category::kSync: return "sync";
    case Category::kCount: break;
  }
  return "?";
}

Category category_of(EventKind kind) {
  switch (kind) {
    case EventKind::kReadFault:
    case EventKind::kWriteFault:
    case EventKind::kDiskFault:
      return Category::kFault;
    case EventKind::kInvalidateSent:
    case EventKind::kInvalidateRecv:
    case EventKind::kOwnershipGained:
    case EventKind::kOwnershipLost:
    case EventKind::kPageSent:
    case EventKind::kForward:
      return Category::kCoherence;
    case EventKind::kMsgSend:
    case EventKind::kRetransmit:
    case EventKind::kRemoteOp:
    case EventKind::kFaultInjected:
    case EventKind::kMsgCorrupted:
    case EventKind::kRpcBackoff:
    case EventKind::kRpcFailed:
    case EventKind::kRpcRequest:
    case EventKind::kRpcReplySent:
    case EventKind::kRpcOrphan:
    case EventKind::kRpcCancel:
      return Category::kNet;
    case EventKind::kDiskRead:
    case EventKind::kDiskWrite:
    case EventKind::kEviction:
      return Category::kDisk;
    case EventKind::kProcSpawn:
    case EventKind::kProcFinish:
    case EventKind::kMigrateOut:
    case EventKind::kMigrateIn:
      return Category::kSched;
    case EventKind::kLockWait:
    case EventKind::kEcWait:
    case EventKind::kEcAdvance:
      return Category::kSync;
    case EventKind::kCount: break;
  }
  return Category::kCount;
}

const char* arg0_name(EventKind kind) {
  switch (category_of(kind)) {
    case Category::kFault:
    case Category::kCoherence:
    case Category::kDisk:
    case Category::kSync:
      return "page";
    case Category::kSched:
      return "proc";
    case Category::kNet:
      switch (kind) {
        case EventKind::kRemoteOp:
        case EventKind::kMsgSend:
        case EventKind::kRetransmit:
        case EventKind::kFaultInjected:
        case EventKind::kMsgCorrupted:
          return "msg_kind";
        case EventKind::kRpcRequest:
        case EventKind::kRpcReplySent:
        case EventKind::kRpcOrphan:
        case EventKind::kRpcCancel:
        case EventKind::kRpcBackoff:
        case EventKind::kRpcFailed:
          return "rpc_id";
        default:
          return "arg0";
      }
    case Category::kCount: break;
  }
  return "arg0";
}

const char* arg1_name(EventKind kind) {
  switch (kind) {
    case EventKind::kInvalidateSent: return "copies";
    case EventKind::kInvalidateRecv: return "new_owner";
    case EventKind::kOwnershipGained: return "from";
    case EventKind::kOwnershipLost: return "to";
    case EventKind::kPageSent: return "to";
    case EventKind::kForward: return "origin";
    case EventKind::kMsgSend: return "dst";
    case EventKind::kRetransmit: return "dst";
    case EventKind::kRemoteOp: return "dst";
    case EventKind::kRpcRequest: return "dst";
    case EventKind::kRpcReplySent: return "requester";
    case EventKind::kRpcOrphan: return "server";
    case EventKind::kFaultInjected: return "fault_type";
    case EventKind::kMsgCorrupted: return "src";
    case EventKind::kRpcBackoff: return "attempt";
    case EventKind::kRpcFailed: return "dst";
    case EventKind::kMigrateOut: return "to";
    case EventKind::kMigrateIn: return "from";
    case EventKind::kEcAdvance: return "value";
    case EventKind::kReadFault:
    case EventKind::kWriteFault: return "hops";
    default: return "";
  }
}

}  // namespace ivy::trace
