#include "ivy/trace/analyze.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <unordered_map>

namespace ivy::trace {
namespace {

// --- minimal JSON ------------------------------------------------------
//
// Just enough of a recursive-descent parser for the files our own
// exporters write (objects, arrays, strings, numbers, bools, null).  No
// external dependency, no DOM sharing: one value tree per file.

struct Json {
  enum Type : std::uint8_t { kNull, kBool, kNum, kStr, kArr, kObj };
  Type type = kNull;
  bool boolean = false;
  double num = 0.0;
  std::string str;
  std::vector<Json> arr;
  std::vector<std::pair<std::string, Json>> obj;

  [[nodiscard]] const Json* find(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  [[nodiscard]] std::uint64_t as_u64() const {
    return num < 0 ? 0 : static_cast<std::uint64_t>(num + 0.5);
  }
};

class Parser {
 public:
  Parser(const char* begin, const char* end) : p_(begin), end_(end) {}

  bool parse(Json* out, std::string* error) {
    if (!value(out)) {
      *error = error_.empty() ? "malformed JSON" : error_;
      return false;
    }
    skip_ws();
    if (p_ != end_) {
      *error = "trailing garbage after JSON value";
      return false;
    }
    return true;
  }

 private:
  void skip_ws() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                          *p_ == '\r')) {
      ++p_;
    }
  }
  bool literal(const char* word) {
    const char* q = p_;
    for (; *word != '\0'; ++word, ++q) {
      if (q == end_ || *q != *word) return false;
    }
    p_ = q;
    return true;
  }
  bool fail(const char* what) {
    error_ = what;
    return false;
  }

  bool string(std::string* out) {
    if (p_ == end_ || *p_ != '"') return fail("expected string");
    ++p_;
    out->clear();
    while (p_ != end_ && *p_ != '"') {
      char c = *p_++;
      if (c == '\\') {
        if (p_ == end_) return fail("truncated escape");
        switch (*p_++) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u':
            // Our exporters never emit \u; decode as '?' to stay total.
            for (int i = 0; i < 4 && p_ != end_; ++i) ++p_;
            c = '?';
            break;
          default: return fail("unknown escape");
        }
      }
      out->push_back(c);
    }
    if (p_ == end_) return fail("unterminated string");
    ++p_;  // closing quote
    return true;
  }

  bool value(Json* out) {
    skip_ws();
    if (p_ == end_) return fail("unexpected end of input");
    switch (*p_) {
      case '{': {
        out->type = Json::kObj;
        ++p_;
        skip_ws();
        if (p_ != end_ && *p_ == '}') { ++p_; return true; }
        while (true) {
          skip_ws();
          std::string key;
          if (!string(&key)) return false;
          skip_ws();
          if (p_ == end_ || *p_ != ':') return fail("expected ':'");
          ++p_;
          Json v;
          if (!value(&v)) return false;
          out->obj.emplace_back(std::move(key), std::move(v));
          skip_ws();
          if (p_ != end_ && *p_ == ',') { ++p_; continue; }
          if (p_ != end_ && *p_ == '}') { ++p_; return true; }
          return fail("expected ',' or '}'");
        }
      }
      case '[': {
        out->type = Json::kArr;
        ++p_;
        skip_ws();
        if (p_ != end_ && *p_ == ']') { ++p_; return true; }
        while (true) {
          Json v;
          if (!value(&v)) return false;
          out->arr.push_back(std::move(v));
          skip_ws();
          if (p_ != end_ && *p_ == ',') { ++p_; continue; }
          if (p_ != end_ && *p_ == ']') { ++p_; return true; }
          return fail("expected ',' or ']'");
        }
      }
      case '"':
        out->type = Json::kStr;
        return string(&out->str);
      case 't':
        if (!literal("true")) return fail("bad literal");
        out->type = Json::kBool;
        out->boolean = true;
        return true;
      case 'f':
        if (!literal("false")) return fail("bad literal");
        out->type = Json::kBool;
        out->boolean = false;
        return true;
      case 'n':
        if (!literal("null")) return fail("bad literal");
        out->type = Json::kNull;
        return true;
      default: {
        char* after = nullptr;
        const double v = std::strtod(p_, &after);
        if (after == p_) return fail("expected value");
        out->type = Json::kNum;
        out->num = v;
        p_ = after;
        return true;
      }
    }
  }

  const char* p_;
  const char* end_;
  std::string error_;
};

bool parse_file(const std::string& path, Json* out, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  Parser parser(text.data(), text.data() + text.size());
  if (!parser.parse(out, error)) {
    *error = path + ": " + *error;
    return false;
  }
  return true;
}

/// Reverse of to_string(EventKind), built once.
EventKind kind_from_name(const std::string& name) {
  static const auto kMap = [] {
    std::unordered_map<std::string, EventKind> m;
    for (std::size_t i = 0; i < kEventKindCount; ++i) {
      const auto k = static_cast<EventKind>(i);
      m.emplace(to_string(k), k);
    }
    return m;
  }();
  const auto it = kMap.find(name);
  return it == kMap.end() ? EventKind::kCount : it->second;
}

/// Chrome-trace microseconds (a "123.456" double) back to nanoseconds.
Time us_to_ns(double us) {
  return static_cast<Time>(std::llround(us * 1000.0));
}

std::string format_us(Time ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.1fus",
                static_cast<double>(ns) / 1000.0);
  return buf;
}

}  // namespace

bool load_chrome_trace(const std::string& path, LoadedTrace* out,
                       std::string* error) {
  Json root;
  if (!parse_file(path, &root, error)) return false;
  const Json* events = root.find("traceEvents");
  if (events == nullptr || events->type != Json::kArr) {
    *error = path + ": no traceEvents array";
    return false;
  }
  out->events.clear();
  out->machine.clear();
  out->unknown_names = 0;
  for (const Json& je : events->arr) {
    const Json* ph = je.find("ph");
    const Json* name = je.find("name");
    if (ph == nullptr || name == nullptr) continue;
    if (ph->str == "M") {
      if (name->str == "process_name" && out->machine.empty()) {
        if (const Json* args = je.find("args")) {
          if (const Json* n = args->find("name")) {
            // "ivy node 3" -> "ivy"
            const std::size_t cut = n->str.rfind(" node ");
            out->machine =
                cut == std::string::npos ? n->str : n->str.substr(0, cut);
          }
        }
      }
      continue;
    }
    const EventKind kind = kind_from_name(name->str);
    if (kind == EventKind::kCount) {
      ++out->unknown_names;
      continue;
    }
    Event e;
    e.kind = kind;
    if (const Json* pid = je.find("pid")) {
      e.node = static_cast<NodeId>(pid->as_u64());
    }
    if (const Json* ts = je.find("ts")) e.ts = us_to_ns(ts->num);
    if (const Json* dur = je.find("dur")) e.dur = us_to_ns(dur->num);
    if (const Json* args = je.find("args")) {
      if (const char* a0 = arg0_name(kind); a0[0] != '\0') {
        if (const Json* v = args->find(a0)) e.arg0 = v->as_u64();
      }
      if (const char* a1 = arg1_name(kind); a1[0] != '\0') {
        if (const Json* v = args->find(a1)) e.arg1 = v->as_u64();
      }
    }
    out->events.push_back(e);
  }
  // Recording order already ties causally-ordered same-timestamp events;
  // a stable sort keeps that while ordering by virtual time.
  std::stable_sort(out->events.begin(), out->events.end(),
                   [](const Event& a, const Event& b) { return a.ts < b.ts; });
  return true;
}

bool load_metrics_json(const std::string& path, MetricsSummary* out,
                       std::string* error) {
  Json root;
  if (!parse_file(path, &root, error)) return false;
  if (root.type != Json::kObj) {
    *error = path + ": metrics root is not an object";
    return false;
  }
  *out = MetricsSummary{};
  if (const Json* v = root.find("name")) out->name = v->str;
  if (const Json* v = root.find("nodes")) {
    out->nodes = static_cast<std::uint32_t>(v->as_u64());
  }
  if (const Json* v = root.find("elapsed_ns")) {
    out->elapsed = static_cast<Time>(v->as_u64());
  }
  const Json* counters = root.find("counters_total");
  if (counters == nullptr || counters->type != Json::kObj) {
    *error = path + ": no counters_total object";
    return false;
  }
  for (const auto& [k, v] : counters->obj) out->counters[k] = v.as_u64();
  if (const Json* tr = root.find("trace")) {
    out->has_trace_block = true;
    if (const Json* v = tr->find("recorded")) out->trace_recorded = v->as_u64();
    if (const Json* v = tr->find("retained")) out->trace_retained = v->as_u64();
    if (const Json* v = tr->find("dropped")) out->trace_dropped = v->as_u64();
  }
  return true;
}

namespace {

/// Per-page index of the events that decompose a fault, pointers into
/// the (ts-sorted) event vector.
struct PageIndex {
  std::vector<const Event*> sent;     // kPageSent
  std::vector<const Event*> gained;   // kOwnershipGained
  std::vector<const Event*> inval;    // kInvalidateSent
  std::vector<const Event*> forward;  // kForward
};

std::unordered_map<PageId, PageIndex> index_pages(const LoadedTrace& trace) {
  std::unordered_map<PageId, PageIndex> index;
  for (const Event& e : trace.events) {
    switch (e.kind) {
      case EventKind::kPageSent:
        index[static_cast<PageId>(e.arg0)].sent.push_back(&e);
        break;
      case EventKind::kOwnershipGained:
        index[static_cast<PageId>(e.arg0)].gained.push_back(&e);
        break;
      case EventKind::kInvalidateSent:
        index[static_cast<PageId>(e.arg0)].inval.push_back(&e);
        break;
      case EventKind::kForward:
        index[static_cast<PageId>(e.arg0)].forward.push_back(&e);
        break;
      default:
        break;
    }
  }
  return index;
}

}  // namespace

CriticalPathReport critical_path(const LoadedTrace& trace,
                                 std::size_t top_n) {
  CriticalPathReport report;
  const auto index = index_pages(trace);
  const PageIndex empty;
  for (const Event& e : trace.events) {
    const bool write = e.kind == EventKind::kWriteFault;
    if (!write && e.kind != EventKind::kReadFault) continue;
    const auto page = static_cast<PageId>(e.arg0);
    const Time t0 = e.ts;
    const Time t1 = e.ts + e.dur;
    const auto it = index.find(page);
    const PageIndex& idx = it == index.end() ? empty : it->second;
    const auto in_window = [&](const Event* ev) {
      return ev->ts >= t0 && ev->ts <= t1;
    };

    FaultPath path;
    path.node = e.node;
    path.page = page;
    path.write = write;
    path.start = t0;
    path.total = e.dur;
    for (const Event* f : idx.forward) {
      if (in_window(f) && f->arg1 == e.node) ++path.hops;
    }
    // First body shipped *to this faulter* inside the window.
    const Event* sent = nullptr;
    for (const Event* s : idx.sent) {
      if (in_window(s) && s->arg1 == e.node) { sent = s; break; }
    }
    if (write) {
      // Ownership installed at the faulter; then its invalidation round.
      const Event* gained = nullptr;
      for (const Event* g : idx.gained) {
        if (in_window(g) && g->node == e.node) { gained = g; break; }
      }
      const Event* inval = nullptr;
      for (const Event* i : idx.inval) {
        if (in_window(i) && i->node == e.node) { inval = i; break; }
      }
      if (gained == nullptr) {
        path.local = true;  // local upgrade (or serve outside the window)
        if (inval != nullptr) path.invalidate = inval->dur;
        path.resume = e.dur - path.invalidate;
      } else {
        const Time t_sent = sent != nullptr && sent->ts <= gained->ts
                                ? sent->ts
                                : gained->ts;  // bodyless grant
        path.locate = t_sent - t0;
        path.transfer = gained->ts - t_sent;
        if (inval != nullptr) path.invalidate = inval->dur;
        Time settled = gained->ts;
        if (inval != nullptr) settled = inval->ts + inval->dur;
        path.resume = t1 > settled ? t1 - settled : 0;
      }
    } else {
      if (sent == nullptr) {
        path.local = true;
      } else {
        path.locate = sent->ts - t0;
        // Reply wire time + install + wakeup, undivided for reads.
        path.resume = t1 - sent->ts;
      }
    }

    LegTotals& agg = write ? report.writes : report.reads;
    ++agg.count;
    agg.locate += path.locate;
    agg.transfer += path.transfer;
    agg.invalidate += path.invalidate;
    agg.resume += path.resume;
    agg.total += path.total;
    if (path.local) ++report.local_faults;

    report.slowest.push_back(path);
    std::push_heap(report.slowest.begin(), report.slowest.end(),
                   [](const FaultPath& a, const FaultPath& b) {
                     return a.total > b.total;  // min-heap on total
                   });
    if (report.slowest.size() > top_n) {
      std::pop_heap(report.slowest.begin(), report.slowest.end(),
                    [](const FaultPath& a, const FaultPath& b) {
                      return a.total > b.total;
                    });
      report.slowest.pop_back();
    }
  }
  std::sort(report.slowest.begin(), report.slowest.end(),
            [](const FaultPath& a, const FaultPath& b) {
              if (a.total != b.total) return a.total > b.total;
              return a.start < b.start;  // deterministic tie-break
            });
  return report;
}

std::vector<PageContention> contention(const LoadedTrace& trace,
                                       std::size_t top_n) {
  struct Tally {
    PageContention row;
    std::set<NodeId> faulters;
    std::vector<NodeId> owner_seq;
    std::vector<Time> fault_times;
  };
  std::unordered_map<PageId, Tally> tallies;
  Time lo = 0;
  Time hi = 0;
  if (!trace.events.empty()) {
    lo = trace.events.front().ts;
    hi = trace.events.back().ts;
  }
  for (const Event& e : trace.events) {
    const auto page = static_cast<PageId>(e.arg0);
    switch (e.kind) {
      case EventKind::kReadFault:
      case EventKind::kWriteFault: {
        Tally& t = tallies[page];
        ++t.row.faults;
        t.faulters.insert(e.node);
        t.fault_times.push_back(e.ts);
        break;
      }
      case EventKind::kInvalidateSent:
        ++tallies[page].row.invalidation_rounds;
        break;
      case EventKind::kOwnershipGained: {
        Tally& t = tallies[page];
        ++t.row.ownership_moves;
        t.owner_seq.push_back(e.node);
        break;
      }
      default:
        break;
    }
  }
  std::vector<PageContention> rows;
  rows.reserve(tallies.size());
  const Time span = hi > lo ? hi - lo : 1;
  constexpr std::size_t kBins = 48;
  for (auto& [page, t] : tallies) {
    t.row.page = page;
    t.row.nodes = static_cast<std::uint32_t>(t.faulters.size());
    for (std::size_t i = 2; i < t.owner_seq.size(); ++i) {
      if (t.owner_seq[i] == t.owner_seq[i - 2] &&
          t.owner_seq[i] != t.owner_seq[i - 1]) {
        ++t.row.ping_pong;
      }
    }
    std::array<std::uint32_t, kBins> bins{};
    std::uint32_t peak = 0;
    for (const Time ts : t.fault_times) {
      const auto b = static_cast<std::size_t>(
          static_cast<double>(ts - lo) / static_cast<double>(span) *
          (kBins - 1));
      peak = std::max(peak, ++bins[b]);
    }
    static constexpr char kLevels[] = ".:-=+*#@";
    t.row.timeline.reserve(kBins);
    for (const std::uint32_t b : bins) {
      if (b == 0) {
        t.row.timeline.push_back(' ');
      } else {
        const std::size_t level = (b * 7 + peak - 1) / peak;  // 1..7
        t.row.timeline.push_back(kLevels[std::min<std::size_t>(level, 7)]);
      }
    }
    rows.push_back(std::move(t.row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const PageContention& a, const PageContention& b) {
              const std::uint64_t wa =
                  a.faults + a.invalidation_rounds + a.ownership_moves;
              const std::uint64_t wb =
                  b.faults + b.invalidation_rounds + b.ownership_moves;
              if (wa != wb) return wa > wb;
              return a.page < b.page;
            });
  if (rows.size() > top_n) rows.resize(top_n);
  return rows;
}

ChainLengths chain_lengths(const LoadedTrace& trace) {
  ChainLengths result;
  const auto index = index_pages(trace);
  for (const Event& e : trace.events) {
    if (e.kind != EventKind::kReadFault && e.kind != EventKind::kWriteFault) {
      continue;
    }
    std::uint64_t hops = 0;
    const auto it = index.find(static_cast<PageId>(e.arg0));
    if (it != index.end()) {
      for (const Event* f : it->second.forward) {
        if (f->ts >= e.ts && f->ts <= e.ts + e.dur && f->arg1 == e.node) {
          ++hops;
        }
      }
    }
    ++result.faults;
    result.total += hops;
    result.max = std::max(result.max, hops);
    ++result.hops[std::min<std::uint64_t>(hops,
                                          ChainLengths::kBuckets - 1)];
  }
  return result;
}

CausalityReport causality_audit(const LoadedTrace& trace,
                                bool window_complete) {
  CausalityReport report;
  report.window_complete = window_complete;
  struct RpcState {
    bool requested = false;
    bool broadcast = false;
    bool cancelled = false;
    NodeId client = kNoNode;
    std::uint64_t replies = 0;
  };
  std::unordered_map<std::uint64_t, RpcState> rpcs;
  for (const Event& e : trace.events) {
    switch (e.kind) {
      case EventKind::kRpcRequest: {
        RpcState& s = rpcs[e.arg0];
        s.requested = true;
        s.client = e.node;
        s.broadcast = e.arg1 == kMaxNodes;
        if (s.broadcast) {
          ++report.broadcasts;
        } else {
          ++report.requests;
        }
        break;
      }
      case EventKind::kRpcReplySent:
        ++report.replies;
        ++rpcs[e.arg0].replies;
        break;
      case EventKind::kRpcOrphan:
        ++report.orphan_events;
        break;
      case EventKind::kRpcCancel:
        ++report.cancelled;
        rpcs[e.arg0].cancelled = true;
        break;
      case EventKind::kRpcFailed:
        // Terminal failure resolves the request: it is answered by the
        // failure path, not dangling.
        ++report.failed;
        rpcs[e.arg0].cancelled = true;
        break;
      default:
        break;
    }
  }
  constexpr std::size_t kMaxFlags = 12;
  const auto flag = [&](std::string line) {
    if (report.flagged.size() < kMaxFlags) {
      report.flagged.push_back(std::move(line));
    }
  };
  // Deterministic order for the flag list.
  std::vector<std::pair<std::uint64_t, const RpcState*>> ordered;
  ordered.reserve(rpcs.size());
  for (const auto& [id, s] : rpcs) ordered.emplace_back(id, &s);
  std::sort(ordered.begin(), ordered.end());
  for (const auto& [id, s] : ordered) {
    if (s->requested && s->replies == 0 && !s->broadcast && !s->cancelled) {
      ++report.unanswered;
      std::ostringstream line;
      line << "rpc " << id << " from node " << s->client
           << " has no reply in the window"
           << (window_complete ? "" : " (may be window-cut)");
      flag(line.str());
    }
    if (s->requested && !s->broadcast && s->replies > 1) {
      // Duplicate replies are legal (done-cache resend after a client
      // retransmission) but worth surfacing.
      report.duplicate_replies += s->replies - 1;
    }
    if (!s->requested && s->replies > 0) {
      report.unmatched_replies += s->replies;
      if (window_complete) {
        std::ostringstream line;
        line << "reply to rpc " << id
             << " matches no recorded request";
        flag(line.str());
      }
    }
  }
  return report;
}

std::vector<CrossCheckRow> cross_check(const LoadedTrace& trace,
                                       const MetricsSummary& metrics) {
  std::array<std::uint64_t, kEventKindCount> counts{};
  std::uint64_t inval_copies = 0;
  for (const Event& e : trace.events) {
    ++counts[static_cast<std::size_t>(e.kind)];
    if (e.kind == EventKind::kInvalidateSent) inval_copies += e.arg1;
  }
  const auto count = [&](EventKind k) {
    return counts[static_cast<std::size_t>(k)];
  };
  const auto counter = [&](const char* name) -> std::uint64_t {
    const auto it = metrics.counters.find(name);
    return it == metrics.counters.end() ? 0 : it->second;
  };
  const bool complete = metrics.trace_dropped == 0;
  const bool no_paging =
      counter("disk_reads") == 0 && counter("disk_writes") == 0;
  const bool no_migrations = counter("migrations") == 0;
  const bool no_broadcasts = counter("broadcasts") == 0;

  std::vector<CrossCheckRow> rows;
  const auto add = [&](const char* name, std::uint64_t from_trace,
                       bool condition, std::string note) {
    CrossCheckRow row;
    row.counter = name;
    row.from_metrics = counter(name);
    row.from_trace = from_trace;
    row.checked = complete && condition;
    row.ok = !row.checked || row.from_metrics == row.from_trace;
    if (!complete) {
      row.note = "trace window incomplete";
    } else if (!condition) {
      row.note = std::move(note);
    }
    rows.push_back(std::move(row));
  };
  add("read_faults", count(EventKind::kReadFault), no_paging,
      "disk-restore faults leave no fault span");
  add("write_faults", count(EventKind::kWriteFault), no_paging,
      "disk-restore faults leave no fault span");
  add("page_transfers", count(EventKind::kPageSent), true, "");
  add("invalidations_sent", inval_copies, no_broadcasts,
      "broadcast rounds count once regardless of copies");
  add("forwards", count(EventKind::kForward), no_migrations,
      "process-message forwards share the counter");
  add("retransmissions", count(EventKind::kRetransmit), true, "");
  add("evictions", count(EventKind::kEviction), true, "");
  add("migrations", count(EventKind::kMigrateOut), true, "");
  add("faults_injected", count(EventKind::kFaultInjected), true, "");
  add("checksum_drops", count(EventKind::kMsgCorrupted), true, "");
  add("rpc_backoffs", count(EventKind::kRpcBackoff), true, "");
  add("rpc_failures", count(EventKind::kRpcFailed), true, "");
  return rows;
}

FaultReport fault_report(const LoadedTrace& trace) {
  FaultReport report;
  std::vector<Time> injections;  // timestamps of perturbed deliveries
  for (const Event& e : trace.events) {
    switch (e.kind) {
      case EventKind::kFaultInjected:
        ++report.injected_total;
        if (e.arg1 < report.injected_by_type.size()) {
          ++report.injected_by_type[e.arg1];
        }
        injections.push_back(e.ts);
        break;
      case EventKind::kMsgCorrupted:
        ++report.corrupted_frames;
        injections.push_back(e.ts);
        break;
      case EventKind::kRpcBackoff:
        ++report.backoffs;
        break;
      case EventKind::kRpcFailed:
        ++report.failures;
        break;
      default:
        break;
    }
  }
  std::sort(injections.begin(), injections.end());
  Time sum_overlapping = 0;
  Time sum_clean = 0;
  for (const Event& e : trace.events) {
    if ((e.kind != EventKind::kReadFault &&
         e.kind != EventKind::kWriteFault) ||
        e.dur == 0) {
      continue;
    }
    // An injection inside the span means this fault plausibly paid for
    // it (a dropped/delayed leg of its own protocol exchange, or queueing
    // behind someone else's retransmissions).
    const auto lo = std::lower_bound(injections.begin(), injections.end(),
                                     e.ts);
    const bool hit = lo != injections.end() && *lo <= e.ts + e.dur;
    if (hit) {
      ++report.overlapping_faults;
      sum_overlapping += e.dur;
    } else {
      ++report.clean_faults;
      sum_clean += e.dur;
    }
  }
  if (report.overlapping_faults > 0) {
    report.mean_overlapping =
        sum_overlapping / static_cast<Time>(report.overlapping_faults);
  }
  if (report.clean_faults > 0) {
    report.mean_clean = sum_clean / static_cast<Time>(report.clean_faults);
  }
  return report;
}

std::string render_report(const LoadedTrace& trace,
                          const MetricsSummary* metrics, std::size_t top_n) {
  std::ostringstream out;
  out << "=== ivy-analyze";
  if (!trace.machine.empty()) out << ": " << trace.machine;
  out << " ===\n";
  out << "events: " << trace.events.size() << " loaded";
  if (trace.unknown_names > 0) {
    out << " (" << trace.unknown_names << " with unknown kinds skipped)";
  }
  bool window_complete = true;
  if (metrics != nullptr && metrics->has_trace_block) {
    out << "; tracer recorded " << metrics->trace_recorded << ", dropped "
        << metrics->trace_dropped;
    window_complete = metrics->trace_dropped == 0;
  }
  if (!trace.events.empty()) {
    out << "; span "
        << format_us(trace.events.back().ts - trace.events.front().ts);
  }
  out << "\n";

  const CriticalPathReport cp = critical_path(trace, 5);
  out << "\n-- fault critical path --\n";
  const auto legs = [&](const char* label, const LegTotals& t,
                        bool with_inval) {
    out << label << ": count=" << t.count;
    if (t.count == 0) {
      out << "\n";
      return;
    }
    const auto mean = [&](Time sum) { return format_us(sum / static_cast<Time>(t.count)); };
    out << "  mean=" << mean(t.total) << "  locate=" << mean(t.locate)
        << "  transfer=" << mean(t.transfer);
    if (with_inval) out << "  invalidate=" << mean(t.invalidate);
    out << "  resume=" << mean(t.resume) << "\n";
  };
  legs("reads ", cp.reads, false);
  legs("writes", cp.writes, true);
  if (cp.local_faults > 0) {
    out << "local (no remote serve in window): " << cp.local_faults << "\n";
  }
  if (!cp.slowest.empty()) {
    out << "slowest faults:\n";
    for (const FaultPath& p : cp.slowest) {
      out << "  " << (p.write ? "write" : "read ") << " page " << p.page
          << " @node " << p.node << " t=" << format_us(p.start)
          << " total=" << format_us(p.total)
          << " (locate=" << format_us(p.locate)
          << " transfer=" << format_us(p.transfer)
          << " invalidate=" << format_us(p.invalidate)
          << " resume=" << format_us(p.resume) << ") hops=" << p.hops
          << (p.local ? " [local]" : "") << "\n";
    }
  }

  const std::vector<PageContention> hot = contention(trace, top_n);
  out << "\n-- page contention (top " << hot.size() << ") --\n";
  if (!hot.empty()) {
    out << "page      faults  invals   moves  nodes  pingpong  timeline\n";
    for (const PageContention& p : hot) {
      char line[128];
      std::snprintf(line, sizeof(line), "%-8u %7llu %7llu %7llu %6u %9llu  ",
                    p.page, static_cast<unsigned long long>(p.faults),
                    static_cast<unsigned long long>(p.invalidation_rounds),
                    static_cast<unsigned long long>(p.ownership_moves),
                    p.nodes, static_cast<unsigned long long>(p.ping_pong));
      out << line << "|" << p.timeline << "|\n";
    }
  }

  const ChainLengths chains = chain_lengths(trace);
  out << "\n-- forwarding chain lengths (hops per fault) --\n";
  if (chains.faults == 0) {
    out << "no faults in window\n";
  } else {
    out << "faults=" << chains.faults;
    char mean[32];
    std::snprintf(mean, sizeof(mean), "%.2f", chains.mean());
    out << "  mean=" << mean << "  max=" << chains.max << "\n";
    out << "hops:";
    for (std::size_t i = 0; i < ChainLengths::kBuckets; ++i) {
      if (chains.hops[i] == 0) continue;
      out << "  " << i << (i == ChainLengths::kBuckets - 1 ? "+" : "")
          << ":" << chains.hops[i];
    }
    out << "\n";
  }

  const FaultReport faults = fault_report(trace);
  if (faults.any()) {
    out << "\n-- fault injection --\n";
    static const char* kTypeNames[] = {"drop", "dup", "delay", "corrupt",
                                       "partition"};
    out << "injected=" << faults.injected_total;
    for (std::size_t i = 0; i < faults.injected_by_type.size(); ++i) {
      if (faults.injected_by_type[i] == 0) continue;
      out << "  " << kTypeNames[i] << "=" << faults.injected_by_type[i];
    }
    out << "\n";
    out << "checksum_drops=" << faults.corrupted_frames
        << "  rpc_backoffs=" << faults.backoffs
        << "  rpc_failures=" << faults.failures << "\n";
    out << "fault spans overlapping an injection: "
        << faults.overlapping_faults << " (mean "
        << format_us(faults.mean_overlapping) << ") vs " << faults.clean_faults
        << " clean (mean " << format_us(faults.mean_clean) << ")\n";
  }

  const CausalityReport causality = causality_audit(trace, window_complete);
  out << "\n-- rpc causality --\n";
  out << "requests=" << causality.requests
      << "  broadcasts=" << causality.broadcasts
      << "  replies=" << causality.replies
      << "  duplicate_replies=" << causality.duplicate_replies
      << "  cancelled=" << causality.cancelled
      << "  failed=" << causality.failed
      << "  unanswered=" << causality.unanswered
      << "  unmatched=" << causality.unmatched_replies
      << "  orphans_observed=" << causality.orphan_events << "\n";
  for (const std::string& line : causality.flagged) {
    out << "  ! " << line << "\n";
  }

  if (metrics != nullptr) {
    out << "\n-- trace vs counters --\n";
    out << "counter                metrics      trace  status\n";
    for (const CrossCheckRow& row : cross_check(trace, *metrics)) {
      char line[160];
      std::snprintf(line, sizeof(line), "%-20s %10llu %10llu  %s%s%s",
                    row.counter.c_str(),
                    static_cast<unsigned long long>(row.from_metrics),
                    static_cast<unsigned long long>(row.from_trace),
                    row.checked ? (row.ok ? "OK" : "MISMATCH")
                                : "not checked",
                    row.note.empty() ? "" : ": ", row.note.c_str());
      out << line << "\n";
    }
  }
  return out.str();
}

// --- perf-baseline bench files ----------------------------------------

Time BenchPoint::category_total(const std::string& cat) const {
  Time total = 0;
  for (const auto& node : per_node) {
    const auto it = node.find(cat);
    if (it != node.end()) total += it->second;
  }
  return total;
}

const BenchPoint* BenchFile::find(const std::string& workload,
                                  const std::string& manager,
                                  std::uint32_t nodes) const {
  for (const BenchPoint& p : points) {
    if (p.workload == workload && p.manager == manager && p.nodes == nodes) {
      return &p;
    }
  }
  return nullptr;
}

bool load_bench_json(const std::string& path, BenchFile* out,
                     std::string* error) {
  Json root;
  if (!parse_file(path, &root, error)) return false;
  if (root.type != Json::kObj) {
    *error = "bench file is not a JSON object";
    return false;
  }
  *out = BenchFile{};
  if (const Json* v = root.find("name")) out->name = v->str;
  if (const Json* v = root.find("reduced")) out->reduced = v->boolean;
  const Json* points = root.find("points");
  if (points == nullptr || points->type != Json::kArr) {
    *error = "bench file has no \"points\" array";
    return false;
  }
  for (const Json& jp : points->arr) {
    BenchPoint p;
    if (const Json* v = jp.find("workload")) p.workload = v->str;
    if (const Json* v = jp.find("manager")) p.manager = v->str;
    if (const Json* v = jp.find("nodes")) {
      p.nodes = static_cast<std::uint32_t>(v->as_u64());
    }
    if (const Json* v = jp.find("elapsed_ns")) {
      p.elapsed = static_cast<Time>(v->as_u64());
    }
    if (const Json* v = jp.find("accounted_ns")) {
      p.accounted = static_cast<Time>(v->as_u64());
    }
    if (const Json* v = jp.find("verified")) p.verified = v->boolean;
    if (const Json* v = jp.find("hops_read")) p.hops_read = v->as_u64();
    if (const Json* v = jp.find("hops_write")) p.hops_write = v->as_u64();
    if (const Json* c = jp.find("counters"); c != nullptr &&
        c->type == Json::kObj) {
      for (const auto& [k, v] : c->obj) p.counters[k] = v.as_u64();
    }
    if (const Json* pn = jp.find("per_node"); pn != nullptr &&
        pn->type == Json::kArr) {
      for (const Json& jn : pn->arr) {
        std::map<std::string, Time> cats;
        for (const auto& [k, v] : jn.obj) {
          cats[k] = static_cast<Time>(v.as_u64());
        }
        p.per_node.push_back(std::move(cats));
      }
    }
    if (p.workload.empty() || p.manager.empty() || p.nodes == 0) {
      *error = "bench point missing workload/manager/nodes";
      return false;
    }
    out->points.push_back(std::move(p));
  }
  return true;
}

namespace {

std::string point_key(const BenchPoint& p) {
  return p.workload + "/" + p.manager + "/N=" + std::to_string(p.nodes);
}

std::uint64_t counter_of(const BenchPoint& p, const std::string& name) {
  const auto it = p.counters.find(name);
  return it == p.counters.end() ? 0 : it->second;
}

}  // namespace

std::vector<std::string> bench_audit(const BenchFile& bench) {
  std::vector<std::string> findings;
  const auto flag = [&](const BenchPoint& p, const std::string& what) {
    findings.push_back(point_key(p) + ": " + what);
  };
  // Wait-category -> counters that must be nonzero if any node spent
  // time there.  A profiler category with no backing counter means the
  // two observability paths disagree about what happened.
  struct Implication {
    const char* cat;
    std::vector<const char*> counters;  // at least one must be nonzero
  };
  static const std::vector<Implication> kImplications = {
      {"read_fault_locate", {"read_faults"}},
      {"read_fault_transfer", {"read_faults"}},
      {"read_fault_invalidate", {"read_faults"}},
      {"write_fault_locate", {"write_faults"}},
      {"write_fault_transfer", {"write_faults"}},
      {"write_fault_invalidate", {"write_faults"}},
      {"lock_wait", {"lock_acquisitions"}},
      {"lock_spin", {"lock_acquisitions"}},
      {"sync_wait", {"ec_waits"}},
      {"backoff", {"rpc_backoffs"}},
      {"migration", {"migrations", "migration_rejects"}},
      {"disk", {"disk_reads", "disk_writes"}},
  };
  for (const BenchPoint& p : bench.points) {
    if (!p.verified) flag(p, "workload did not verify");
    if (p.per_node.size() != p.nodes) {
      flag(p, "per_node has " + std::to_string(p.per_node.size()) +
                  " entries for " + std::to_string(p.nodes) + " nodes");
      continue;
    }
    if (p.accounted < p.elapsed) {
      flag(p, "accounted_ns " + std::to_string(p.accounted) +
                  " < elapsed_ns " + std::to_string(p.elapsed));
    }
    // The tentpole invariant: every node's categories sum to the
    // accounted virtual time exactly — no cycle unattributed, none
    // double-counted.
    for (std::size_t n = 0; n < p.per_node.size(); ++n) {
      Time sum = 0;
      for (const auto& [cat, ns] : p.per_node[n]) sum += ns;
      if (sum != p.accounted) {
        flag(p, "node " + std::to_string(n) + " categories sum to " +
                    std::to_string(sum) + " ns, accounted is " +
                    std::to_string(p.accounted) + " ns");
      }
    }
    for (const Implication& imp : kImplications) {
      if (p.category_total(imp.cat) == 0) continue;
      bool backed = false;
      for (const char* c : imp.counters) {
        if (counter_of(p, c) > 0) backed = true;
      }
      if (!backed) {
        std::string need;
        for (const char* c : imp.counters) {
          if (!need.empty()) need += "+";
          need += c;
        }
        flag(p, std::string(imp.cat) + " time recorded but " + need +
                    " == 0");
      }
    }
    if (p.hops_read + p.hops_write > 0 && counter_of(p, "forwards") == 0 &&
        counter_of(p, "broadcasts") == 0) {
      flag(p, "fault hops recorded but forwards == broadcasts == 0");
    }
    // Bodyless grants are decided per write fault served (or per
    // migration detach); more elisions than opportunities means the
    // counter is bumped on a resend path it must not be.
    const std::uint64_t bodyless = counter_of(p, "bodyless_upgrades");
    const std::uint64_t upgrades_possible =
        counter_of(p, "write_faults") + counter_of(p, "migrations");
    if (bodyless > upgrades_possible) {
      flag(p, "bodyless_upgrades " + std::to_string(bodyless) +
                  " exceeds write_faults+migrations " +
                  std::to_string(upgrades_possible));
    }
    // Every multicast invalidation round puts exactly one multicast (or,
    // under --broadcast-invalidation, broadcast) frame on the ring.
    if (counter_of(p, "invalidate_multicasts") >
        counter_of(p, "multicasts") + counter_of(p, "broadcasts")) {
      flag(p, "invalidate_multicasts recorded but too few "
              "multicast/broadcast frames on the wire");
    }
  }
  return findings;
}

std::string render_waterfall(const BenchFile& bench) {
  std::ostringstream out;
  // Group the sweep by (workload, manager), ascending node count.
  std::map<std::pair<std::string, std::string>, std::vector<const BenchPoint*>>
      groups;
  for (const BenchPoint& p : bench.points) {
    groups[{p.workload, p.manager}].push_back(&p);
  }
  for (auto& [key, pts] : groups) {
    std::sort(pts.begin(), pts.end(),
              [](const BenchPoint* a, const BenchPoint* b) {
                return a->nodes < b->nodes;
              });
    out << "\n-- speedup-loss waterfall: " << key.first << " / " << key.second
        << " --\n";
    const BenchPoint* base = pts.front()->nodes == 1 ? pts.front() : nullptr;
    if (base == nullptr) {
      out << "  (no single-node point; cannot decompose loss)\n";
      continue;
    }
    for (const BenchPoint* p : pts) {
      out << "  N=" << p->nodes << "  T=" << format_us(p->elapsed);
      if (p->nodes == 1) {
        out << "  (baseline)\n";
        continue;
      }
      const double speedup = p->elapsed == 0
                                 ? 0.0
                                 : static_cast<double>(base->elapsed) /
                                       static_cast<double>(p->elapsed);
      char buf[64];
      std::snprintf(buf, sizeof(buf), "  speedup %.2f of %u", speedup,
                    p->nodes);
      out << buf << "\n";
      // Exact decomposition over accounted vtime:
      //   N*T_N - T_1 == sum_cats(N nodes) - sum_cats(1 node)
      // because each point's categories sum to accounted per node.
      const Time loss = static_cast<Time>(p->nodes) * p->accounted -
                        base->accounted;
      out << "     loss N*T-T1 = " << format_us(loss)
          << ", by category (delta vs baseline):\n";
      std::set<std::string> cats;
      for (const auto& node : p->per_node) {
        for (const auto& [c, ns] : node) cats.insert(c);
      }
      for (const auto& node : base->per_node) {
        for (const auto& [c, ns] : node) cats.insert(c);
      }
      std::vector<std::pair<std::string, Time>> deltas;
      Time reconciled = 0;
      for (const std::string& c : cats) {
        const Time d = p->category_total(c) - base->category_total(c);
        reconciled += d;
        if (d != 0) {
          deltas.emplace_back(c == "compute" ? "extra_compute" : c, d);
        }
      }
      std::sort(deltas.begin(), deltas.end(),
                [](const auto& a, const auto& b) {
                  return a.second > b.second;
                });
      for (const auto& [c, d] : deltas) {
        const double pct = loss == 0 ? 0.0
                                     : 100.0 * static_cast<double>(d) /
                                           static_cast<double>(loss);
        char row[128];
        std::snprintf(row, sizeof(row), "       %-22s %12s  %5.1f%%",
                      c.c_str(), format_us(d).c_str(), pct);
        out << row << "\n";
      }
      if (reconciled != loss) {
        out << "       ! category deltas sum to " << format_us(reconciled)
            << ", not " << format_us(loss) << " (attribution leak)\n";
      }
    }
  }
  return out.str();
}

std::vector<CompareRow> compare_bench(const BenchFile& older,
                                      const BenchFile& newer,
                                      double tolerance) {
  std::vector<CompareRow> rows;
  for (const BenchPoint& was : older.points) {
    CompareRow row;
    row.key = point_key(was);
    row.old_elapsed = was.elapsed;
    const BenchPoint* now = newer.find(was.workload, was.manager, was.nodes);
    if (now == nullptr) {
      row.missing = true;
      rows.push_back(std::move(row));
      continue;
    }
    row.new_elapsed = now->elapsed;
    row.old_wft = was.category_total("write_fault_transfer");
    row.new_wft = now->category_total("write_fault_transfer");
    row.new_bodyless = counter_of(*now, "bodyless_upgrades");
    row.ratio = was.elapsed == 0 ? 0.0
                                 : static_cast<double>(now->elapsed) /
                                       static_cast<double>(was.elapsed);
    row.within = was.elapsed != 0 &&
                 std::abs(row.ratio - 1.0) <= tolerance;
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string render_compare(const std::vector<CompareRow>& rows,
                           double tolerance) {
  std::ostringstream out;
  char hdr[160];
  std::snprintf(hdr, sizeof(hdr), "%-28s %12s %12s %8s %11s %11s  %s\n",
                "point", "old", "new", "ratio", "wft_old", "wft_new",
                "status");
  out << hdr;
  std::size_t regressions = 0;
  Time wft_old_total = 0;
  Time wft_new_total = 0;
  std::uint64_t bodyless_total = 0;
  for (const CompareRow& row : rows) {
    char line[224];
    if (row.missing) {
      std::snprintf(line, sizeof(line),
                    "%-28s %12s %12s %8s %11s %11s  MISSING\n",
                    row.key.c_str(), format_us(row.old_elapsed).c_str(), "-",
                    "-", "-", "-");
      ++regressions;
    } else {
      std::snprintf(line, sizeof(line),
                    "%-28s %12s %12s %8.3f %11s %11s  %s\n", row.key.c_str(),
                    format_us(row.old_elapsed).c_str(),
                    format_us(row.new_elapsed).c_str(), row.ratio,
                    format_us(row.old_wft).c_str(),
                    format_us(row.new_wft).c_str(),
                    row.within ? "ok" : "REGRESSION");
      if (!row.within) ++regressions;
      wft_old_total += row.old_wft;
      wft_new_total += row.new_wft;
      bodyless_total += row.new_bodyless;
    }
    out << line;
  }
  char tail[96];
  std::snprintf(tail, sizeof(tail),
                "%zu point(s) outside tolerance %.0f%% (of %zu)\n",
                regressions, tolerance * 100.0, rows.size());
  out << tail;
  // The transfer-volume headline: how much write-fault transfer time the
  // new file spends vs the baseline, and how many grants went bodyless.
  if (wft_old_total > 0) {
    const double pct = 100.0 *
                       (static_cast<double>(wft_new_total) -
                        static_cast<double>(wft_old_total)) /
                       static_cast<double>(wft_old_total);
    char wft[160];
    std::snprintf(wft, sizeof(wft),
                  "write_fault_transfer total: %s -> %s (%+.1f%%), "
                  "bodyless_upgrades: %llu\n",
                  format_us(wft_old_total).c_str(),
                  format_us(wft_new_total).c_str(), pct,
                  static_cast<unsigned long long>(bodyless_total));
    out << wft;
  }
  return out.str();
}

}  // namespace ivy::trace
