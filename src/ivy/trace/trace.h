// ivy::trace — low-overhead structured event tracing.
//
// The paper's whole evaluation is counts and times; aggregate counters
// (base/stats.h) answer "how many", this module answers "when" and
// "which": every protocol-relevant moment (fault resolved, copy
// invalidated, ownership moved, page evicted, process migrated, message
// on the ring) is a fixed-size record in a per-machine ring buffer with
// a virtual timestamp.  Exporters turn the buffer into a Chrome
// trace_event JSON (nodes as processes, categories as threads — loadable
// in Perfetto / chrome://tracing) and into the hot-page report.
//
// Cost discipline: tracing is off by default.  Modules record through
// the IVY_EVT macro, which is a single pointer null-check when disabled
// (Stats::tracer() is nullptr) and compiles to nothing entirely when
// IVY_TRACE_COMPILED_OUT is defined.  A disabled tracer allocates no
// buffer.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "ivy/base/check.h"
#include "ivy/base/types.h"

namespace ivy::trace {

/// Broad lane an event renders under (one "thread" per category in the
/// Chrome trace).  Index-aligned with category_names().
enum class Category : std::uint8_t {
  kFault = 0,   ///< page-fault resolution spans
  kCoherence,   ///< invalidations, ownership movement, page bodies
  kNet,         ///< ring frames, rpc round trips, retransmissions
  kDisk,        ///< page-in/out, evictions
  kSched,       ///< spawn/finish/migration
  kSync,        ///< lock and eventcount activity
  kCount        // sentinel
};

/// Fixed roster of event kinds.  Extend freely; kind_names() and
/// category_of() must match.
enum class EventKind : std::uint8_t {
  // faults (arg0 = page, arg1 = requester/level detail)
  kReadFault = 0,    ///< span: read-fault start -> resolution
  kWriteFault,       ///< span: write-fault start -> resolution
  kDiskFault,        ///< span: owner's paged-out image restored from disk
  // coherence (arg0 = page)
  kInvalidateSent,   ///< span: invalidation round start -> all acks
  kInvalidateRecv,   ///< instant: local copy dropped (arg1 = new owner)
  kOwnershipGained,  ///< instant: this node became owner (arg1 = from)
  kOwnershipLost,    ///< span: two-phase transfer hold (arg1 = to)
  kPageSent,         ///< instant: page body shipped (arg1 = to)
  kForward,          ///< instant: fault request routed onward (arg1 = origin)
  // net (arg0 = net::MsgKind, arg1 = dst, kBroadcast for broadcast)
  kMsgSend,          ///< span: frame occupies the ring medium
  kRetransmit,       ///< instant: client re-sent an unanswered request
  kRemoteOp,         ///< span: rpc request -> (last) reply at the client
  // fault plane (chaos injection and its receiver-side consequences)
  kFaultInjected,    ///< instant: the fault plane perturbed a delivery
                     ///  (arg0 = net::MsgKind, arg1 = fault::FaultType)
  kMsgCorrupted,     ///< instant: receiver discarded a bad-checksum frame
                     ///  (arg0 = net::MsgKind, arg1 = src)
  kRpcBackoff,       ///< instant: retransmission delayed exponentially
                     ///  (arg0 = rpc id, arg1 = attempt number)
  kRpcFailed,        ///< instant: request failed terminally at the cap
                     ///  (arg0 = rpc id, arg1 = dst)
  // rpc causality (arg0 = rpc id)
  kRpcRequest,       ///< instant: client issued a request (arg1 = dst)
  kRpcReplySent,     ///< instant: server sent a reply (arg1 = requester)
  kRpcOrphan,        ///< instant: reply matched no outstanding request
                     ///  (arg1 = replying server)
  kRpcCancel,        ///< instant: client abandoned an outstanding request
                     ///  (a bounced fault retried another way)
  // disk / frames (arg0 = page)
  kDiskRead,         ///< span: page-in
  kDiskWrite,        ///< span: page-out
  kEviction,         ///< instant: frame reclaimed by replacement
  // scheduling (arg0 = pcb index)
  kProcSpawn,        ///< instant: lightweight process created
  kProcFinish,       ///< instant: process completed
  kMigrateOut,       ///< instant: process handed to arg1
  kMigrateIn,        ///< span: migrate-ask -> process installed (arg1 = donor)
  // sync (arg0 = page of the primitive)
  kLockWait,         ///< span: contended lock() -> acquisition
  kEcWait,           ///< span: blocked Wait() -> wakeup past target
  kEcAdvance,        ///< instant: Advance (arg1 = new value)
  kCount             // sentinel
};

inline constexpr std::size_t kEventKindCount =
    static_cast<std::size_t>(EventKind::kCount);
inline constexpr std::size_t kCategoryCount =
    static_cast<std::size_t>(Category::kCount);

[[nodiscard]] const char* to_string(EventKind kind);
[[nodiscard]] const char* to_string(Category cat);
[[nodiscard]] Category category_of(EventKind kind);
/// Chrome-trace args key for each argument slot ("" = omit).
[[nodiscard]] const char* arg0_name(EventKind kind);
[[nodiscard]] const char* arg1_name(EventKind kind);

/// One trace record.  `ts` is the *start* of the event in virtual
/// nanoseconds; `dur` is 0 for instants.
struct Event {
  Time ts = 0;
  Time dur = 0;
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
  NodeId node = kNoNode;
  EventKind kind = EventKind::kCount;
};

/// Per-machine bounded event buffer.  When full, the oldest records are
/// overwritten (`dropped()` counts them): a trace is a window ending at
/// the moment of export, which is what post-mortem debugging wants.
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Allocates the buffer and starts recording.  Idempotent-safe: calling
  /// with a new capacity discards previously recorded events.
  void enable(std::size_t capacity) {
    IVY_CHECK_GT(capacity, 0u);
    buf_.assign(capacity, Event{});
    recorded_ = 0;
    enabled_ = true;
  }
  void disable() {
    enabled_ = false;
    buf_.clear();
    buf_.shrink_to_fit();
    recorded_ = 0;
  }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Virtual-clock source (the runtime wires this to Simulator::now) so
  /// modules without a simulator reference can still stamp events.
  void set_clock(std::function<Time()> clock) { clock_ = std::move(clock); }

  /// Instant event stamped at the current virtual time.
  void record(NodeId node, EventKind kind, std::uint64_t arg0 = 0,
              std::uint64_t arg1 = 0) {
    record_span(node, kind, now(), 0, arg0, arg1);
  }

  /// Duration event: `start`..`start + dur` in virtual nanoseconds.
  void record_span(NodeId node, EventKind kind, Time start, Time dur,
                   std::uint64_t arg0 = 0, std::uint64_t arg1 = 0) {
    if (!enabled_) return;
    Event& e = buf_[recorded_ % buf_.size()];
    e.ts = start;
    e.dur = dur;
    e.arg0 = arg0;
    e.arg1 = arg1;
    e.node = node;
    e.kind = kind;
    ++recorded_;
  }

  [[nodiscard]] Time now() const { return clock_ ? clock_() : 0; }

  /// Events currently held (<= capacity).
  [[nodiscard]] std::size_t size() const noexcept {
    return recorded_ < buf_.size() ? static_cast<std::size_t>(recorded_)
                                   : buf_.size();
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }
  /// Total records ever written, including overwritten ones.
  [[nodiscard]] std::uint64_t recorded() const noexcept { return recorded_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return recorded_ < buf_.size() ? 0 : recorded_ - buf_.size();
  }

  /// Visits retained events oldest-first (recording order; ties in
  /// virtual time keep causal order because the buffer is append-only).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (buf_.empty()) return;
    const std::uint64_t first =
        recorded_ < buf_.size() ? 0 : recorded_ - buf_.size();
    for (std::uint64_t i = first; i < recorded_; ++i) {
      fn(buf_[i % buf_.size()]);
    }
  }

 private:
  std::vector<Event> buf_;
  std::uint64_t recorded_ = 0;
  bool enabled_ = false;
  std::function<Time()> clock_;
};

}  // namespace ivy::trace

/// Event-recording entry point for instrumented modules: expands to a
/// single branch on Stats::tracer() (nullptr unless tracing is enabled)
/// and to nothing at all under IVY_TRACE_COMPILED_OUT.
///
///   IVY_EVT(stats_, record(self_, trace::EventKind::kEviction, page));
#ifdef IVY_TRACE_COMPILED_OUT
#define IVY_EVT(stats, call) \
  do {                       \
  } while (0)
#else
#define IVY_EVT(stats, call)                                     \
  do {                                                           \
    if (::ivy::trace::Tracer* ivy_evt_t = (stats).tracer()) {    \
      ivy_evt_t->call;                                           \
    }                                                            \
  } while (0)
#endif
