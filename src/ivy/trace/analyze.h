// ivy::trace — post-mortem analysis of exported artifacts.
//
// The exporters (chrome_trace.h, metrics.h) turn a run into JSON; this
// module reads those files back and answers the questions a protocol
// engineer asks after the fact: where did each fault's time go, which
// pages ping-pong, how long do probOwner chains get, and does every rpc
// reply match a request.  It also cross-checks trace-derived counts
// against the live counters, so a disagreement between the two
// observability paths is itself a detected bug.
//
// Everything here is host-side tooling: no simulator, no virtual time,
// no third-party JSON dependency (the parser is self-contained in
// analyze.cc).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ivy/base/types.h"
#include "ivy/trace/trace.h"

namespace ivy::trace {

/// A Chrome trace_event file read back into Event records.
struct LoadedTrace {
  std::string machine;          ///< first process_name metadata value
  std::vector<Event> events;    ///< ascending ts (stable on ties)
  std::uint64_t unknown_names = 0;  ///< events whose name didn't map back
};

/// The headline numbers of a metrics JSON export.
struct MetricsSummary {
  std::string name;
  std::uint32_t nodes = 0;
  Time elapsed = 0;
  std::map<std::string, std::uint64_t> counters;  ///< counters_total
  bool has_trace_block = false;
  std::uint64_t trace_recorded = 0;
  std::uint64_t trace_retained = 0;
  std::uint64_t trace_dropped = 0;
};

/// Parse an exported trace / metrics file.  On failure returns false and
/// describes the problem in *error.
bool load_chrome_trace(const std::string& path, LoadedTrace* out,
                       std::string* error);
bool load_metrics_json(const std::string& path, MetricsSummary* out,
                       std::string* error);

// --- per-fault critical path ------------------------------------------

/// One fault span decomposed into protocol legs:
///   locate     fault start -> owner ships the page (or grants ownership)
///   transfer   page on the wire -> ownership installed (write faults)
///   invalidate invalidation round at the new owner (write faults)
///   resume     the rest (reply wire time, install, wakeup)
struct FaultPath {
  NodeId node = kNoNode;
  PageId page = 0;
  bool write = false;
  Time start = 0;
  Time total = 0;
  Time locate = 0;
  Time transfer = 0;
  Time invalidate = 0;
  Time resume = 0;
  std::uint64_t hops = 0;  ///< forwarding hops observed for this fault
  bool local = false;      ///< no remote serve event found in the window
};

struct LegTotals {
  std::uint64_t count = 0;
  Time locate = 0;
  Time transfer = 0;
  Time invalidate = 0;
  Time resume = 0;
  Time total = 0;
};

struct CriticalPathReport {
  LegTotals reads;
  LegTotals writes;
  std::uint64_t local_faults = 0;  ///< resolved without a serve event
  std::vector<FaultPath> slowest;  ///< top-N by total, descending
};

[[nodiscard]] CriticalPathReport critical_path(const LoadedTrace& trace,
                                               std::size_t top_n = 5);

// --- per-page contention ----------------------------------------------

struct PageContention {
  PageId page = 0;
  std::uint64_t faults = 0;
  std::uint64_t invalidation_rounds = 0;
  std::uint64_t ownership_moves = 0;
  /// A-B-A alternations in the sequence of ownership gains: the
  /// signature of write-write ping-pong (paper §4, the Figure-5 cliff).
  std::uint64_t ping_pong = 0;
  std::uint32_t nodes = 0;  ///< distinct faulting nodes
  std::string timeline;     ///< fault-density sparkline over the run
};

/// Pages ranked by activity (faults + invalidations + moves), top-N.
[[nodiscard]] std::vector<PageContention> contention(
    const LoadedTrace& trace, std::size_t top_n = 10);

// --- probOwner chain lengths ------------------------------------------

struct ChainLengths {
  static constexpr std::size_t kBuckets = 17;  ///< [16] = ">= 16"
  std::array<std::uint64_t, kBuckets> hops{};
  std::uint64_t faults = 0;
  std::uint64_t total = 0;
  std::uint64_t max = 0;
  [[nodiscard]] double mean() const {
    return faults == 0 ? 0.0
                       : static_cast<double>(total) /
                             static_cast<double>(faults);
  }
};

/// Forwarding hops per fault, from kForward events inside fault windows.
[[nodiscard]] ChainLengths chain_lengths(const LoadedTrace& trace);

// --- fault-injection attribution --------------------------------------

/// What the fault plane did to the run, and what it cost: injections by
/// type, receiver-side checksum discards, the rpc-level consequences
/// (backoffs, terminal failures), and how page-fault latency differs
/// between fault spans that overlap an injection and those that do not.
struct FaultReport {
  /// Indexed by fault::FaultType (drop, dup, delay, corrupt, partition).
  std::array<std::uint64_t, 5> injected_by_type{};
  std::uint64_t injected_total = 0;
  std::uint64_t corrupted_frames = 0;  ///< kMsgCorrupted (checksum drops)
  std::uint64_t backoffs = 0;
  std::uint64_t failures = 0;
  /// Page-fault spans whose window contains at least one injection.
  std::uint64_t overlapping_faults = 0;
  std::uint64_t clean_faults = 0;
  Time mean_overlapping = 0;  ///< mean latency of overlapping spans
  Time mean_clean = 0;        ///< mean latency of the rest

  [[nodiscard]] bool any() const { return injected_total > 0; }
};

[[nodiscard]] FaultReport fault_report(const LoadedTrace& trace);

// --- rpc causality audit ----------------------------------------------

struct CausalityReport {
  std::uint64_t requests = 0;           ///< unicast kRpcRequest events
  std::uint64_t broadcasts = 0;         ///< broadcast kRpcRequest events
  std::uint64_t replies = 0;            ///< kRpcReplySent events
  std::uint64_t duplicate_replies = 0;  ///< extra replies to a unicast id
  std::uint64_t cancelled = 0;          ///< requests the client abandoned
  std::uint64_t failed = 0;             ///< requests that failed terminally
  std::uint64_t unanswered = 0;  ///< unicast ids with no reply/cancel/failure
  std::uint64_t unmatched_replies = 0;  ///< replies to an unseen id
  std::uint64_t orphan_events = 0;      ///< kRpcOrphan observed at clients
  bool window_complete = true;  ///< ring buffer kept every event
  /// Human-readable anomalies, bounded; empty on a clean audit.  With an
  /// incomplete window, request/reply pairs can be cut apart, so
  /// findings are advisory rather than hard failures.
  std::vector<std::string> flagged;
};

[[nodiscard]] CausalityReport causality_audit(const LoadedTrace& trace,
                                              bool window_complete);

// --- trace vs counters cross-check ------------------------------------

struct CrossCheckRow {
  std::string counter;
  std::uint64_t from_metrics = 0;
  std::uint64_t from_trace = 0;
  bool checked = false;  ///< false: reported but not asserted (see note)
  bool ok = false;
  std::string note;
};

/// Recomputes counters from the trace and compares against the metrics
/// export.  Rows whose trace-side derivation is only exact under certain
/// run conditions (no paging, no migrations, no broadcasts) are checked
/// conditionally and say so in `note`.
[[nodiscard]] std::vector<CrossCheckRow> cross_check(
    const LoadedTrace& trace, const MetricsSummary& metrics);

/// The full ivy-analyze report as text.  `metrics` may be null (trace
/// only: no cross-check section).
[[nodiscard]] std::string render_report(const LoadedTrace& trace,
                                        const MetricsSummary* metrics,
                                        std::size_t top_n = 10);

// --- perf-baseline bench files (tools/ivy-bench) ----------------------

/// One sweep cell of an ivy-bench run: (workload, manager, nodes) with
/// its virtual times and the profiler's per-node cost attribution.
struct BenchPoint {
  std::string workload;
  std::string manager;
  std::uint32_t nodes = 0;
  Time elapsed = 0;    ///< workload-reported elapsed (speedup math)
  Time accounted = 0;  ///< profiler-attributed vtime (== Σ categories)
  bool verified = false;
  std::uint64_t hops_read = 0;   ///< forwarding hops on read faults
  std::uint64_t hops_write = 0;  ///< forwarding hops on write faults
  std::map<std::string, std::uint64_t> counters;
  /// One category-name -> nanoseconds map per node.
  std::vector<std::map<std::string, Time>> per_node;

  [[nodiscard]] Time category_total(const std::string& cat) const;
};

struct BenchFile {
  std::string name;
  bool reduced = false;
  std::vector<BenchPoint> points;

  [[nodiscard]] const BenchPoint* find(const std::string& workload,
                                       const std::string& manager,
                                       std::uint32_t nodes) const;
};

bool load_bench_json(const std::string& path, BenchFile* out,
                     std::string* error);

/// Audits a bench file's internal consistency: every node's category
/// sums equal the accounted time exactly, and each nonzero wait
/// category is backed by the matching live counter (fault legs imply
/// faults, lock_wait implies lock_acquisitions, backoff implies
/// rpc_backoffs, ...).  Empty result = clean.
[[nodiscard]] std::vector<std::string> bench_audit(const BenchFile& bench);

/// The speedup-loss waterfall: for each (workload, manager) sweep,
/// decomposes N*T_N - T_1 into per-category losses (the category deltas
/// sum to the loss exactly) and names the dominant loss.
[[nodiscard]] std::string render_waterfall(const BenchFile& bench);

/// One (workload, manager, nodes) regression-comparison row.  Besides
/// the elapsed-time gate, each row carries the write_fault_transfer
/// attribution of both points so a transfer-volume change (e.g. the
/// bodyless write-upgrade optimization) shows up in the comparison
/// rather than hiding inside the total.
struct CompareRow {
  std::string key;
  Time old_elapsed = 0;
  Time new_elapsed = 0;
  Time old_wft = 0;     ///< write_fault_transfer vtime in the baseline
  Time new_wft = 0;     ///< write_fault_transfer vtime in the new file
  std::uint64_t new_bodyless = 0;  ///< bodyless_upgrades counter (new file)
  double ratio = 0.0;   ///< new / old
  bool within = false;  ///< |ratio - 1| <= tolerance (and both present)
  bool missing = false; ///< in the baseline but absent from the new file
};

/// Pairs the two files' points by (workload, manager, nodes); points
/// only in `newer` are ignored (a grown sweep is not a regression).
[[nodiscard]] std::vector<CompareRow> compare_bench(const BenchFile& older,
                                                    const BenchFile& newer,
                                                    double tolerance);
[[nodiscard]] std::string render_compare(const std::vector<CompareRow>& rows,
                                         double tolerance);

}  // namespace ivy::trace
