// Hot-page report — the ping-pong detector.
//
// Aggregates the trace's per-page events into a top-N ranking by fault
// count: a page that many nodes repeatedly fault on and invalidate is
// bouncing ("ping-ponging") between writers, the classic false-sharing /
// contended-page pathology the paper's dot-product benchmark exhibits.
#pragma once

#include <string>
#include <vector>

#include "ivy/trace/trace.h"

namespace ivy::trace {

struct HotPage {
  PageId page = kNoPage;
  std::uint64_t faults = 0;          ///< read + write fault resolutions
  std::uint64_t invalidations = 0;   ///< copies dropped on this page
  std::uint64_t transfers = 0;       ///< ownership moves
  NodeSet faulting_nodes;            ///< distinct nodes that faulted on it
};

/// Top-`top_n` pages by fault count (ties: more invalidations first,
/// then lower page id), computed from the retained trace window.
[[nodiscard]] std::vector<HotPage> hot_pages(const Tracer& tracer,
                                             std::size_t top_n = 10);

/// Human-readable table of the same (empty string when no page events).
[[nodiscard]] std::string hot_page_report(const Tracer& tracer,
                                          std::size_t top_n = 10);

}  // namespace ivy::trace
