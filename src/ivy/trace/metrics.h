// Machine-readable metrics export: counters, epoch deltas and latency
// histograms as JSON (or CSV), plus the hot-page ranking when a trace is
// available.  This is the artifact the bench harnesses write next to
// their stdout tables so runs can be diffed and plotted.
#pragma once

#include <iosfwd>
#include <string>

#include "ivy/base/stats.h"
#include "ivy/trace/trace.h"

namespace ivy::trace {

struct MetricsInfo {
  std::string name = "ivy";  ///< configuration / run label
  Time elapsed = 0;          ///< virtual run time, 0 = unknown
};

/// Full metrics dump: per-node + total counters, per-epoch deltas,
/// aggregated latency histograms (non-empty ones, all of them with their
/// log2 bucket boundaries), and — when `tracer` is non-null and enabled —
/// trace meta plus the hot-page top list.
void write_metrics_json(std::ostream& out, const Stats& stats,
                        const Tracer* tracer = nullptr,
                        const MetricsInfo& info = {});

/// Flat CSV of the counters: one row per counter, one column per node
/// plus a total column.
void write_metrics_csv(std::ostream& out, const Stats& stats);

/// File convenience wrapper; writes CSV when `path` ends in ".csv", JSON
/// otherwise.  Returns false (and logs) on I/O failure.
bool write_metrics_file(const std::string& path, const Stats& stats,
                        const Tracer* tracer = nullptr,
                        const MetricsInfo& info = {});

}  // namespace ivy::trace
