#include "ivy/trace/metrics.h"

#include <fstream>
#include <ostream>

#include "ivy/base/log.h"
#include "ivy/trace/hot_pages.h"

namespace ivy::trace {
namespace {

void put_counters(std::ostream& out, const CounterBlock& blk,
                  const char* indent) {
  const auto& names = counter_names();
  out << "{";
  bool first = true;
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    if (!first) out << ",";
    first = false;
    out << "\n" << indent << "  \"" << names[i]
        << "\": " << blk.get(static_cast<Counter>(i));
  }
  out << "\n" << indent << "}";
}

void put_histogram(std::ostream& out, const Histogram& h,
                   const char* indent) {
  out << "{\n"
      << indent << "  \"count\": " << h.count() << ",\n"
      << indent << "  \"sum\": " << h.sum() << ",\n"
      << indent << "  \"min\": " << h.min() << ",\n"
      << indent << "  \"max\": " << h.max() << ",\n"
      << indent << "  \"mean\": " << static_cast<std::uint64_t>(h.mean())
      << ",\n"
      << indent << "  \"p50\": " << static_cast<std::uint64_t>(h.percentile(0.50))
      << ",\n"
      << indent << "  \"p90\": " << static_cast<std::uint64_t>(h.percentile(0.90))
      << ",\n"
      << indent << "  \"p99\": " << static_cast<std::uint64_t>(h.percentile(0.99))
      << ",\n"
      << indent << "  \"buckets\": [";
  bool first = true;
  for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
    if (h.bucket(b) == 0) continue;
    if (!first) out << ",";
    first = false;
    out << "\n" << indent << "    {\"lo\": " << Histogram::bucket_lo(b)
        << ", \"hi\": " << Histogram::bucket_hi(b)
        << ", \"count\": " << h.bucket(b) << "}";
  }
  out << (first ? "]" : ("\n" + std::string(indent) + "  ]")) << "\n"
      << indent << "}";
}

}  // namespace

void write_metrics_json(std::ostream& out, const Stats& stats,
                        const Tracer* tracer, const MetricsInfo& info) {
  out << "{\n"
      << "  \"name\": \"" << info.name << "\",\n"
      << "  \"nodes\": " << stats.nodes() << ",\n"
      << "  \"elapsed_ns\": " << info.elapsed << ",\n";

  out << "  \"counters_total\": ";
  put_counters(out, stats.aggregate(), "  ");
  out << ",\n  \"counters_per_node\": [";
  for (NodeId n = 0; n < stats.nodes(); ++n) {
    if (n != 0) out << ",";
    out << "\n    ";
    CounterBlock blk;
    for (std::size_t i = 0; i < kCounterCount; ++i) {
      blk.bump(static_cast<Counter>(i),
               stats.node_total(n, static_cast<Counter>(i)));
    }
    put_counters(out, blk, "    ");
  }
  out << "\n  ],\n";

  // Epoch deltas: only non-zero entries, to keep long runs readable.
  out << "  \"epochs\": [";
  const auto& names = counter_names();
  for (std::size_t e = 0; e < stats.epoch_count(); ++e) {
    if (e != 0) out << ",";
    out << "\n    {";
    const CounterBlock& blk = stats.epoch(e);
    bool first = true;
    for (std::size_t i = 0; i < kCounterCount; ++i) {
      const auto v = blk.get(static_cast<Counter>(i));
      if (v == 0) continue;
      if (!first) out << ", ";
      first = false;
      out << "\"" << names[i] << "\": " << v;
    }
    out << "}";
  }
  out << "\n  ],\n";

  out << "  \"histograms\": {";
  bool first_hist = true;
  for (std::size_t i = 0; i < kHistCount; ++i) {
    const Histogram h = stats.hist(static_cast<Hist>(i));
    if (!first_hist) out << ",";
    first_hist = false;
    out << "\n    \"" << hist_names()[i] << "\": ";
    put_histogram(out, h, "    ");
  }
  out << "\n  }";

  if (tracer != nullptr && tracer->enabled()) {
    out << ",\n  \"trace\": {\"recorded\": " << tracer->recorded()
        << ", \"retained\": " << tracer->size()
        << ", \"dropped\": " << tracer->dropped() << "},\n";
    out << "  \"hot_pages\": [";
    const auto ranked = hot_pages(*tracer, 10);
    for (std::size_t i = 0; i < ranked.size(); ++i) {
      if (i != 0) out << ",";
      const HotPage& h = ranked[i];
      out << "\n    {\"page\": " << h.page << ", \"faults\": " << h.faults
          << ", \"invalidations\": " << h.invalidations
          << ", \"ownership_moves\": " << h.transfers
          << ", \"nodes\": " << h.faulting_nodes.count() << "}";
    }
    out << "\n  ]";
  }
  out << "\n}\n";
}

void write_metrics_csv(std::ostream& out, const Stats& stats) {
  out << "counter,total";
  for (NodeId n = 0; n < stats.nodes(); ++n) out << ",node" << n;
  out << "\n";
  const auto& names = counter_names();
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    const auto c = static_cast<Counter>(i);
    out << names[i] << "," << stats.total(c);
    for (NodeId n = 0; n < stats.nodes(); ++n) {
      out << "," << stats.node_total(n, c);
    }
    out << "\n";
  }
}

bool write_metrics_file(const std::string& path, const Stats& stats,
                        const Tracer* tracer, const MetricsInfo& info) {
  std::ofstream out(path);
  if (!out) {
    IVY_WARN() << "cannot open metrics output file " << path;
    return false;
  }
  if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0) {
    write_metrics_csv(out, stats);
  } else {
    write_metrics_json(out, stats, tracer, info);
  }
  return static_cast<bool>(out);
}

}  // namespace ivy::trace
