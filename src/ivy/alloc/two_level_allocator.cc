#include "ivy/alloc/two_level_allocator.h"

#include <algorithm>

namespace ivy::alloc {

TwoLevelAllocator::TwoLevelAllocator(proc::Scheduler& sched,
                                     CentralAllocator& central,
                                     std::size_t chunk_bytes,
                                     sync::SvmLock lock)
    : sched_(sched), central_(central), chunk_bytes_(chunk_bytes),
      lock_(lock) {
  IVY_CHECK_GT(chunk_bytes, 0u);
  IVY_CHECK_EQ(chunk_bytes % sched.svm().geometry().page_size, 0u);
}

SvmAddr TwoLevelAllocator::try_local(std::size_t bytes) {
  for (LocalChunk& chunk : chunks_) {
    const SvmAddr addr = chunk.list->allocate(bytes);
    if (addr != kNullSvmAddr) return addr;
  }
  return kNullSvmAddr;
}

SvmAddr TwoLevelAllocator::allocate(std::size_t bytes) {
  sched_.stats().bump(sched_.node(), Counter::kAllocCalls);
  // Requests bigger than half a chunk would fragment the cache; pass
  // them straight to the central allocator.
  if (bytes > chunk_bytes_ / 2) {
    const SvmAddr addr = central_.allocate(bytes);
    if (addr != kNullSvmAddr) oversize_.push_back(addr);
    return addr;
  }
  sync::SvmLockGuard guard(lock_);
  SvmAddr addr = try_local(bytes);
  if (addr != kNullSvmAddr) return addr;
  // Refill: one remote round-trip amortized over many local allocations.
  const SvmAddr chunk_base = central_.allocate(chunk_bytes_);
  if (chunk_base == kNullSvmAddr) {
    // Central heap exhausted for a whole chunk; try the exact size.
    return central_.allocate(bytes);
  }
  chunks_.push_back(LocalChunk{
      chunk_base,
      std::make_unique<FirstFit>(chunk_base, chunk_bytes_,
                                 sched_.svm().geometry().page_size)});
  addr = chunks_.back().list->allocate(bytes);
  IVY_CHECK_NE(addr, kNullSvmAddr);
  return addr;
}

void TwoLevelAllocator::deallocate(SvmAddr addr) {
  sched_.stats().bump(sched_.node(), Counter::kFreeCalls);
  if (auto it = std::find(oversize_.begin(), oversize_.end(), addr);
      it != oversize_.end()) {
    oversize_.erase(it);
    central_.deallocate(addr);
    return;
  }
  sync::SvmLockGuard guard(lock_);
  for (LocalChunk& chunk : chunks_) {
    if (chunk.list->contains(addr)) {
      chunk.list->free(addr);
      return;
    }
  }
  IVY_UNREACHABLE("two-level free of memory not allocated on this node");
}

}  // namespace ivy::alloc
