// First-fit free-list over a range of SVM addresses.
//
// "IVY has a simple memory allocation module that uses a 'first fit'
// algorithm with one-level centralized control. ... To reduce the memory
// contention, the memory allocators allocate each piece of memory to the
// boundary of a page."
//
// This is the pure data structure; the centralized/two-level allocators
// wrap it with their distribution policy.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "ivy/base/types.h"

namespace ivy::alloc {

class FirstFit {
 public:
  /// Manages [base, base + size_bytes); both page-aligned.
  FirstFit(SvmAddr base, SvmAddr size_bytes, std::size_t page_size);

  /// Allocates `bytes` rounded up to whole pages; returns kNullSvmAddr on
  /// exhaustion.
  [[nodiscard]] SvmAddr allocate(std::size_t bytes);

  /// Returns a block; `addr` must be a live allocation's base.
  void free(SvmAddr addr);

  [[nodiscard]] SvmAddr bytes_free() const { return bytes_free_; }
  [[nodiscard]] SvmAddr bytes_total() const { return size_; }
  [[nodiscard]] std::size_t live_allocations() const {
    return allocated_.size();
  }
  [[nodiscard]] std::size_t free_chunks() const { return free_list_.size(); }

  /// True when `addr` lies inside the managed range.
  [[nodiscard]] bool contains(SvmAddr addr) const {
    return addr >= base_ && addr < base_ + size_;
  }

  /// Internal consistency check (tests): free list sorted, coalesced,
  /// disjoint from live allocations, sizes add up.
  void check_integrity() const;

 private:
  struct Chunk {
    SvmAddr addr;
    SvmAddr size;
  };

  SvmAddr base_;
  SvmAddr size_;
  std::size_t page_size_;
  SvmAddr bytes_free_;
  std::vector<Chunk> free_list_;           ///< sorted by address, coalesced
  std::map<SvmAddr, SvmAddr> allocated_;   ///< base -> size
};

}  // namespace ivy::alloc
