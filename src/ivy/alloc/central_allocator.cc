#include "ivy/alloc/central_allocator.h"

#include "ivy/proc/svm_io.h"

namespace ivy::alloc {

CentralAllocator::CentralAllocator(proc::Scheduler& sched, NodeId central,
                                   SvmAddr heap_base, SvmAddr heap_bytes)
    : sched_(sched), central_(central) {
  if (is_central()) {
    heap_ = std::make_unique<FirstFit>(heap_base, heap_bytes,
                                       sched.svm().geometry().page_size);
    sched_.rpc().set_handler(net::MsgKind::kAllocRequest,
                             [this](net::Message&& m) {
                               on_alloc_request(std::move(m));
                             });
    sched_.rpc().set_handler(net::MsgKind::kFreeRequest,
                             [this](net::Message&& m) {
                               on_free_request(std::move(m));
                             });
  }
}

SvmAddr CentralAllocator::allocate(std::size_t bytes) {
  Stats& stats = sched_.stats();
  stats.bump(sched_.node(), Counter::kAllocCalls);
  if (is_central()) {
    // "a primitive operation requires at least one procedure call"
    proc::Scheduler::charge_current(sched_.simulator().costs().test_and_set);
    return heap_->allocate(bytes);
  }
  stats.bump(sched_.node(), Counter::kAllocRemoteCalls);
  net::Message reply = proc::blocking_request(
      central_, net::MsgKind::kAllocRequest, AllocRequestPayload{bytes},
      AllocRequestPayload::kWireBytes);
  return std::any_cast<AllocReplyPayload>(reply.payload).addr;
}

void CentralAllocator::deallocate(SvmAddr addr) {
  sched_.stats().bump(sched_.node(), Counter::kFreeCalls);
  if (is_central()) {
    proc::Scheduler::charge_current(sched_.simulator().costs().test_and_set);
    heap_->free(addr);
    return;
  }
  (void)proc::blocking_request(central_, net::MsgKind::kFreeRequest,
                               FreeRequestPayload{addr},
                               FreeRequestPayload::kWireBytes);
}

SvmAddr CentralAllocator::host_allocate(std::size_t bytes) {
  IVY_CHECK_MSG(is_central(), "host_allocate on non-central node");
  return heap_->allocate(bytes);
}

void CentralAllocator::host_free(SvmAddr addr) {
  IVY_CHECK_MSG(is_central(), "host_free on non-central node");
  heap_->free(addr);
}

void CentralAllocator::on_alloc_request(net::Message&& msg) {
  const auto req = std::any_cast<AllocRequestPayload>(msg.payload);
  const SvmAddr addr = heap_->allocate(req.bytes);
  sched_.rpc().reply_to(msg, AllocReplyPayload{addr},
                        AllocReplyPayload::kWireBytes);
}

void CentralAllocator::on_free_request(net::Message&& msg) {
  const auto req = std::any_cast<FreeRequestPayload>(msg.payload);
  heap_->free(req.addr);
  sched_.rpc().reply_to(msg, AllocReplyPayload{}, 8);
}

}  // namespace ivy::alloc
