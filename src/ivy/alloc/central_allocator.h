// One-level centralized first-fit allocator.
//
// One instance exists per node.  The instance on the central node owns
// the heap's FirstFit state (kept in the node's private memory, like the
// page table) and serves kAllocRequest/kFreeRequest; every other node's
// instance is a thin RPC client.  Allocate and free are atomic: requests
// serialize naturally at the central node's message handler, and local
// calls guard with the node's binary lock as the paper describes.
#pragma once

#include <memory>

#include "ivy/alloc/first_fit.h"
#include "ivy/alloc/shared_heap.h"
#include "ivy/proc/scheduler.h"
#include "ivy/sync/svm_lock.h"

namespace ivy::alloc {

class CentralAllocator final : public SharedHeap {
 public:
  /// `heap_base`/`heap_bytes` describe the SVM heap region (identical on
  /// every node); only the central node materializes the free list.
  CentralAllocator(proc::Scheduler& sched, NodeId central, SvmAddr heap_base,
                   SvmAddr heap_bytes);

  [[nodiscard]] SvmAddr allocate(std::size_t bytes) override;
  void deallocate(SvmAddr addr) override;

  /// Host-side bootstrap allocation (before the simulation runs), valid
  /// only on the central node's instance.
  [[nodiscard]] SvmAddr host_allocate(std::size_t bytes);
  void host_free(SvmAddr addr);

  [[nodiscard]] bool is_central() const {
    return sched_.node() == central_;
  }
  [[nodiscard]] const FirstFit* free_list() const { return heap_.get(); }

 private:
  void on_alloc_request(net::Message&& msg);
  void on_free_request(net::Message&& msg);

  proc::Scheduler& sched_;
  NodeId central_;
  std::unique_ptr<FirstFit> heap_;  ///< central node only
};

}  // namespace ivy::alloc
