#include "ivy/alloc/first_fit.h"

#include <algorithm>

#include "ivy/base/check.h"

namespace ivy::alloc {

FirstFit::FirstFit(SvmAddr base, SvmAddr size_bytes, std::size_t page_size)
    : base_(base), size_(size_bytes), page_size_(page_size),
      bytes_free_(size_bytes) {
  IVY_CHECK_GT(page_size, 0u);
  IVY_CHECK_EQ(base % page_size, 0u);
  IVY_CHECK_EQ(size_bytes % page_size, 0u);
  if (size_bytes > 0) free_list_.push_back(Chunk{base, size_bytes});
}

SvmAddr FirstFit::allocate(std::size_t bytes) {
  IVY_CHECK_GT(bytes, 0u);
  // Page-boundary allocation, as in the paper.
  const SvmAddr need =
      (static_cast<SvmAddr>(bytes) + page_size_ - 1) / page_size_ * page_size_;
  for (auto it = free_list_.begin(); it != free_list_.end(); ++it) {
    if (it->size < need) continue;
    const SvmAddr addr = it->addr;
    if (it->size == need) {
      free_list_.erase(it);
    } else {
      it->addr += need;
      it->size -= need;
    }
    allocated_.emplace(addr, need);
    bytes_free_ -= need;
    return addr;
  }
  return kNullSvmAddr;
}

void FirstFit::free(SvmAddr addr) {
  auto it = allocated_.find(addr);
  IVY_CHECK_MSG(it != allocated_.end(), "free of unallocated addr " << addr);
  const SvmAddr size = it->second;
  allocated_.erase(it);
  bytes_free_ += size;

  // Insert sorted and coalesce with neighbours.
  auto pos = std::lower_bound(
      free_list_.begin(), free_list_.end(), addr,
      [](const Chunk& c, SvmAddr a) { return c.addr < a; });
  pos = free_list_.insert(pos, Chunk{addr, size});
  // Merge with successor.
  if (auto next = std::next(pos);
      next != free_list_.end() && pos->addr + pos->size == next->addr) {
    pos->size += next->size;
    free_list_.erase(next);
  }
  // Merge with predecessor.
  if (pos != free_list_.begin()) {
    auto prev = std::prev(pos);
    if (prev->addr + prev->size == pos->addr) {
      prev->size += pos->size;
      free_list_.erase(pos);
    }
  }
}

void FirstFit::check_integrity() const {
  SvmAddr free_sum = 0;
  for (std::size_t i = 0; i < free_list_.size(); ++i) {
    const Chunk& c = free_list_[i];
    IVY_CHECK_GE(c.addr, base_);
    IVY_CHECK_LE(c.addr + c.size, base_ + size_);
    IVY_CHECK_EQ(c.addr % page_size_, 0u);
    IVY_CHECK_EQ(c.size % page_size_, 0u);
    free_sum += c.size;
    if (i > 0) {
      // Sorted, disjoint, and fully coalesced.
      IVY_CHECK_LT(free_list_[i - 1].addr + free_list_[i - 1].size, c.addr);
    }
  }
  IVY_CHECK_EQ(free_sum, bytes_free_);
  SvmAddr alloc_sum = 0;
  for (const auto& [addr, size] : allocated_) {
    alloc_sum += size;
    for (const Chunk& c : free_list_) {
      const bool disjoint = addr + size <= c.addr || c.addr + c.size <= addr;
      IVY_CHECK_MSG(disjoint, "allocation overlaps free chunk");
    }
  }
  IVY_CHECK_EQ(alloc_sum + free_sum, size_);
}

}  // namespace ivy::alloc
