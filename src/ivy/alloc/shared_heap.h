// Shared-memory allocation interface and protocol payloads.
//
// "The processor with which the user directly contacts will be appointed
// to the centralized memory manager."  Clients allocate through a
// SharedHeap; the one-level implementation RPCs every request to the
// central node, the two-level implementation caches big chunks locally
// (the "more efficient approach" the paper proposes as future work).
#pragma once

#include <cstdint>

#include "ivy/base/types.h"

namespace ivy::alloc {

class SharedHeap {
 public:
  virtual ~SharedHeap() = default;

  /// Allocates `bytes` of shared memory (page-aligned, page-granular).
  /// Must be called from inside a process; may block.
  [[nodiscard]] virtual SvmAddr allocate(std::size_t bytes) = 0;

  /// Frees an allocation made through the same heap family.
  virtual void deallocate(SvmAddr addr) = 0;
};

struct AllocRequestPayload {
  std::uint64_t bytes = 0;
  static constexpr std::uint32_t kWireBytes = 16;
};

struct AllocReplyPayload {
  SvmAddr addr = kNullSvmAddr;  ///< kNullSvmAddr = out of shared memory
  static constexpr std::uint32_t kWireBytes = 16;
};

struct FreeRequestPayload {
  SvmAddr addr = kNullSvmAddr;
  static constexpr std::uint32_t kWireBytes = 16;
};

}  // namespace ivy::alloc
