// Two-level memory management — the paper's proposed improvement:
//
// "each processor has a local allocator maintaining a big chunk of memory
// allocated from the central memory allocator. ... When there is not
// enough free memory left in the big chunk, the local allocator will
// allocate another big chunk from the central allocator.  This approach
// has not been implemented yet, though it is expected to have better
// performance."  We implement it; the ablation bench quantifies the win.
//
// The node's binary lock guards the local free list across the blocking
// refill, exactly the per-processor lock usage the paper describes.
// Frees must happen on the allocating node (the usual discipline for
// caching allocators); oversize requests bypass the cache.
#pragma once

#include <memory>
#include <vector>

#include "ivy/alloc/central_allocator.h"
#include "ivy/alloc/first_fit.h"

namespace ivy::alloc {

class TwoLevelAllocator final : public SharedHeap {
 public:
  /// `chunk_bytes`: refill granularity from the central allocator.
  /// `lock`: this node's binary allocator lock (lives in SVM).
  TwoLevelAllocator(proc::Scheduler& sched, CentralAllocator& central,
                    std::size_t chunk_bytes, sync::SvmLock lock);

  [[nodiscard]] SvmAddr allocate(std::size_t bytes) override;
  void deallocate(SvmAddr addr) override;

  [[nodiscard]] std::size_t chunks_held() const { return chunks_.size(); }

 private:
  struct LocalChunk {
    SvmAddr base;
    std::unique_ptr<FirstFit> list;
  };

  [[nodiscard]] SvmAddr try_local(std::size_t bytes);

  proc::Scheduler& sched_;
  CentralAllocator& central_;
  std::size_t chunk_bytes_;
  sync::SvmLock lock_;
  std::vector<LocalChunk> chunks_;
  std::vector<SvmAddr> oversize_;  ///< allocations passed through to central
};

}  // namespace ivy::alloc
