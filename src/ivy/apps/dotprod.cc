#include "ivy/apps/dotprod.h"

#include <cmath>
#include <memory>

namespace ivy::apps {

RunOutcome run_dotprod(Runtime& rt, const DotprodParams& params) {
  const std::size_t n = params.n;
  const int procs = params.processes > 0 ? params.processes
                                         : static_cast<int>(rt.nodes());

  // x and y interleaved in one region; with scatter enabled, element i
  // lives at a permuted slot, so a worker's index range touches pages all
  // over the region — data placement deliberately mismatches the
  // partitioning.
  auto storage = rt.alloc_array<double>(2 * n);
  auto partial = rt.alloc_array<double>(static_cast<std::size_t>(procs) + 1);
  auto bar = rt.create_barrier(procs);

  auto perm = std::make_shared<std::vector<std::uint32_t>>(
      params.scatter ? gen_permutation(2 * n, params.seed ^ 0x5ca)
                     : std::vector<std::uint32_t>());
  const auto slot_x = [perm, n](std::size_t i) {
    return perm->empty() ? i : (*perm)[i];
  };
  const auto slot_y = [perm, n](std::size_t i) {
    return perm->empty() ? n + i : (*perm)[n + i];
  };

  const Time start = rt.now();

  rt.spawn_on(0, [=, seed = params.seed]() mutable {
    const auto xv = gen_vector(n, seed);
    const auto yv = gen_vector(n, seed ^ 0x9);
    for (std::size_t i = 0; i < n; ++i) {
      storage[slot_x(i)] = xv[i];
      storage[slot_y(i)] = yv[i];
    }
  });
  rt.run();

  for (int p = 0; p < procs; ++p) {
    const Range range = partition(n, procs, p);
    rt.spawn_on(static_cast<NodeId>(p) % rt.nodes(), [=]() mutable {
      double sum = 0.0;
      for (std::size_t i = range.begin; i < range.end; ++i) {
        sum += static_cast<double>(storage[slot_x(i)]) *
               static_cast<double>(storage[slot_y(i)]);
        charge(1);
      }
      partial[static_cast<std::size_t>(p)] = sum;
      bar.arrive(0);
      if (p == 0) {
        // "S is obtained by summing up the partial sums."
        double total = 0.0;
        for (int q = 0; q < procs; ++q) {
          total += static_cast<double>(partial[static_cast<std::size_t>(q)]);
        }
        partial[static_cast<std::size_t>(procs)] = total;
      }
    });
  }
  rt.run();
  const Time elapsed = rt.now() - start;

  const auto xv = gen_vector(n, params.seed);
  const auto yv = gen_vector(n, params.seed ^ 0x9);
  double expect = 0.0;
  for (std::size_t i = 0; i < n; ++i) expect += xv[i] * yv[i];
  const double got =
      rt.host_read(partial, static_cast<std::size_t>(procs));
  const bool ok = std::abs(got - expect) <= 1e-9 * (1.0 + std::abs(expect));
  return RunOutcome{elapsed, ok,
                    "dotprod n=" + std::to_string(n) + " sum=" +
                        std::to_string(got)};
}

}  // namespace ivy::apps
