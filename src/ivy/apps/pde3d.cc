#include "ivy/apps/pde3d.h"

#include <cmath>

namespace ivy::apps {

RunOutcome run_pde3d(Runtime& rt, const Pde3dParams& params) {
  const std::size_t m = params.m;
  const std::size_t cells = m * m * m;
  const int procs = params.processes > 0 ? params.processes
                                         : static_cast<int>(rt.nodes());

  auto u = rt.alloc_array<double>(cells);
  auto u_next = rt.alloc_array<double>(cells);
  auto rhs = rt.alloc_array<double>(cells);
  auto bar = rt.create_barrier(procs);

  const auto idx = [m](std::size_t i, std::size_t j, std::size_t k) {
    return (i * m + j) * m + k;
  };

  const Time start = rt.now();

  // "the program initializes its data structures only on one processor,
  // this processor causes most disk I/O transfers because it cannot hold
  // all the data structures in its physical memory."
  rt.spawn_on(0, [=, seed = params.seed]() mutable {
    Rng rng(seed);
    for (std::size_t c = 0; c < cells; ++c) {
      rhs[c] = rng.uniform() * 2.0 - 1.0;
      u[c] = 0.0;
      // Data generation is far cheaper than the numeric kernel.
      if ((c & 7) == 0) charge(1);
    }
  });
  rt.run();

  // Partition by planes of the first axis; the 7-point stencil makes each
  // worker share only its boundary planes with its neighbours.
  for (int p = 0; p < procs; ++p) {
    const Range planes = partition(m, procs, p);
    rt.spawn_on(params.system_scheduling
                    ? 0
                    : static_cast<NodeId>(p) % rt.nodes(), [=, &rt]() mutable {
      for (int it = 0; it < params.iterations; ++it) {
        for (std::size_t i = planes.begin; i < planes.end; ++i) {
          for (std::size_t j = 0; j < m; ++j) {
            for (std::size_t k = 0; k < m; ++k) {
              double sum = 0.0;
              if (i > 0) sum += static_cast<double>(u[idx(i - 1, j, k)]);
              if (i + 1 < m) sum += static_cast<double>(u[idx(i + 1, j, k)]);
              if (j > 0) sum += static_cast<double>(u[idx(i, j - 1, k)]);
              if (j + 1 < m) sum += static_cast<double>(u[idx(i, j + 1, k)]);
              if (k > 0) sum += static_cast<double>(u[idx(i, j, k - 1)]);
              if (k + 1 < m) sum += static_cast<double>(u[idx(i, j, k + 1)]);
              u_next[idx(i, j, k)] =
                  (sum + static_cast<double>(rhs[idx(i, j, k)])) / 6.0;
              charge(2);
            }
          }
        }
        bar.arrive(2 * it);
        for (std::size_t i = planes.begin; i < planes.end; ++i) {
          for (std::size_t j = 0; j < m; ++j) {
            for (std::size_t k = 0; k < m; ++k) {
              u[idx(i, j, k)] = static_cast<double>(u_next[idx(i, j, k)]);
            }
          }
        }
        if (params.mark_epochs && p == 0) rt.mark_epoch();
        bar.arrive(2 * it + 1);
      }
    });
  }
  rt.run();
  const Time elapsed = rt.now() - start;

  if (params.skip_verify) {
    return RunOutcome{elapsed, true, "pde3d m=" + std::to_string(m) +
                                         " (verification skipped)"};
  }
  std::vector<double> rhs_host(cells);
  {
    Rng rng(params.seed);
    for (double& v : rhs_host) v = rng.uniform() * 2.0 - 1.0;
  }
  const auto expect = pde3d_oracle(rhs_host, m, params.iterations);
  bool ok = true;
  double max_err = 0.0;
  for (std::size_t c = 0; c < cells; ++c) {
    const double got = rt.host_read(u, c);
    const double err = std::abs(got - expect[c]);
    max_err = std::max(max_err, err);
    if (!(err <= 1e-12 + 1e-9 * std::abs(expect[c]))) ok = false;
  }
  return RunOutcome{elapsed, ok,
                    "pde3d m=" + std::to_string(m) +
                        " max_err=" + std::to_string(max_err)};
}

}  // namespace ivy::apps
