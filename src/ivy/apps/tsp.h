// Traveling Salesman Problem — "a simplified version of the
// branch-and-bound approach [Held-Karp].  At each step, a 1-tree ... of
// the remaining graph is computed.  The sum of the cost of the subtour
// and the 1-tree is compared with the cost of the current least upper
// bound. ... The available branches, the graph, and the least upper bound
// are stored in the shared virtual memory.  The program creates a process
// for each processor ... Each process ... needs to access shared data
// structures mutually exclusively."
#pragma once

#include "ivy/apps/workload.h"

namespace ivy::apps {

struct TspParams {
  int cities = 10;  ///< paper used 12–13-city instances
  int processes = 0;
  std::uint64_t seed = 0x75b;
};

RunOutcome run_tsp(Runtime& rt, const TspParams& params);

}  // namespace ivy::apps
