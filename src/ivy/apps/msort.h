// Split-merge Sort — "a variation of the block odd-even based merge-split
// algorithm.  The sorted data is a vector of records that contain random
// strings.  At the beginning, the program divides the vector into 2N
// blocks for N processors, and creates N processes, one for each
// processor.  Each process sorts two blocks by using a quicksort
// algorithm ... Each process then does an odd-even block merge-split sort
// 2N-1 times.  The vector is stored in the shared virtual memory."
//
// As the paper notes for Figure 6, the algorithm itself is sub-linear
// even with free communication; run_msort also reports the
// zero-communication algorithmic bound so the bench can plot both.
#pragma once

#include "ivy/apps/workload.h"

namespace ivy::apps {

struct MsortParams {
  std::size_t records = 1 << 14;
  int processes = 0;  ///< N; the vector is split into 2N blocks
  std::uint64_t seed = 0x50fa;
};

RunOutcome run_msort(Runtime& rt, const MsortParams& params);

/// Comparison count of the algorithm at N processes (quicksort of two
/// blocks + 2N-1 merge-split rounds), used for the ideal-speedup curve of
/// Figure 6.
[[nodiscard]] double msort_ideal_speedup(std::size_t records, int processes);

}  // namespace ivy::apps
