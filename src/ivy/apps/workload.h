// Shared infrastructure for the six benchmark programs of the paper's
// evaluation: deterministic input generators, sequential oracles for
// verification, and the common run-outcome record.
//
// Every app follows the same pattern the paper describes: data structures
// in shared virtual memory, a parameterized partitioning ("any program
// does its best for any given number of processors"), initialization on
// one processor, and eventcount/lock synchronization.
#pragma once

#include <string>
#include <vector>

#include "ivy/base/rng.h"
#include "ivy/ivy.h"

namespace ivy::apps {

struct RunOutcome {
  Time elapsed = 0;    ///< virtual time of the whole program (init + compute)
  bool verified = false;
  std::string detail;  ///< human-readable result summary
};

/// Record sorted by the merge-split program: "a vector of records that
/// contain random strings".
struct SortRecord {
  char key[16];
  std::uint32_t payload;
  std::uint32_t pad;

  friend bool operator<(const SortRecord& a, const SortRecord& b) {
    const int c = __builtin_memcmp(a.key, b.key, sizeof(a.key));
    return c != 0 ? c < 0 : a.payload < b.payload;
  }
  friend bool operator==(const SortRecord& a, const SortRecord& b) {
    return __builtin_memcmp(a.key, b.key, sizeof(a.key)) == 0 &&
           a.payload == b.payload;
  }
};
static_assert(sizeof(SortRecord) == 24);

/// Deterministic generators — every consumer regenerates identical data
/// from the seed, so oracles never need to read the SVM image.
[[nodiscard]] std::vector<double> gen_vector(std::size_t n,
                                             std::uint64_t seed);
/// Diagonally dominant matrix, row-major (Jacobi converges on it).
[[nodiscard]] std::vector<double> gen_dd_matrix(std::size_t n,
                                                std::uint64_t seed);
/// Symmetric TSP weight matrix with weights in [1, 100].
[[nodiscard]] std::vector<double> gen_tsp_weights(int cities,
                                                  std::uint64_t seed);
[[nodiscard]] std::vector<SortRecord> gen_records(std::size_t n,
                                                  std::uint64_t seed);
/// Random permutation of [0, n).
[[nodiscard]] std::vector<std::uint32_t> gen_permutation(std::size_t n,
                                                         std::uint64_t seed);

// --- sequential oracles ------------------------------------------------------

[[nodiscard]] std::vector<double> jacobi_oracle(const std::vector<double>& a,
                                                const std::vector<double>& b,
                                                std::size_t n, int iterations);

/// 3-D Poisson-style 7-point Jacobi sweep oracle; grids are m^3,
/// lexicographic (i*m + j)*m + k, zero boundary.
[[nodiscard]] std::vector<double> pde3d_oracle(const std::vector<double>& rhs,
                                               std::size_t m, int iterations);

/// Exact TSP tour cost by branch and bound (small instances).
[[nodiscard]] double tsp_oracle(const std::vector<double>& w, int cities);

/// Blocked partition helper: [begin, end) of chunk `k` of `parts` over n.
struct Range {
  std::size_t begin;
  std::size_t end;
};
[[nodiscard]] constexpr Range partition(std::size_t n, int parts, int k) {
  const std::size_t base = n / parts;
  const std::size_t extra = n % parts;
  const std::size_t ku = static_cast<std::size_t>(k);
  const std::size_t begin = ku * base + std::min(ku, extra);
  return Range{begin, begin + base + (ku < extra ? 1 : 0)};
}

}  // namespace ivy::apps
