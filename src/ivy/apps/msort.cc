#include "ivy/apps/msort.h"

#include <algorithm>
#include <cmath>

namespace ivy::apps {
namespace {

/// Reads a block of records into private memory, charging one compute
/// unit per record beyond the per-element SVM reference costs.
std::vector<SortRecord> read_block(const SharedArray<SortRecord>& vec,
                                   Range r) {
  std::vector<SortRecord> out;
  out.reserve(r.end - r.begin);
  for (std::size_t i = r.begin; i < r.end; ++i) {
    out.push_back(vec.get(i));
  }
  return out;
}

void write_block(const SharedArray<SortRecord>& vec, Range r,
                 const std::vector<SortRecord>& data, std::size_t from) {
  for (std::size_t i = r.begin; i < r.end; ++i) {
    vec.set(i, data[from + (i - r.begin)]);
  }
}

}  // namespace

RunOutcome run_msort(Runtime& rt, const MsortParams& params) {
  const std::size_t n = params.records;
  const int procs = params.processes > 0 ? params.processes
                                         : static_cast<int>(rt.nodes());
  const int blocks = 2 * procs;

  auto vec = rt.alloc_array<SortRecord>(n);
  auto bar = rt.create_barrier(procs);

  const Time start = rt.now();

  rt.spawn_on(0, [=, seed = params.seed]() mutable {
    const auto recs = gen_records(n, seed);
    for (std::size_t i = 0; i < n; ++i) {
      vec.set(i, recs[i]);
      if ((i & 7) == 0) charge(1);
    }
  });
  rt.run();

  const auto block_range = [n, blocks](int blk) {
    return partition(n, blocks, blk);
  };

  for (int p = 0; p < procs; ++p) {
    rt.spawn_on(static_cast<NodeId>(p) % rt.nodes(), [=]() mutable {
      // Phase 1: quicksort the process's own two blocks.
      {
        const Range r0 = block_range(2 * p);
        const Range r1 = block_range(2 * p + 1);
        auto local = read_block(vec, Range{r0.begin, r1.end});
        std::sort(local.begin(), local.end());
        const auto len = static_cast<double>(local.size());
        charge(static_cast<std::int64_t>(len * std::log2(len + 1)));
        write_block(vec, Range{r0.begin, r1.end}, local, 0);
      }
      bar.arrive(0);

      // Phase 2: 2N-1 odd-even merge-split rounds.  The quicksort phase
      // already sorted each (2p, 2p+1) pair jointly — i.e. performed the
      // first even round — so the merge rounds start with the odd
      // pairing, giving the required 2N phases in total.
      for (int round = 0; round < blocks - 1; ++round) {
        const int left = 2 * p + ((round + 1) % 2);
        if (left + 1 < blocks) {
          const Range rl = block_range(left);
          const Range rr = block_range(left + 1);
          auto lo = read_block(vec, rl);
          auto hi = read_block(vec, rr);
          std::vector<SortRecord> merged(lo.size() + hi.size());
          std::merge(lo.begin(), lo.end(), hi.begin(), hi.end(),
                     merged.begin());
          charge(static_cast<std::int64_t>(merged.size()));
          write_block(vec, rl, merged, 0);
          write_block(vec, rr, merged, lo.size());
        }
        bar.arrive(1 + round);
      }
    });
  }
  rt.run();
  const Time elapsed = rt.now() - start;

  auto expect = gen_records(n, params.seed);
  std::sort(expect.begin(), expect.end());
  bool ok = true;
  for (std::size_t i = 0; i < n; ++i) {
    if (!(rt.host_read(vec, i) == expect[i])) {
      ok = false;
      break;
    }
  }
  return RunOutcome{elapsed, ok, "msort records=" + std::to_string(n)};
}

double msort_ideal_speedup(std::size_t records, int processes) {
  const auto comparisons = [records](int procs) {
    const double n = static_cast<double>(records);
    const double block = n / (2.0 * procs);
    // Parallel makespan: quicksort of two blocks, then 2N-1 merge rounds
    // of two blocks each, all lock-step.
    const double qsort = 2.0 * block * std::log2(2.0 * block + 1.0);
    const double merges = (2.0 * procs - 1.0) * 2.0 * block;
    return qsort + merges;
  };
  return comparisons(1) / comparisons(processes);
}

}  // namespace ivy::apps
