// 3-D PDE Solver — "solves three dimensional partial differential
// equations using a parallel Jacobi algorithm ... Since this matrix is
// never updated in the program, the practical PDE solvers in scientific
// computing usually eliminate the matrix by coding it into programs ...
// The vectors x and b are stored linearly in the shared virtual memory."
//
// This is the program behind Figure 4 (super-linear speedup when the data
// exceeds one node's physical memory) and Table 1 (disk page transfers of
// the first iterations on 1 vs 2 processors).
#pragma once

#include "ivy/apps/workload.h"

namespace ivy::apps {

struct Pde3dParams {
  std::size_t m = 16;  ///< grid edge; unknowns = m^3
  int iterations = 6;
  int processes = 0;   ///< 0 = one per processor
  std::uint64_t seed = 0x9de;
  /// Close a stats epoch at each iteration boundary (Table 1 reads the
  /// per-epoch disk transfer counts).
  bool mark_epochs = false;
  /// Skip the element-wise oracle comparison (for the big Figure 4 grids
  /// where the host-side oracle would dominate wall time).
  bool skip_verify = false;
  /// The paper's two placement options: manual scheduling pins worker p
  /// to processor p; system scheduling spawns every worker on the
  /// contact processor and lets the passive load balancer spread them
  /// (enable cfg.sched.load_balancing).
  bool system_scheduling = false;
};

RunOutcome run_pde3d(Runtime& rt, const Pde3dParams& params);

}  // namespace ivy::apps
