#include "ivy/apps/tsp.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ivy::apps {
namespace {

constexpr int kMaxCities = 16;
constexpr std::size_t kPoolCapacity = 8192;

/// A branch of the search tree: a partial tour starting at city 0.
struct Branch {
  double cost = 0.0;
  std::uint32_t depth = 0;
  std::uint8_t path[kMaxCities] = {};
  std::uint32_t pad = 0;
};
static_assert(sizeof(Branch) == 32);
static_assert(std::is_trivially_copyable_v<Branch>);

/// Held-Karp-style lower bound: subtour cost + MST over the unvisited
/// cities + the two cheapest edges tying the tree back to the subtour's
/// endpoints (a 1-tree on the contracted subtour).
double lower_bound(const std::vector<double>& w, int n, const Branch& br) {
  bool visited[kMaxCities] = {};
  for (std::uint32_t i = 0; i < br.depth; ++i) visited[br.path[i]] = true;
  int rest[kMaxCities];
  int nrest = 0;
  for (int c = 0; c < n; ++c) {
    if (!visited[c]) rest[nrest++] = c;
  }
  if (nrest == 0) return br.cost;
  const auto wat = [&](int a, int b) {
    return w[static_cast<std::size_t>(a) * static_cast<std::size_t>(n) +
             static_cast<std::size_t>(b)];
  };

  // Prim's MST over the unvisited set.
  double mst = 0.0;
  double dist[kMaxCities];
  bool in_tree[kMaxCities] = {};
  for (int i = 0; i < nrest; ++i) dist[i] = wat(rest[0], rest[i]);
  in_tree[0] = true;
  for (int added = 1; added < nrest; ++added) {
    int best = -1;
    for (int i = 0; i < nrest; ++i) {
      if (!in_tree[i] && (best < 0 || dist[i] < dist[best])) best = i;
    }
    in_tree[best] = true;
    mst += dist[best];
    for (int i = 0; i < nrest; ++i) {
      if (!in_tree[i]) dist[i] = std::min(dist[i], wat(rest[best], rest[i]));
    }
  }

  // Cheapest links from the subtour's tail to the tree and from the tree
  // back to the start city.
  const int tail = br.path[br.depth - 1];
  double link_out = std::numeric_limits<double>::infinity();
  double link_back = std::numeric_limits<double>::infinity();
  for (int i = 0; i < nrest; ++i) {
    link_out = std::min(link_out, wat(tail, rest[i]));
    link_back = std::min(link_back, wat(rest[i], 0));
  }
  return br.cost + mst + link_out + link_back;
}

/// Greedy nearest-neighbour tour for the initial upper bound.
double greedy_tour(const std::vector<double>& w, int n) {
  bool used[kMaxCities] = {true};
  int at = 0;
  double total = 0.0;
  for (int step = 1; step < n; ++step) {
    int best = -1;
    for (int c = 1; c < n; ++c) {
      if (used[c]) continue;
      const auto cost = w[static_cast<std::size_t>(at) *
                              static_cast<std::size_t>(n) +
                          static_cast<std::size_t>(c)];
      if (best < 0 ||
          cost < w[static_cast<std::size_t>(at) * static_cast<std::size_t>(n) +
                   static_cast<std::size_t>(best)]) {
        best = c;
      }
    }
    total += w[static_cast<std::size_t>(at) * static_cast<std::size_t>(n) +
               static_cast<std::size_t>(best)];
    used[best] = true;
    at = best;
  }
  return total + w[static_cast<std::size_t>(at)];  // back to city 0 (col 0)
}

}  // namespace

RunOutcome run_tsp(Runtime& rt, const TspParams& params) {
  const int n = params.cities;
  IVY_CHECK_LE(n, kMaxCities);
  const int procs = params.processes > 0 ? params.processes
                                         : static_cast<int>(rt.nodes());
  const auto nn = static_cast<std::size_t>(n);

  auto weights = rt.alloc_array<double>(nn * nn);
  auto pool = rt.alloc_array<Branch>(kPoolCapacity);
  // The lock and the control words live together on one page (the same
  // locality trick the paper applies to eventcounts): acquiring the lock
  // pulls the pool count, the bound and the outstanding counter with it.
  // The lock's waiter queue needs 16 bytes per waiting process; 48
  // records cover far more workers than any configuration here and leave
  // the tail of the page for the control words.
  const SvmAddr ctrl = rt.alloc_raw(rt.config().page_size);
  sync::SvmLock lock(ctrl);
  const SvmAddr words =
      ctrl + sync::SvmLock::kHeaderBytes + 48 * sizeof(sync::SvmLock::WaitRecord);
  IVY_CHECK_LE(words + 16, ctrl + rt.config().page_size);
  SharedScalar<double> best(words);
  SharedScalar<std::int32_t> pool_count(words + 8);
  SharedScalar<std::int32_t> outstanding(words + 12);

  const Time start = rt.now();

  rt.spawn_on(0, [=, seed = params.seed]() mutable {
    const auto w = gen_tsp_weights(n, seed);
    for (std::size_t i = 0; i < w.size(); ++i) {
      weights[i] = w[i];
      charge(1);
    }
    best.set(greedy_tour(w, n));
    Branch root;
    root.depth = 1;
    root.path[0] = 0;
    pool[0] = root;
    pool_count.set(1);
    outstanding.set(1);
  });
  rt.run();

  for (int p = 0; p < procs; ++p) {
    rt.spawn_on(static_cast<NodeId>(p) % rt.nodes(), [=]() mutable {
      // Pull the (read-only) weight matrix once; its pages replicate.
      std::vector<double> w(nn * nn);
      for (std::size_t i = 0; i < w.size(); ++i) {
        w[i] = static_cast<double>(weights[i]);
      }
      // One critical section per branch: publish the previous branch's
      // results (children, bound improvement, outstanding delta) and pop
      // the next branch under a single lock acquisition.
      Branch children[kMaxCities];
      int nchildren = 0;
      std::int32_t delta = 0;
      double found_tour = std::numeric_limits<double>::infinity();
      for (;;) {
        lock.lock();
        if (found_tour < best.get()) best.set(found_tour);
        found_tour = std::numeric_limits<double>::infinity();
        std::int32_t pc = pool_count.get();
        IVY_CHECK_LE(static_cast<std::size_t>(pc) +
                         static_cast<std::size_t>(nchildren),
                     kPoolCapacity);
        for (int c = 0; c < nchildren; ++c) {
          pool.set(static_cast<std::size_t>(pc++), children[c]);
        }
        delta += nchildren;
        nchildren = 0;
        Branch br;
        bool have = false;
        if (pc > 0) {
          br = pool.get(static_cast<std::size_t>(pc) - 1);
          --pc;
          have = true;  // its consumption (-1) is published after processing
        }
        pool_count.set(pc);
        if (delta != 0) outstanding.set(outstanding.get() + delta);
        const std::int32_t out = outstanding.get();
        delta = 0;
        lock.unlock();
        if (!have) {
          if (out == 0) break;  // search exhausted
          charge(512);          // idle poll backoff: don't steal the pool page
          continue;
        }

        // The Held-Karp 1-tree bound runs a few dozen subgradient-ascent
        // passes, each an O(n^2) MST — the dominant per-branch work.
        charge(static_cast<std::int64_t>(n) * n * 30);
        const double ub = best.get();
        delta = -1;  // this branch is consumed

        if (static_cast<int>(br.depth) == n) {
          found_tour =
              br.cost + w[static_cast<std::size_t>(br.path[n - 1]) * nn];
          continue;
        }
        if (lower_bound(w, n, br) < ub) {
          bool visited[kMaxCities] = {};
          for (std::uint32_t i = 0; i < br.depth; ++i) {
            visited[br.path[i]] = true;
          }
          for (int c = 1; c < n; ++c) {
            if (visited[c]) continue;
            Branch child = br;
            child.path[child.depth++] = static_cast<std::uint8_t>(c);
            child.cost += w[static_cast<std::size_t>(br.path[br.depth - 1]) *
                                nn +
                            static_cast<std::size_t>(c)];
            if (child.cost < ub) children[nchildren++] = child;
          }
        }
      }
    });
  }
  rt.run();
  const Time elapsed = rt.now() - start;

  const double got = rt.host_read<double>(best.address());
  const double expect = tsp_oracle(gen_tsp_weights(n, params.seed), n);
  const bool ok = std::abs(got - expect) < 1e-9;
  return RunOutcome{elapsed, ok,
                    "tsp cities=" + std::to_string(n) + " best=" +
                        std::to_string(got) + " expect=" +
                        std::to_string(expect)};
}

}  // namespace ivy::apps
