// Dot-product — "computes S = sum x_i * y_i ... Both vector x and y are
// stored in the shared virtual memory in a random manner, under the
// assumption that x and y are not fully distributed before doing the
// computation.  The main reason for choosing this example is to show the
// weak side of the shared virtual memory system; dot-product does little
// computation but requires a lot of data movement."
#pragma once

#include "ivy/apps/workload.h"

namespace ivy::apps {

struct DotprodParams {
  std::size_t n = 32768;
  int processes = 0;
  std::uint64_t seed = 0xd07;
  /// Scatter elements over the address space through a random permutation
  /// (the paper's "random manner"); false stores them contiguously.
  bool scatter = true;
};

RunOutcome run_dotprod(Runtime& rt, const DotprodParams& params);

}  // namespace ivy::apps
