#include "ivy/apps/jacobi.h"

#include <cmath>

namespace ivy::apps {

RunOutcome run_jacobi(Runtime& rt, const JacobiParams& params) {
  const std::size_t n = params.n;
  const int procs = params.processes > 0 ? params.processes
                                         : static_cast<int>(rt.nodes());

  auto a = rt.alloc_array<double>(n * n);
  auto b = rt.alloc_array<double>(n);
  auto x = rt.alloc_array<double>(n);
  auto x_next = rt.alloc_array<double>(n);
  auto bar = rt.create_barrier(procs);

  const Time start = rt.now();

  // Initialization happens on one processor, as in the paper's runs; the
  // data then migrates to the workers page by page on demand.
  rt.spawn_on(0, [=, seed = params.seed]() mutable {
    const auto am = gen_dd_matrix(n, seed);
    const auto bv = gen_vector(n, seed ^ 0xb);
    for (std::size_t i = 0; i < n * n; ++i) a[i] = am[i];
    for (std::size_t i = 0; i < n; ++i) {
      b[i] = bv[i];
      x[i] = 0.0;
    }
  });
  rt.run();

  for (int p = 0; p < procs; ++p) {
    const Range rows = partition(n, procs, p);
    rt.spawn_on(params.system_scheduling
                    ? 0
                    : static_cast<NodeId>(p) % rt.nodes(),
                [=, &rt]() mutable {
      for (int it = 0; it < params.iterations; ++it) {
        for (std::size_t i = rows.begin; i < rows.end; ++i) {
          double sum = 0.0;
          for (std::size_t j = 0; j < n; ++j) {
            if (j != i) sum += static_cast<double>(a[i * n + j]) * x[j];
            charge(1);
          }
          x_next[i] = (static_cast<double>(b[i]) - sum) /
                      static_cast<double>(a[i * n + i]);
        }
        bar.arrive(2 * it);  // everyone finished computing x_next
        for (std::size_t i = rows.begin; i < rows.end; ++i) {
          x[i] = static_cast<double>(x_next[i]);
        }
        if (params.mark_epochs && p == 0) rt.mark_epoch();
        bar.arrive(2 * it + 1);  // x fully updated for the next sweep
      }
    });
  }
  rt.run();
  const Time elapsed = rt.now() - start;

  // Verify against the sequential oracle.
  const auto am = gen_dd_matrix(n, params.seed);
  const auto bv = gen_vector(n, params.seed ^ 0xb);
  const auto expect = jacobi_oracle(am, bv, n, params.iterations);
  bool ok = true;
  double max_err = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double got = rt.host_read(x, i);
    const double err = std::abs(got - expect[i]);
    max_err = std::max(max_err, err);
    if (!(err <= 1e-9 * (1.0 + std::abs(expect[i])))) ok = false;
  }
  return RunOutcome{elapsed, ok,
                    "jacobi n=" + std::to_string(n) +
                        " max_err=" + std::to_string(max_err)};
}

}  // namespace ivy::apps
