#include "ivy/apps/matmul.h"

#include <cmath>

namespace ivy::apps {

RunOutcome run_matmul(Runtime& rt, const MatmulParams& params) {
  const std::size_t n = params.n;
  const int procs = params.processes > 0 ? params.processes
                                         : static_cast<int>(rt.nodes());

  // B and C are stored column-major so a worker's columns are contiguous
  // pages; A row-major and read-shared by everyone.
  auto a = rt.alloc_array<double>(n * n);
  auto b = rt.alloc_array<double>(n * n);
  auto c = rt.alloc_array<double>(n * n);

  const Time start = rt.now();

  rt.spawn_on(0, [=, seed = params.seed]() mutable {
    const auto am = gen_vector(n * n, seed);
    const auto bm = gen_vector(n * n, seed ^ 0xb00);
    for (std::size_t i = 0; i < n * n; ++i) {
      a[i] = am[i];
      b[i] = bm[i];  // interpreted column-major: b[j*n + k] = B(k, j)
      if ((i & 7) == 0) charge(1);
    }
  });
  rt.run();

  for (int p = 0; p < procs; ++p) {
    const Range cols = partition(n, procs, p);
    rt.spawn_on(params.system_scheduling
                    ? 0
                    : static_cast<NodeId>(p) % rt.nodes(), [=]() mutable {
      for (std::size_t j = cols.begin; j < cols.end; ++j) {
        // Pull column j of B once into private memory.
        std::vector<double> bj(n);
        for (std::size_t k = 0; k < n; ++k) {
          bj[k] = static_cast<double>(b[j * n + k]);
        }
        for (std::size_t i = 0; i < n; ++i) {
          double sum = 0.0;
          for (std::size_t k = 0; k < n; ++k) {
            sum += static_cast<double>(a[i * n + k]) * bj[k];
            charge(1);
          }
          c[j * n + i] = sum;
        }
      }
    });
  }
  rt.run();
  const Time elapsed = rt.now() - start;

  // Spot-verify against the host-side product on a deterministic sample
  // (full O(n^3) host verification for small n, sampled for larger).
  const auto am = gen_vector(n * n, params.seed);
  const auto bm = gen_vector(n * n, params.seed ^ 0xb00);
  bool ok = true;
  double max_err = 0.0;
  const std::size_t stride = n <= 128 ? 1 : n / 64;
  for (std::size_t j = 0; j < n; j += stride) {
    for (std::size_t i = 0; i < n; i += stride) {
      double expect = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        expect += am[i * n + k] * bm[j * n + k];
      }
      const double got = rt.host_read(c, j * n + i);
      const double err = std::abs(got - expect);
      max_err = std::max(max_err, err);
      if (!(err <= 1e-9 * (1.0 + std::abs(expect)))) ok = false;
    }
  }
  return RunOutcome{elapsed, ok,
                    "matmul n=" + std::to_string(n) +
                        " max_err=" + std::to_string(max_err)};
}

}  // namespace ivy::apps
