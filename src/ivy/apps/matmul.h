// Matrix Multiply — "computes C = AB where A, B, and C are square
// matrices.  A number of processes are created to partition the problem
// by the number of columns of matrix B.  All the matrices are stored in
// the shared virtual memory.  The program assumes that matrix A and B are
// on one processor at the beginning and they will be paged to other
// processors on demand."
#pragma once

#include "ivy/apps/workload.h"

namespace ivy::apps {

struct MatmulParams {
  std::size_t n = 96;
  int processes = 0;
  std::uint64_t seed = 0x3a7;
  /// The paper's two placement options: manual scheduling pins worker p
  /// to processor p; system scheduling spawns every worker on the
  /// contact processor and lets the passive load balancer spread them
  /// (enable cfg.sched.load_balancing).
  bool system_scheduling = false;
};

RunOutcome run_matmul(Runtime& rt, const MatmulParams& params);

}  // namespace ivy::apps
