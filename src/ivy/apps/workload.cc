#include "ivy/apps/workload.h"

#include <algorithm>
#include <cstring>

namespace ivy::apps {

std::vector<double> gen_vector(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.uniform() * 2.0 - 1.0;
  return v;
}

std::vector<double> gen_dd_matrix(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> a(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double w = rng.uniform() * 2.0 - 1.0;
      a[i * n + j] = w;
      row_sum += std::abs(w);
    }
    // Strict diagonal dominance guarantees Jacobi convergence.
    a[i * n + i] = row_sum + 1.0 + rng.uniform();
  }
  return a;
}

std::vector<double> gen_tsp_weights(int cities, std::uint64_t seed) {
  Rng rng(seed);
  const auto n = static_cast<std::size_t>(cities);
  std::vector<double> w(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = 1.0 + static_cast<double>(rng.below(100));
      w[i * n + j] = d;
      w[j * n + i] = d;
    }
  }
  return w;
}

std::vector<SortRecord> gen_records(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<SortRecord> recs(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (char& c : recs[i].key) {
      c = static_cast<char>('a' + rng.below(26));
    }
    recs[i].payload = static_cast<std::uint32_t>(i);
    recs[i].pad = 0;
  }
  return recs;
}

std::vector<std::uint32_t> gen_permutation(std::size_t n,
                                           std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint32_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = static_cast<std::uint32_t>(i);
  for (std::size_t i = n; i > 1; --i) {
    std::swap(p[i - 1], p[rng.below(i)]);
  }
  return p;
}

std::vector<double> jacobi_oracle(const std::vector<double>& a,
                                  const std::vector<double>& b,
                                  std::size_t n, int iterations) {
  std::vector<double> x(n, 0.0);
  std::vector<double> next(n, 0.0);
  for (int it = 0; it < iterations; ++it) {
    for (std::size_t i = 0; i < n; ++i) {
      double sum = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (j != i) sum += a[i * n + j] * x[j];
      }
      next[i] = (b[i] - sum) / a[i * n + i];
    }
    x.swap(next);
  }
  return x;
}

std::vector<double> pde3d_oracle(const std::vector<double>& rhs,
                                 std::size_t m, int iterations) {
  const auto idx = [m](std::size_t i, std::size_t j, std::size_t k) {
    return (i * m + j) * m + k;
  };
  std::vector<double> u(m * m * m, 0.0);
  std::vector<double> next(m * m * m, 0.0);
  for (int it = 0; it < iterations; ++it) {
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        for (std::size_t k = 0; k < m; ++k) {
          double sum = 0.0;
          if (i > 0) sum += u[idx(i - 1, j, k)];
          if (i + 1 < m) sum += u[idx(i + 1, j, k)];
          if (j > 0) sum += u[idx(i, j - 1, k)];
          if (j + 1 < m) sum += u[idx(i, j + 1, k)];
          if (k > 0) sum += u[idx(i, j, k - 1)];
          if (k + 1 < m) sum += u[idx(i, j, k + 1)];
          next[idx(i, j, k)] = (sum + rhs[idx(i, j, k)]) / 6.0;
        }
      }
    }
    u.swap(next);
  }
  return u;
}

namespace {

void tsp_dfs(const std::vector<double>& w, int n, std::vector<int>& tour,
             std::vector<bool>& used, double cost, double& best) {
  const int depth = static_cast<int>(tour.size());
  if (cost >= best) return;
  if (depth == n) {
    const double total = cost + w[static_cast<std::size_t>(tour.back()) *
                                      static_cast<std::size_t>(n) +
                                  static_cast<std::size_t>(tour.front())];
    best = std::min(best, total);
    return;
  }
  for (int c = 1; c < n; ++c) {
    if (used[static_cast<std::size_t>(c)]) continue;
    used[static_cast<std::size_t>(c)] = true;
    tour.push_back(c);
    tsp_dfs(w, n, tour, used, cost +
                w[static_cast<std::size_t>(tour[tour.size() - 2]) *
                      static_cast<std::size_t>(n) +
                  static_cast<std::size_t>(c)],
            best);
    tour.pop_back();
    used[static_cast<std::size_t>(c)] = false;
  }
}

}  // namespace

double tsp_oracle(const std::vector<double>& w, int cities) {
  std::vector<int> tour{0};
  std::vector<bool> used(static_cast<std::size_t>(cities), false);
  used[0] = true;
  double best = std::numeric_limits<double>::infinity();
  tsp_dfs(w, cities, tour, used, 0.0, best);
  return best;
}

}  // namespace ivy::apps
