// Linear Equation Solver — "a parallel Jacobi algorithm for solving
// linear equations Ax = b where A is an n x n matrix.  The parallel
// algorithm creates a number of processes to partition the problem by the
// number of rows of matrix A.  All the processes are synchronized at each
// iteration by using an event count.  The data structures A, x, and b are
// stored linearly in the shared virtual memory, and the processes access
// them freely without regard to their location."
#pragma once

#include "ivy/apps/workload.h"

namespace ivy::apps {

struct JacobiParams {
  std::size_t n = 128;
  int iterations = 8;
  /// Worker processes; 0 = one per processor (the paper's parameterized
  /// partitioning).
  int processes = 0;
  std::uint64_t seed = 0x0a11ce;
  /// Close a stats epoch at each iteration boundary.
  bool mark_epochs = false;
  /// The paper's two placement options: manual scheduling pins worker p
  /// to processor p; system scheduling spawns every worker on the
  /// contact processor and lets the passive load balancer spread them
  /// (enable cfg.sched.load_balancing).
  bool system_scheduling = false;
};

/// Runs the whole program (single-processor initialization + parallel
/// iterations) on the given runtime and verifies the result against the
/// sequential oracle.
RunOutcome run_jacobi(Runtime& rt, const JacobiParams& params);

}  // namespace ivy::apps
