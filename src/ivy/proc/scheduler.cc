#include "ivy/proc/scheduler.h"

#include <algorithm>
#include <utility>

#include "ivy/base/log.h"
#include "ivy/proc/svm_io.h"
#include "ivy/prof/prof.h"
#include "ivy/trace/trace.h"

namespace ivy::proc {
namespace {

thread_local Scheduler* g_current_sched = nullptr;
thread_local Pcb* g_current_pcb = nullptr;

}  // namespace

Scheduler::Scheduler(sim::Simulator& sim, rpc::RemoteOp& rpc, svm::Svm& svm,
                     Stats& stats, NodeId node, const SchedConfig& config,
                     LiveCounter& live, SvmAddr stack_region_base,
                     std::uint32_t stack_region_pages)
    : sim_(sim),
      rpc_(rpc),
      svm_(svm),
      stats_(stats),
      node_(node),
      config_(config),
      live_(live),
      known_load_(svm.nodes(), 0),
      stack_next_(stack_region_base),
      stack_end_(stack_region_base +
                 static_cast<SvmAddr>(stack_region_pages) *
                     svm.geometry().page_size) {
  rpc_.set_handler(net::MsgKind::kRemoteResume, [this](net::Message&& m) {
    on_resume_msg(std::move(m));
  });
  rpc_.set_handler(net::MsgKind::kMigrateAsk, [this](net::Message&& m) {
    on_migrate_ask(std::move(m));
  });
  // Load advertisements carry their information in the piggybacked hint
  // byte, which the consumer below already recorded.
  rpc_.set_handler(net::MsgKind::kLoadHint, [this](net::Message&& m) {
    rpc_.ignore(m);
  });
  rpc_.set_load_hint_provider([this] { return load_hint(); });
  rpc_.set_load_hint_consumer([this](NodeId from, std::uint8_t hint) {
    known_load_[from] = hint;
    // Hearing about work elsewhere wakes this node's null process — an
    // idle node with no traffic of its own would otherwise never look.
    if (hint > 0 && running_ == nullptr && ready_.empty()) {
      maybe_arm_null_timer();
    }
  });
}

ProcId Scheduler::spawn(std::function<void()> body, bool migratable) {
  IVY_CHECK(body != nullptr);
  Pcb& pcb = allocate_slot();
  pcb.migratable = migratable;
  // Stack from the shared memory portion, as in the paper.
  const std::uint32_t pages = config_.stack_pages;
  IVY_CHECK_MSG(stack_next_ + static_cast<SvmAddr>(pages) *
                        svm_.geometry().page_size <=
                    stack_end_,
                "node " << node_ << " stack region exhausted");
  pcb.stack_base = stack_next_;
  pcb.stack_pages = pages;
  stack_next_ += static_cast<SvmAddr>(pages) * svm_.geometry().page_size;
  // The process write-touches its current stack page on first dispatch,
  // as any real process does — so a process spawned away from the initial
  // page owner takes one write fault to pull its stack over.
  const SvmAddr stack_touch = pcb.stack_base;
  pcb.fiber = std::make_unique<sim::Fiber>(
      [stack_touch, body = std::move(body)] {
        ensure_access(stack_touch, 1, svm::Access::kWrite);
        body();
      },
      config_.fiber_stack_bytes);

  stats_.bump(node_, Counter::kProcSpawns);
  IVY_EVT(stats_, record(node_, trace::EventKind::kProcSpawn, pcb.id.pcb_index));
  ++proc_count_;
  ++live_.live;
  // Creation bookkeeping occupies this node's CPU briefly.
  const Time create_from = std::max(busy_until_, sim_.now());
  busy_until_ = create_from + sim_.costs().proc_create;
  IVY_PROF(stats_, charge_busy(node_, create_from, busy_until_,
                               prof::Cat::kSchedOverhead));
  pcb.state = ProcState::kBlocked;  // make_ready flips it
  make_ready(pcb);
  return pcb.id;
}

Pcb& Scheduler::allocate_slot() {
  auto pcb = std::make_unique<Pcb>();
  pcb->id = ProcId{node_, static_cast<std::uint32_t>(slots_.size()), 0};
  slots_.push_back(std::move(pcb));
  return *slots_.back();
}

Pcb& Scheduler::pcb_of(ProcId pid) {
  IVY_CHECK_EQ(pid.home, node_);
  IVY_CHECK_LT(pid.pcb_index, slots_.size());
  return *slots_[pid.pcb_index];
}

void Scheduler::make_ready(Pcb& pcb) {
  switch (pcb.state) {
    case ProcState::kReady:
    case ProcState::kRunning:
      return;  // spurious wakeup; already runnable
    case ProcState::kBlocked:
      break;
    case ProcState::kReserved:
      // Wakeup raced ahead of the migration payload; remember it.
      pcb.pending_wakeup = true;
      return;
    case ProcState::kFinished:
      return;
    case ProcState::kMigrated:
      IVY_UNREACHABLE("make_ready on a migrated slot");
  }
  pcb.state = ProcState::kReady;
  ready_.push_front(&pcb);  // LIFO
  maybe_advertise_load();
  schedule_dispatch();
}

void Scheduler::schedule_dispatch() {
  if (dispatch_pending_ || running_ != nullptr) return;
  dispatch_pending_ = true;
  sim_.schedule_at(std::max(sim_.now(), busy_until_), [this] {
    dispatch_pending_ = false;
    dispatch();
  });
}

void Scheduler::dispatch() {
  IVY_CHECK(running_ == nullptr);
  if (ready_.empty()) {
    // "If there is no ready process available, the dispatcher runs ...
    // the null process", which waits on a timeout and runs the passive
    // load-balancing algorithm.
    maybe_arm_null_timer();
    return;
  }
  Pcb* pcb = ready_.front();
  ready_.pop_front();
  IVY_CHECK(pcb->state == ProcState::kReady);
  pcb->state = ProcState::kRunning;
  running_ = pcb;
  // Resuming the same process after a simulation-only preemption point is
  // not a real context switch; only genuine switches cost time.
  Time switch_cost = 0;
  if (pcb != last_dispatched_) {
    stats_.bump(node_, Counter::kContextSwitches);
    switch_cost = sim_.costs().context_switch;
  }
  last_dispatched_ = pcb;

  g_current_sched = this;
  g_current_pcb = pcb;
  log_internal::set_context(node_, sim_.now());
  const sim::YieldReason reason = pcb->fiber->resume();
  log_internal::clear_context();
  g_current_sched = nullptr;
  g_current_pcb = nullptr;

  const Time fiber_charge = pcb->fiber->take_charge();
  const Time svm_charge = svm_.take_pending_charge();
  const Time delta = switch_cost + fiber_charge + svm_charge;
  busy_until_ = sim_.now() + delta;
  IVY_PROF(stats_, commit_dispatch(node_, sim_.now(), switch_cost,
                                   fiber_charge, svm_charge));
  running_ = nullptr;

  switch (reason) {
    case sim::YieldReason::kBlocked: {
      pcb->state = ProcState::kBlocked;
      ++pcb->block_epoch;
      if (pcb->post_block) {
        // The blocking request is issued at the exact virtual time the
        // process reached it.
        sim_.schedule_at(busy_until_, std::exchange(pcb->post_block, nullptr));
      }
      break;
    }
    case sim::YieldReason::kQuantum:
      pcb->state = ProcState::kReady;
      // Round-robin among local runnables at preemption points (blocked
      // processes that wake re-enter at the front, per the paper's LIFO).
      ready_.push_back(pcb);
      break;
    case sim::YieldReason::kFinished:
      // The termination becomes visible when the CPU actually finished
      // the final quantum, not at the dispatch timestamp — otherwise the
      // last stretch of computed time would never appear in the clock.
      sim_.schedule_at(busy_until_, [this, pcb] { finish(*pcb); });
      break;
    case sim::YieldReason::kRunning:
      IVY_UNREACHABLE("fiber yielded without a reason");
  }
  schedule_dispatch();
}

void Scheduler::finish(Pcb& pcb) {
  IVY_EVT(stats_,
          record(node_, trace::EventKind::kProcFinish, pcb.id.pcb_index));
  pcb.state = ProcState::kFinished;
  pcb.fiber.reset();
  --proc_count_;
  --live_.live;
  IVY_CHECK_GE(live_.live, 0);
}

void Scheduler::block_current(std::function<void()> post_block) {
  Pcb* pcb = g_current_pcb;
  IVY_CHECK_MSG(pcb != nullptr, "block_current outside a process");
  IVY_CHECK(pcb->post_block == nullptr);
  pcb->post_block = std::move(post_block);
  sim::Fiber::yield(sim::YieldReason::kBlocked);
}

Scheduler* Scheduler::current_scheduler() noexcept { return g_current_sched; }
Pcb* Scheduler::current_pcb() noexcept { return g_current_pcb; }

void Scheduler::charge_current(Time t) {
  Pcb* pcb = g_current_pcb;
  IVY_CHECK_MSG(pcb != nullptr, "charge_current outside a process");
  pcb->fiber->charge(t);
  // Sole fiber-charge funnel: remember the charge under the active
  // ChargeScope category so the dispatch commit can split the busy span.
  Scheduler* sched = g_current_sched;
  IVY_PROF(sched->stats_, note_fiber_charge(sched->node_, t));
}

void Scheduler::stall(Time t) {
  const Time from = std::max(busy_until_, sim_.now());
  busy_until_ = from + t;
  // Inside a fiber the same cost also reaches the busy model through the
  // svm pending charge, which the dispatch commit attributes; charging
  // here too would double-book it.  Event-context stalls (remote disk
  // work, evictions during message service) are only visible here.
  if (running_ == nullptr) {
    IVY_PROF(stats_, charge_busy(node_, from, busy_until_, prof::Cat::kDisk));
  }
}

void Scheduler::set_migratable(bool migratable) {
  Pcb* pcb = g_current_pcb;
  IVY_CHECK_MSG(pcb != nullptr, "set_migratable outside a process");
  pcb->migratable = migratable;
}

void Scheduler::resume(ProcId pid, std::uint32_t epoch) {
  if (pid.home == node_) {
    Pcb& pcb = pcb_of(pid);
    if (pcb.state == ProcState::kMigrated) {
      // Chase the forwarding pointer.
      stats_.bump(node_, Counter::kEcRemoteWakeups);
      rpc_.request(pcb.forward_to.home, net::MsgKind::kRemoteResume,
                   ResumePayload{pcb.forward_to, epoch},
                   ResumePayload::kWireBytes, [](net::Message&&) {});
      return;
    }
    if (pcb.state == ProcState::kBlocked && epoch != pcb.block_epoch) {
      return;  // stale wakeup for an earlier wait
    }
    make_ready(pcb);
    return;
  }
  stats_.bump(node_, Counter::kEcRemoteWakeups);
  rpc_.request(pid.home, net::MsgKind::kRemoteResume,
               ResumePayload{pid, epoch}, ResumePayload::kWireBytes,
               [](net::Message&&) {});
}

void Scheduler::on_resume_msg(net::Message&& msg) {
  const auto payload = std::any_cast<ResumePayload>(msg.payload);
  IVY_CHECK_EQ(payload.target.home, node_);
  Pcb& pcb = pcb_of(payload.target);
  if (pcb.state == ProcState::kMigrated) {
    // Keep the origin so the final node acknowledges the original
    // requester directly (the paper's forwarding mechanism).
    net::Message fwd = std::move(msg);
    fwd.payload = ResumePayload{pcb.forward_to, payload.epoch};
    svm_.rpc().forward(std::move(fwd), pcb.forward_to.home);
    return;
  }
  if (!(pcb.state == ProcState::kBlocked && payload.epoch != pcb.block_epoch)) {
    make_ready(pcb);
  }
  rpc_.reply_to(msg, std::any{}, 8);
}

}  // namespace ivy::proc
