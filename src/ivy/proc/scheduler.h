// Per-node process scheduler: LIFO ready queue, dispatcher, null process
// with passive load balancing, process migration, and PID operations with
// forwarding pointers.
//
// "Each processor has a local ready queue using a last-in-first-out
// policy, that is, processes do not have priorities.  The process
// dispatcher always picks up the process in the front of the ready queue.
// If there is no ready process available, the dispatcher runs a system
// process called the null process."
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "ivy/proc/process.h"
#include "ivy/rpc/remote_op.h"
#include "ivy/svm/svm.h"

namespace ivy::proc {

struct SchedConfig {
  /// Passive load balancing thresholds on the *total* process count
  /// (ready + blocked): ask for work when below `lower`, grant work when
  /// above `upper`.  ("A better way is to use the number of processes
  /// (including both ready and suspended) controlled by thresholds.")
  int lower_threshold = 1;
  int upper_threshold = 2;
  /// Null-process timeout between load-balance probes.
  Time lb_interval = ms(50);
  /// Passive load balancing on/off (off = purely manual scheduling).
  bool load_balancing = false;
  /// SVM pages per process stack.
  std::uint32_t stack_pages = 4;
  /// Host stack bytes per fiber.
  std::size_t fiber_stack_bytes = sim::Fiber::kDefaultStackBytes;
};

/// Shared across all schedulers of a machine: global liveness so idle
/// timers stop when the computation is over.
struct LiveCounter {
  int live = 0;
};

class Scheduler {
 public:
  Scheduler(sim::Simulator& sim, rpc::RemoteOp& rpc, svm::Svm& svm,
            Stats& stats, NodeId node, const SchedConfig& config,
            LiveCounter& live, SvmAddr stack_region_base,
            std::uint32_t stack_region_pages);

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // --- process control ---------------------------------------------------

  /// Creates a ready process on this node running `body`.
  ProcId spawn(std::function<void()> body, bool migratable = true);

  /// Wakes a (possibly migrated-away) process.  Routes through forwarding
  /// pointers; `epoch` guards against stale duplicate wakeups.
  void resume(ProcId pid, std::uint32_t epoch);

  // --- primitives used from inside the running fiber ---------------------

  /// Blocks the current process; `post_block` runs at the exact virtual
  /// time the fiber yielded (use it to issue the request whose completion
  /// will resume the process).
  static void block_current(std::function<void()> post_block);

  /// Current process's scheduler/PCB (null outside any process).
  [[nodiscard]] static Scheduler* current_scheduler() noexcept;
  [[nodiscard]] static Pcb* current_pcb() noexcept;

  /// Charges virtual CPU time to the running fiber.
  static void charge_current(Time t);

  /// Marks the current process (non-)migratable at run time, as the
  /// paper's client primitive allows.
  static void set_migratable(bool migratable);

  // --- scheduler internals exposed for wiring/tests -----------------------

  void make_ready(Pcb& pcb);
  [[nodiscard]] int proc_count() const { return proc_count_; }
  [[nodiscard]] std::size_t ready_count() const { return ready_.size(); }
  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] svm::Svm& svm() { return svm_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] rpc::RemoteOp& rpc() { return rpc_; }
  [[nodiscard]] Stats& stats() { return stats_; }
  [[nodiscard]] const SchedConfig& config() const { return config_; }
  [[nodiscard]] Pcb& pcb_of(ProcId pid);
  [[nodiscard]] std::uint8_t load_hint() const {
    return static_cast<std::uint8_t>(std::min(proc_count_, 255));
  }
  [[nodiscard]] Time cpu_busy_until() const { return busy_until_; }

  /// Occupies this node's CPU for `t` starting now (disk I/O without
  /// overlap, per the paper's IVY).
  void stall(Time t);

 private:
  void schedule_dispatch();
  void dispatch();
  void finish(Pcb& pcb);
  void on_resume_msg(net::Message&& msg);
  void on_migrate_ask(net::Message&& msg);
  Pcb& allocate_slot();
  void install_transfer(Pcb& slot, PcbTransfer&& transfer);

  // load_balance.cc
  void maybe_arm_null_timer();
  void null_tick();
  void maybe_advertise_load();

  sim::Simulator& sim_;
  rpc::RemoteOp& rpc_;
  svm::Svm& svm_;
  Stats& stats_;
  NodeId node_;
  SchedConfig config_;
  LiveCounter& live_;

  std::vector<std::unique_ptr<Pcb>> slots_;
  std::deque<Pcb*> ready_;  ///< front = most recently readied (LIFO)
  Pcb* running_ = nullptr;
  Pcb* last_dispatched_ = nullptr;
  Time busy_until_ = 0;
  bool dispatch_pending_ = false;
  int proc_count_ = 0;  ///< ready + running + blocked (not finished/migrated)

  /// Last load hint heard from each node (piggybacked on messages).
  std::vector<std::uint8_t> known_load_;
  bool null_timer_armed_ = false;
  bool migrate_ask_inflight_ = false;
  bool advertise_armed_ = false;

  /// Stack-region bump allocator (node-local slice of the SVM).
  SvmAddr stack_next_;
  SvmAddr stack_end_;
};

}  // namespace ivy::proc
