// The null process and passive load balancing.
//
// "The main idea of the algorithm is to let each processor ask for work
// when it is idle using some hints. ... The processors in IVY keep each
// other up to date on their current work loads by adding a few extra bits
// to the messages transmitted for remote operations."
//
// The hint plumbing itself lives in rpc (one byte piggybacked on every
// message); this file decides when to ask whom.
#include "ivy/base/log.h"
#include "ivy/proc/scheduler.h"
#include "ivy/prof/prof.h"
#include "ivy/trace/trace.h"

namespace ivy::proc {

void Scheduler::maybe_advertise_load() {
  // Piggybacked bits only reach nodes we already talk to; a node whose
  // backlog climbs above the upper threshold advertises with the
  // remote-operation module's no-reply broadcast ("broadcasting
  // approximate information for process scheduling"), repeating while it
  // stays overloaded.
  if (!config_.load_balancing || advertise_armed_) return;
  if (proc_count_ <= config_.upper_threshold) return;
  advertise_armed_ = true;
  rpc_.broadcast(net::MsgKind::kLoadHint, std::any{}, 8,
                 rpc::BcastReply::kNone);
  sim_.schedule_after(config_.lb_interval, [this] {
    advertise_armed_ = false;
    maybe_advertise_load();
  });
}

void Scheduler::maybe_arm_null_timer() {
  if (!config_.load_balancing) return;
  if (null_timer_armed_) return;
  if (live_.live == 0) return;  // computation over; let the queue drain
  null_timer_armed_ = true;
  sim_.schedule_after(config_.lb_interval, [this] {
    null_timer_armed_ = false;
    null_tick();
  });
}

void Scheduler::null_tick() {
  if (running_ != nullptr || !ready_.empty()) return;  // no longer idle
  if (live_.live == 0) return;
  // "When such a number is less than the lower threshold, the processor
  // will try to ask for work."
  if (proc_count_ >= config_.lower_threshold || migrate_ask_inflight_) {
    maybe_arm_null_timer();
    return;
  }
  // Use the piggybacked hints to pick a donor likely to say yes: the
  // most loaded node whose last known count clears the upper threshold.
  NodeId target = kNoNode;
  int best = config_.upper_threshold;
  for (NodeId n = 0; n < known_load_.size(); ++n) {
    if (n == node_) continue;
    if (known_load_[n] > best) {
      best = known_load_[n];
      target = n;
    }
  }
  if (target == kNoNode) {
    maybe_arm_null_timer();
    return;
  }

  Pcb& slot = allocate_slot();
  slot.state = ProcState::kReserved;
  migrate_ask_inflight_ = true;
  IVY_DEBUG() << "idle node " << node_ << " asks node " << target
              << " for work (hint " << best << ")";
  // One migrate-ask in flight per node, so the wait key is constant.
  IVY_PROF(stats_, begin_wait(node_, prof::Cat::kMigration,
                              prof::Domain::kMigrate, 0, sim_.now(), target));
  rpc_.request(
      target, net::MsgKind::kMigrateAsk, MigrateAskPayload{slot.id},
      MigrateAskPayload::kWireBytes,
      [this, &slot, asked = sim_.now()](net::Message&& reply) {
        migrate_ask_inflight_ = false;
        IVY_PROF(stats_,
                 end_wait(node_, prof::Domain::kMigrate, 0, sim_.now()));
        auto payload = std::any_cast<MigrateReplyPayload>(reply.payload);
        if (payload.accepted) {
          // The migration latency is ask-to-install: PCB + stack pages
          // crossing the ring dominate it.
          const Time dur = sim_.now() - asked;
          stats_.record_latency(node_, Hist::kMigration, dur);
          IVY_EVT(stats_, record_span(node_, trace::EventKind::kMigrateIn,
                                      asked, dur, slot.id.pcb_index,
                                      reply.src));
          install_transfer(slot, std::move(*payload.transfer));
        } else {
          slot.state = ProcState::kFinished;  // reservation abandoned
        }
        maybe_arm_null_timer();
      });
}

}  // namespace ivy::proc
