#include "ivy/proc/svm_io.h"

#include <optional>

namespace ivy::proc {

void ensure_access(SvmAddr addr, std::size_t len, svm::Access want) {
  Scheduler* sched = Scheduler::current_scheduler();
  IVY_CHECK_MSG(sched != nullptr, "SVM access outside a process");
  svm::Svm& svm = sched->svm();
  const svm::Geometry& geo = svm.geometry();
  IVY_CHECK_GT(len, 0u);

  const PageId first = geo.page_of(addr);
  const PageId last = geo.page_of(addr + len - 1);
  for (;;) {
    bool faulted = false;
    for (PageId page = first; page <= last; ++page) {
      // The rights check itself is the memory reference cost.
      Scheduler::charge_current(sched->simulator().costs().mem_ref);
      while (!svm.has_access(page, want)) {
        faulted = true;
        Scheduler::charge_current(sched->simulator().costs().fault_handler);
        Pcb* pcb = Scheduler::current_pcb();
        Scheduler::block_current([sched, &svm, page, want, pcb] {
          svm.request_access(page, want,
                             [sched, pcb] { sched->make_ready(*pcb); });
        });
        // Re-check: the grant may have been revoked before we ran again.
      }
      // The access happened; release any post-fault hold on the page.
      svm.consume_grace(page);
    }
    // An access spanning pages is atomic only if every page was held
    // without an intervening block; any fault may have cost us an
    // earlier page of the span, so verify the whole run again.
    if (!faulted || first == last) return;
  }
}

void svm_read_span(SvmAddr addr, std::span<std::byte> out) {
  ensure_access(addr, out.size(), svm::Access::kRead);
  Scheduler::current_scheduler()->svm().read_bytes(addr, out);
}

void svm_write_span(SvmAddr addr, std::span<const std::byte> in) {
  ensure_access(addr, in.size(), svm::Access::kWrite);
  Scheduler::current_scheduler()->svm().write_bytes(addr, in);
}

void charge_compute(std::int64_t units) {
  Scheduler* sched = Scheduler::current_scheduler();
  IVY_CHECK_MSG(sched != nullptr, "charge_compute outside a process");
  const sim::CostModel& costs = sched->simulator().costs();
  Scheduler::charge_current(units * costs.compute_unit);
  // Compute-charge points are safe preemption points: no sync-primitive
  // page manipulation is in flight here, so letting queued events (page
  // requests, invalidations) interleave is exactly what the real machine
  // would do during a long computation.
  if (Scheduler::current_pcb()->fiber->pending_charge() >=
      costs.preempt_quantum) {
    sim::Fiber::yield(sim::YieldReason::kQuantum);
  }
}

void defer_from_fiber(std::function<void()> fn) {
  Scheduler* sched = Scheduler::current_scheduler();
  Pcb* pcb = Scheduler::current_pcb();
  IVY_CHECK_MSG(pcb != nullptr, "defer_from_fiber outside a process");
  sim::Simulator& sim = sched->simulator();
  sim.schedule_at(sim.now() + pcb->fiber->pending_charge(), std::move(fn));
}

net::Message blocking_request(NodeId dst, net::MsgKind kind, std::any payload,
                              std::uint32_t wire_bytes) {
  Scheduler* sched = Scheduler::current_scheduler();
  Pcb* pcb = Scheduler::current_pcb();
  IVY_CHECK_MSG(pcb != nullptr, "blocking_request outside a process");
  // The locals live on the fiber stack, which stays alive while blocked.
  std::optional<net::Message> result;
  Scheduler::block_current([sched, pcb, dst, kind,
                            payload = std::move(payload), wire_bytes,
                            &result]() mutable {
    sched->rpc().request(dst, kind, std::move(payload), wire_bytes,
                         [sched, pcb, &result](net::Message&& reply) {
                           result = std::move(reply);
                           sched->make_ready(*pcb);
                         });
  });
  IVY_CHECK(result.has_value());
  return std::move(*result);
}

}  // namespace ivy::proc
