// Lightweight processes and their PCBs.
//
// "All the processes in IVY are lightweight ... The stack of a process is
// allocated from the shared memory portion.  Each process has a process
// control block (PCB) ... stored in the private memory of the address
// space.  Therefore, the PID of a process is represented as a pair —
// processor number and the address of its PCB."
//
// The execution vehicle is a sim::Fiber (host stack); the SVM stack region
// is the protocol-visible stack whose pages migrate with the process.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "ivy/base/types.h"
#include "ivy/sim/fiber.h"
#include "ivy/svm/svm.h"

namespace ivy::proc {

enum class ProcState : std::uint8_t {
  kReserved,  ///< slot pre-allocated for an inbound migration
  kReady,
  kRunning,
  kBlocked,
  kFinished,
  kMigrated,  ///< moved away; the slot holds a forwarding pointer
};

[[nodiscard]] constexpr const char* to_string(ProcState s) {
  switch (s) {
    case ProcState::kReserved: return "reserved";
    case ProcState::kReady: return "ready";
    case ProcState::kRunning: return "running";
    case ProcState::kBlocked: return "blocked";
    case ProcState::kFinished: return "finished";
    case ProcState::kMigrated: return "migrated";
  }
  return "?";
}

struct Pcb {
  ProcId id;
  ProcState state = ProcState::kReserved;
  bool migratable = true;

  std::unique_ptr<sim::Fiber> fiber;

  /// SVM stack region (bookkeeping mirror of the fiber's host stack).
  SvmAddr stack_base = kNullSvmAddr;
  std::uint32_t stack_pages = 0;
  /// Index of the "current page of the process's stack" — the page whose
  /// contents must move with the process.
  std::uint32_t current_stack_page = 0;

  /// Valid when state == kMigrated: operations on this PID are forwarded.
  ProcId forward_to;

  /// Action the scheduler runs (at the correct virtual time) after the
  /// fiber yields kBlocked; set by the blocking primitive.
  std::function<void()> post_block;

  /// Incremented at every block; wakeup messages carry the epoch they
  /// target so a stale duplicate cannot wake a later, unrelated wait.
  std::uint32_t block_epoch = 0;

  /// A wakeup arrived for a reserved slot before the migration payload;
  /// applied on installation.
  bool pending_wakeup = false;
};

/// Everything needed to reincarnate a process on another node.
struct PcbTransfer {
  ProcId original;
  bool migratable = true;
  std::unique_ptr<sim::Fiber> fiber;
  SvmAddr stack_base = kNullSvmAddr;
  std::uint32_t stack_pages = 0;
  std::uint32_t current_stack_page = 0;
  std::uint32_t block_epoch = 0;
  /// Stack pages this node owned, detached for the new node; the current
  /// stack page carries its body.
  std::vector<svm::PageTransfer> pages;

  [[nodiscard]] std::uint32_t wire_bytes() const {
    std::uint32_t bytes = 256;  // PCB + bookkeeping
    for (const auto& p : pages) {
      bytes += 16 + static_cast<std::uint32_t>(p.body ? p.body->size() : 0);
    }
    return bytes;
  }
};

// --- message payloads ------------------------------------------------------

struct MigrateAskPayload {
  /// Slot the idle requester reserved for the incoming process.
  ProcId reserved;
  static constexpr std::uint32_t kWireBytes = 16;
};

struct MigrateReplyPayload {
  bool accepted = false;
  std::shared_ptr<PcbTransfer> transfer;  ///< set when accepted
};

struct ResumePayload {
  ProcId target;
  std::uint32_t epoch = 0;
  static constexpr std::uint32_t kWireBytes = 20;
};

}  // namespace ivy::proc
