// Process migration.
//
// "When a process is migrated, a forwarding pointer is put into its PCB
// ... a process migration must: send the PCB of the process to the
// destination processor ..., copy the current page of the process's stack
// ... and transfer the ownership of the page, transfer the ownership of
// all the pages in the upper portion of the stack ..., and put the PCB in
// the ready queue on the destination processor."
//
// The pull side (an idle node asking for work) lives in load_balance.cc;
// this file implements the grant/refuse decision and reincarnation.
#include "ivy/base/log.h"
#include "ivy/proc/scheduler.h"
#include "ivy/trace/trace.h"

namespace ivy::proc {

void Scheduler::on_migrate_ask(net::Message&& msg) {
  const auto ask = std::any_cast<MigrateAskPayload>(msg.payload);

  auto refuse = [&] {
    stats_.bump(node_, Counter::kMigrationRejects);
    rpc_.reply_to(msg, MigrateReplyPayload{}, 16);
  };

  // "When such a number is greater than the upper threshold, the
  // processor will migrate processes to other processors upon requests."
  if (proc_count_ <= config_.upper_threshold) {
    refuse();
    return;
  }
  // Oldest ready migratable process (back of the LIFO queue): it has
  // waited longest and its working set is least likely to be hot here.
  auto victim_it = ready_.end();
  for (auto it = ready_.rbegin(); it != ready_.rend(); ++it) {
    if ((*it)->migratable) {
      victim_it = std::prev(it.base());
      break;
    }
  }
  if (victim_it == ready_.end()) {
    refuse();
    return;
  }
  Pcb& victim = **victim_it;
  ready_.erase(victim_it);

  auto transfer = std::make_shared<PcbTransfer>();
  transfer->original = victim.id;
  transfer->migratable = victim.migratable;
  transfer->fiber = std::move(victim.fiber);
  transfer->stack_base = victim.stack_base;
  transfer->stack_pages = victim.stack_pages;
  transfer->current_stack_page = victim.current_stack_page;
  transfer->block_epoch = victim.block_epoch;

  // Stack handoff: ownership of every stack page we own moves directly
  // ("only requires setting the protection bits"); the current page also
  // carries its contents so the destination dispatcher does not fault.
  const auto& geo = svm_.geometry();
  for (std::uint32_t i = 0; i < victim.stack_pages; ++i) {
    const PageId page =
        geo.page_of(victim.stack_base + static_cast<SvmAddr>(i) * geo.page_size);
    if (!svm_.owns(page)) continue;  // never touched or owned elsewhere
    if (svm_.table().at(page).fault_in_progress) continue;  // busy; leave it
    const bool with_body = i == victim.current_stack_page;
    transfer->pages.push_back(svm_.detach_page(page, msg.origin, with_body));
  }

  victim.state = ProcState::kMigrated;
  victim.forward_to = ask.reserved;
  --proc_count_;
  stats_.bump(node_, Counter::kMigrations);
  IVY_EVT(stats_, record(node_, trace::EventKind::kMigrateOut,
                         victim.id.pcb_index, msg.origin));
  IVY_DEBUG() << "node " << node_ << " migrates proc " << victim.id.pcb_index
              << " to node " << msg.origin;

  MigrateReplyPayload reply;
  reply.accepted = true;
  reply.transfer = std::move(transfer);
  rpc_.reply_to(msg, reply, reply.transfer->wire_bytes());
}

void Scheduler::install_transfer(Pcb& slot, PcbTransfer&& transfer) {
  IVY_CHECK(slot.state == ProcState::kReserved);
  slot.migratable = transfer.migratable;
  slot.fiber = std::move(transfer.fiber);
  slot.stack_base = transfer.stack_base;
  slot.stack_pages = transfer.stack_pages;
  slot.current_stack_page = transfer.current_stack_page;
  slot.block_epoch = transfer.block_epoch;
  for (const svm::PageTransfer& page : transfer.pages) {
    svm_.adopt_page(page);
  }
  ++proc_count_;
  slot.state = ProcState::kBlocked;
  slot.pending_wakeup = false;  // it becomes ready right away anyway
  make_ready(slot);
}

}  // namespace ivy::proc
