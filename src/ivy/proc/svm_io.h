// Blocking shared-virtual-memory access from inside a process.
//
// This is the moral equivalent of the MMU + fault-handler path: every
// reference checks the local page table (one mem_ref of virtual time);
// a miss charges the fault-handler overhead, blocks the process, and lets
// the memory mapping manager run the coherence protocol.  Access can be
// revoked between the grant and the process actually running again, so
// the ensure loop re-checks.
#pragma once

#include <cstring>
#include <span>

#include "ivy/proc/scheduler.h"

namespace ivy::proc {

/// Ensures `want` access to the page holding `addr`..`addr+len` (may span
/// pages).  Must be called from inside a process.
void ensure_access(SvmAddr addr, std::size_t len, svm::Access want);

/// Typed read at `addr`.  T must be trivially copyable.
template <typename T>
[[nodiscard]] T svm_read(SvmAddr addr) {
  static_assert(std::is_trivially_copyable_v<T>);
  ensure_access(addr, sizeof(T), svm::Access::kRead);
  T value;
  Scheduler::current_scheduler()->svm().read_bytes(
      addr, std::as_writable_bytes(std::span(&value, 1)));
  return value;
}

/// Typed write at `addr`.
template <typename T>
void svm_write(SvmAddr addr, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  ensure_access(addr, sizeof(T), svm::Access::kWrite);
  Scheduler::current_scheduler()->svm().write_bytes(
      addr, std::as_bytes(std::span(&value, 1)));
}

/// Bulk variants (one rights check per touched page, one byte copy).
void svm_read_span(SvmAddr addr, std::span<std::byte> out);
void svm_write_span(SvmAddr addr, std::span<const std::byte> in);

/// Charges `units` of application compute to the running process.
void charge_compute(std::int64_t units);

/// Schedules `fn` at the running process's *current* virtual time (the
/// dispatch time plus CPU consumed so far).  Used by primitives that must
/// emit messages mid-execution (e.g. eventcount wakeups) without waiting
/// for the next yield.
void defer_from_fiber(std::function<void()> fn);

/// Synchronous remote operation from inside a process: sends the request,
/// blocks the process, returns the reply.
[[nodiscard]] net::Message blocking_request(NodeId dst, net::MsgKind kind,
                                            std::any payload,
                                            std::uint32_t wire_bytes);

}  // namespace ivy::proc
