// ivy::oracle — online coherence invariant checker.
//
// A global observer outside the simulated machines: it subscribes to the
// SVM layer's state transitions (svm::CoherenceObserver), keeps a tiny
// reference model of where each page's ownership token *should* be, and
// after every state-changing transition re-checks the protocol
// invariants across all nodes at zero simulated cost:
//
//   1. exactly one owner per page (two transiently during a confirmed
//      two-phase transfer, zero while a migration handoff is in flight);
//   2. writer exclusivity: a node with write access is the owner and no
//      other node holds any access;
//   3. copyset coverage: every node with read access is reachable from
//      an owner through copyset edges (the owner's copyset — a tree with
//      distributed copysets — is a superset of the actual readers);
//   4. invalidations are never lost: once a page is quiescent, no
//      non-owner holds access at a version older than the owner's;
//   5. probOwner chains are acyclic and terminate at the true owner when
//      the page is quiescent (plus a chain-length distribution, the
//      paper's key claim about the dynamic manager);
//   6. the two-phase transfer protocol itself: grants, acks, aborts and
//      migration handoffs pair up and carry matching versions;
//   7. content integrity: the page image installed after a transfer
//      matches the image the source shipped at that version
//      (FNV-1a checksums).
//
// Violations carry a bounded window of the most recent observed events.
// Mode::kStrict aborts on the first violation; Mode::kWarn logs the
// first few and keeps counters.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ivy/svm/observer.h"

namespace ivy::oracle {

enum class Mode : std::uint8_t {
  kOff = 0,  ///< no oracle (no observer installed, zero overhead)
  kWarn,     ///< count violations, log the first few
  kStrict,   ///< abort on the first violation with event context
};

[[nodiscard]] const char* to_string(Mode mode);
/// Parses "off" / "warn" / "strict"; returns false on anything else.
[[nodiscard]] bool parse_mode(std::string_view text, Mode* out);

enum class Invariant : std::uint8_t {
  kSingleOwner = 0,   ///< owner-token count differs from the model
  kWriterExclusive,   ///< writer coexists with another mapping
  kCopysetCoverage,   ///< reader not covered by the owner's copy tree
  kChainTermination,  ///< probOwner chain cycles / misses the owner
  kLostInvalidation,  ///< stale mapping survived an invalidation round
  kContentIntegrity,  ///< received page image differs from the source
  kTransferProtocol,  ///< unpaired/mismatched transfer or migration step
  kCount              // sentinel
};

inline constexpr std::size_t kInvariantCount =
    static_cast<std::size_t>(Invariant::kCount);

[[nodiscard]] const char* to_string(Invariant inv);

/// Distribution of owner-location hops per fault (forwards between the
/// faulting node's request and its grant).  Index = hop count; the last
/// bucket aggregates everything >= its index.
struct ChainHistogram {
  static constexpr std::size_t kBuckets = 17;
  std::array<std::uint64_t, kBuckets> counts{};
  std::uint64_t faults = 0;
  std::uint64_t total_hops = 0;
  std::uint64_t max_hops = 0;

  void add(std::uint64_t hops);
  [[nodiscard]] double mean() const {
    return faults == 0 ? 0.0
                       : static_cast<double>(total_hops) /
                             static_cast<double>(faults);
  }
};

class Oracle final : public svm::CoherenceObserver {
 public:
  Oracle(Mode mode, NodeId nodes, PageId num_pages, NodeId initial_owner);

  /// Wires the virtual clock used to stamp the event context window.
  void set_clock(std::function<Time()> clock) { clock_ = std::move(clock); }

  // --- results ------------------------------------------------------------

  [[nodiscard]] Mode mode() const { return mode_; }
  [[nodiscard]] std::uint64_t violations(Invariant inv) const {
    return violations_[static_cast<std::size_t>(inv)];
  }
  [[nodiscard]] std::uint64_t total_violations() const;
  [[nodiscard]] std::uint64_t checks() const { return checks_; }
  [[nodiscard]] std::uint64_t content_checks() const {
    return content_checks_;
  }
  [[nodiscard]] const ChainHistogram& chain_histogram() const {
    return chains_;
  }
  /// One-line summary (mode, checks, violations, chain stats).
  [[nodiscard]] std::string brief() const;
  /// Multi-line report: summary, per-invariant counts, first recorded
  /// violation details, chain-length distribution.
  [[nodiscard]] std::string report() const;
  /// The bounded recent-event context window, newest last.
  [[nodiscard]] std::string recent_events() const;

  /// Full-strength audit once the machine is quiescent (after drain()):
  /// every transient state must have settled, every page must pass the
  /// steady-state invariants.
  void final_audit();

  // --- CoherenceObserver --------------------------------------------------

  void attach(svm::Svm* svm) override;
  void on_fault_start(NodeId node, PageId page, svm::Access want) override;
  void on_fault_complete(NodeId node, PageId page, svm::Access level) override;
  void on_forward(NodeId node, PageId page, NodeId next, NodeId origin,
                  bool write_fault) override;
  void on_read_served(NodeId server, PageId page, NodeId reader) override;
  void on_write_served(NodeId owner, PageId page, NodeId to,
                       std::uint64_t version) override;
  void on_ownership_gained(NodeId node, PageId page, NodeId from,
                           std::uint64_t version) override;
  void on_ownership_released(NodeId node, PageId page, NodeId to,
                             std::uint64_t version) override;
  void on_transfer_aborted(NodeId node, PageId page,
                           std::uint64_t version) override;
  void on_page_detached(NodeId node, PageId page, NodeId new_owner,
                        std::uint64_t version) override;
  void on_page_adopted(NodeId node, PageId page,
                       std::uint64_t version) override;
  void on_invalidate_round(NodeId node, PageId page, std::uint64_t version,
                           int copies) override;
  void on_invalidate_round_done(NodeId node, PageId page,
                                std::uint64_t version) override;
  void on_copy_dropped(NodeId node, PageId page, NodeId new_owner,
                       std::uint64_t version) override;
  void on_page_content(NodeId node, PageId page, std::uint64_t version,
                       std::span<const std::byte> bytes,
                       bool at_source) override;

 private:
  /// One open two-phase ownership transfer.  Transfers *chain*: the new
  /// owner may serve the next write fault before the previous owner has
  /// processed the accept-ack and released, so several can be open on
  /// one page at once — each grantor still holds the token until its
  /// release lands.
  struct Transfer {
    NodeId from = kNoNode;
    NodeId to = kNoNode;
    std::uint64_t version = 0;
    bool gained = false;              ///< new owner confirmed the grant
  };

  /// Reference model of one page's ownership-token location.
  struct PageModel {
    NodeId owner = kNoNode;           ///< most-recent confirmed holder
    std::uint64_t version = 0;        ///< highest version observed
    bool migrating = false;           ///< token detached, adopt pending
    NodeId migrate_to = kNoNode;
    std::vector<Transfer> transfers;  ///< open two-phase transfers
    int inval_rounds = 0;             ///< invalidation rounds in flight
    std::uint64_t content_version = 0;
    std::uint64_t content_checksum = 0;
    bool has_checksum = false;
  };

  struct Observed {
    Time at = 0;
    NodeId node = kNoNode;
    PageId page = kNoPage;
    const char* what = "";
    std::uint64_t a = 0;
    std::uint64_t b = 0;
  };

  void note(NodeId node, PageId page, const char* what, std::uint64_t a = 0,
            std::uint64_t b = 0);
  void violate(Invariant inv, PageId page, const std::string& detail);
  /// Re-checks the cross-node invariants of one page against the model.
  /// `final_pass` demands full quiescence instead of gating the
  /// steady-state checks on it.
  void check_page(PageId page, bool final_pass);
  [[nodiscard]] std::string dump_page(PageId page) const;
  [[nodiscard]] Time now() const { return clock_ ? clock_() : 0; }
  [[nodiscard]] static std::uint64_t fault_key(NodeId node, PageId page) {
    return (static_cast<std::uint64_t>(node) << 32) | page;
  }

  Mode mode_;
  NodeId nodes_;
  NodeId initial_owner_;
  std::vector<svm::Svm*> svms_;
  std::vector<PageModel> pages_;
  std::function<Time()> clock_;

  std::array<std::uint64_t, kInvariantCount> violations_{};
  std::vector<std::string> violation_log_;  ///< first few, with context
  std::deque<Observed> recent_;             ///< bounded context window
  std::uint64_t checks_ = 0;
  std::uint64_t content_checks_ = 0;

  std::unordered_map<std::uint64_t, std::uint64_t> fault_hops_;
  ChainHistogram chains_;
};

}  // namespace ivy::oracle
