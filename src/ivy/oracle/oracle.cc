#include "ivy/oracle/oracle.h"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <utility>

#include "ivy/base/log.h"
#include "ivy/svm/svm.h"

namespace ivy::oracle {
namespace {

/// How many violation reports keep their full context; beyond this only
/// the counters grow (warn mode can trip the same check millions of
/// times).
constexpr std::size_t kViolationLogCapacity = 16;
/// Bounded recent-event context window attached to violations.
constexpr std::size_t kRecentCapacity = 64;

std::uint64_t fnv1a(std::span<const std::byte> bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

const char* to_string(Mode mode) {
  switch (mode) {
    case Mode::kOff: return "off";
    case Mode::kWarn: return "warn";
    case Mode::kStrict: return "strict";
  }
  return "?";
}

bool parse_mode(std::string_view text, Mode* out) {
  if (text == "off") {
    *out = Mode::kOff;
  } else if (text == "warn") {
    *out = Mode::kWarn;
  } else if (text == "strict") {
    *out = Mode::kStrict;
  } else {
    return false;
  }
  return true;
}

const char* to_string(Invariant inv) {
  switch (inv) {
    case Invariant::kSingleOwner: return "single_owner";
    case Invariant::kWriterExclusive: return "writer_exclusive";
    case Invariant::kCopysetCoverage: return "copyset_coverage";
    case Invariant::kChainTermination: return "chain_termination";
    case Invariant::kLostInvalidation: return "lost_invalidation";
    case Invariant::kContentIntegrity: return "content_integrity";
    case Invariant::kTransferProtocol: return "transfer_protocol";
    case Invariant::kCount: break;
  }
  return "?";
}

void ChainHistogram::add(std::uint64_t hops) {
  ++faults;
  total_hops += hops;
  max_hops = std::max(max_hops, hops);
  ++counts[std::min<std::uint64_t>(hops, kBuckets - 1)];
}

Oracle::Oracle(Mode mode, NodeId nodes, PageId num_pages,
               NodeId initial_owner)
    : mode_(mode), nodes_(nodes), initial_owner_(initial_owner) {
  IVY_CHECK(mode != Mode::kOff);
  IVY_CHECK_GT(nodes, 0u);
  svms_.reserve(nodes);
  pages_.resize(num_pages);
  for (PageModel& m : pages_) m.owner = initial_owner;
}

void Oracle::attach(svm::Svm* svm) {
  IVY_CHECK(svm != nullptr);
  IVY_CHECK_EQ(svm->self(), static_cast<NodeId>(svms_.size()));
  IVY_CHECK_EQ(svm->geometry().num_pages, pages_.size());
  svms_.push_back(svm);
}

std::uint64_t Oracle::total_violations() const {
  std::uint64_t total = 0;
  for (const std::uint64_t v : violations_) total += v;
  return total;
}

void Oracle::note(NodeId node, PageId page, const char* what, std::uint64_t a,
                  std::uint64_t b) {
  if (recent_.size() >= kRecentCapacity) recent_.pop_front();
  recent_.push_back(Observed{now(), node, page, what, a, b});
}

std::string Oracle::recent_events() const {
  std::ostringstream os;
  os << "recent events (oldest first, window of " << kRecentCapacity
     << "):\n";
  for (const Observed& o : recent_) {
    os << "  t=" << o.at << " node=" << o.node << " page=" << o.page << ' '
       << o.what << " a=" << o.a << " b=" << o.b << '\n';
  }
  return os.str();
}

std::string Oracle::dump_page(PageId page) const {
  std::ostringstream os;
  if (page < pages_.size()) {
    const PageModel& m = pages_[page];
    os << "model: owner=" << m.owner << " version=" << m.version
       << " open_transfers=" << m.transfers.size();
    for (const Transfer& t : m.transfers) {
      os << " (from=" << t.from << " to=" << t.to << " ver=" << t.version
         << " gained=" << t.gained << ')';
    }
    os << " migrating=" << m.migrating << " inval_rounds=" << m.inval_rounds
       << '\n';
  }
  for (NodeId n = 0; n < static_cast<NodeId>(svms_.size()); ++n) {
    const svm::PageEntry& e = svms_[n]->table().at(page);
    if (!e.owned && e.access == svm::Access::kNil && !e.busy() &&
        e.copyset.empty()) {
      continue;
    }
    os << "  node " << n << ": access=" << svm::to_string(e.access)
       << " owned=" << e.owned << " probOwner=" << e.prob_owner
       << " version=" << e.version << " copyset=0x" << std::hex
       << e.copyset.raw() << std::dec << " busy=" << e.busy()
       << " on_disk=" << e.on_disk << '\n';
  }
  return os.str();
}

void Oracle::violate(Invariant inv, PageId page, const std::string& detail) {
  ++violations_[static_cast<std::size_t>(inv)];
  std::ostringstream os;
  os << to_string(inv) << " t=" << now() << " page " << page << ": "
     << detail;
  const std::string line = os.str();
  if (violation_log_.size() < kViolationLogCapacity) {
    violation_log_.push_back(line + '\n' + dump_page(page) + recent_events());
  }
  if (mode_ == Mode::kStrict) {
    IVY_WARN() << "coherence oracle violation:\n"
               << line << '\n'
               << dump_page(page) << recent_events();
    IVY_CHECK_MSG(false, "coherence oracle (strict): " << line);
  }
  if (total_violations() <= 8) {
    IVY_WARN() << "coherence oracle: " << line;
  }
}

void Oracle::check_page(PageId page, bool final_pass) {
  if (svms_.size() < nodes_) return;  // machine still booting
  ++checks_;
  const PageModel& m = pages_[page];

  int owners = 0;
  int writers = 0;
  int mapped = 0;
  bool any_busy = false;
  NodeId owner_node = kNoNode;
  NodeSet owned_set;
  for (NodeId n = 0; n < nodes_; ++n) {
    const svm::PageEntry& e = svms_[n]->table().at(page);
    if (e.owned) {
      ++owners;
      owner_node = n;
      owned_set.add(n);
    }
    if (e.access != svm::Access::kNil) ++mapped;
    if (e.access == svm::Access::kWrite) {
      ++writers;
      if (!e.owned) {
        std::ostringstream os;
        os << "node " << n << " holds write access without ownership";
        violate(Invariant::kWriterExclusive, page, os.str());
      }
    }
    any_busy = any_busy || e.busy();
  }

  if (final_pass) {
    if (!m.transfers.empty()) {
      violate(Invariant::kTransferProtocol, page,
              "two-phase transfer still open after drain");
    }
    if (m.migrating) {
      violate(Invariant::kTransferProtocol, page,
              "migration handoff still in flight after drain");
    }
    if (m.inval_rounds != 0) {
      violate(Invariant::kTransferProtocol, page,
              "invalidation round unfinished after drain");
    }
    if (any_busy) {
      violate(Invariant::kTransferProtocol, page,
              "page still protocol-busy after drain");
    }
  }

  // 1. Owner-token count.  The token is conserved: exactly one holder,
  // except one extra for every confirmed two-phase transfer awaiting its
  // ack (transfers chain — each grantor holds on until its release
  // lands) and zero while a migration handoff carries it between nodes.
  int expected = 1;
  if (!final_pass) {
    if (m.migrating) {
      expected = 0;
    } else {
      for (const Transfer& t : m.transfers) {
        if (t.gained) ++expected;
      }
    }
  }
  if (owners != expected) {
    std::ostringstream os;
    os << owners << " owners (expected " << expected << ")";
    violate(Invariant::kSingleOwner, page, os.str());
  }

  // 2. Writer exclusivity: a writer shares the page with nobody.
  if (writers > 0 && mapped > 1) {
    std::ostringstream os;
    os << writers << " writer(s) coexist with " << (mapped - writers)
       << " other mapping(s)";
    violate(Invariant::kWriterExclusive, page, os.str());
  }

  // 3. Copyset coverage: every read-mapped node is reachable from an
  // owner through copyset edges (flat set normally, a tree with
  // distributed copysets).  The copyset may transiently be a *superset*
  // of the actual readers — never a subset.
  if (owners > 0) {
    NodeSet reachable = owned_set;
    for (NodeId round = 0; round < nodes_; ++round) {
      NodeSet next = reachable;
      reachable.for_each([&](NodeId n) {
        next |= svms_[n]->table().at(page).copyset;
      });
      if (next == reachable) break;
      reachable = next;
    }
    for (NodeId n = 0; n < nodes_; ++n) {
      const svm::PageEntry& e = svms_[n]->table().at(page);
      if (e.access != svm::Access::kNil && !e.owned &&
          !reachable.contains(n)) {
        std::ostringstream os;
        os << "reader " << n << " is not covered by any owner's copy tree";
        violate(Invariant::kCopysetCoverage, page, os.str());
      }
    }
  }

  // 4 + 5 need a settled page: no transfer/migration/invalidation in
  // flight and no node mid-fault on it (hint chains and copy versions
  // are legitimately transitional while the protocol is working).
  const bool quiescent = m.transfers.empty() && !m.migrating &&
                         m.inval_rounds == 0 && !any_busy && owners == 1;
  if ((quiescent || final_pass) && owner_node != kNoNode) {
    if (m.owner != owner_node && m.transfers.empty() && !m.migrating) {
      std::ostringstream os;
      os << "owner token at node " << owner_node << " but the model placed "
         << "it at node " << m.owner;
      violate(Invariant::kSingleOwner, page, os.str());
    }

    // 4. No lost invalidations: a non-owner mapping at a version older
    // than the owner's survived a round that should have dropped it.
    const std::uint64_t owner_version =
        svms_[owner_node]->table().at(page).version;
    for (NodeId n = 0; n < nodes_; ++n) {
      if (n == owner_node) continue;
      const svm::PageEntry& e = svms_[n]->table().at(page);
      if (e.access != svm::Access::kNil && e.version < owner_version) {
        std::ostringstream os;
        os << "node " << n << " still maps version " << e.version
           << " but the owner is at version " << owner_version;
        violate(Invariant::kLostInvalidation, page, os.str());
      }
    }

    // 5. probOwner chains terminate at the true owner, acyclically.
    for (NodeId n = 0; n < nodes_; ++n) {
      NodeId cursor = n;
      NodeId hops = 0;
      while (cursor != owner_node) {
        cursor = svms_[cursor]->table().at(page).prob_owner;
        if (++hops > nodes_) {
          std::ostringstream os;
          os << "probOwner chain from node " << n
             << " does not reach the owner (node " << owner_node << ")";
          violate(Invariant::kChainTermination, page, os.str());
          break;
        }
      }
    }
  }
}

void Oracle::final_audit() {
  for (PageId p = 0; p < static_cast<PageId>(pages_.size()); ++p) {
    check_page(p, /*final_pass=*/true);
  }
}

// --- observer hooks --------------------------------------------------------

void Oracle::on_fault_start(NodeId node, PageId page, svm::Access want) {
  note(node, page, "fault_start", static_cast<std::uint64_t>(want));
  fault_hops_[fault_key(node, page)] = 0;
}

void Oracle::on_fault_complete(NodeId node, PageId page, svm::Access level) {
  note(node, page, "fault_complete", static_cast<std::uint64_t>(level));
  if (auto it = fault_hops_.find(fault_key(node, page));
      it != fault_hops_.end()) {
    chains_.add(it->second);
    fault_hops_.erase(it);
  }
  check_page(page, false);
}

void Oracle::on_forward(NodeId node, PageId page, NodeId next, NodeId origin,
                        bool write_fault) {
  note(node, page, write_fault ? "forward_write" : "forward_read", next,
       origin);
  if (auto it = fault_hops_.find(fault_key(origin, page));
      it != fault_hops_.end()) {
    ++it->second;
  }
}

void Oracle::on_read_served(NodeId server, PageId page, NodeId reader) {
  note(server, page, "read_served", reader);
  check_page(page, false);
}

void Oracle::on_write_served(NodeId owner, PageId page, NodeId to,
                             std::uint64_t version) {
  note(owner, page, "write_served", to, version);
  PageModel& m = pages_[page];
  if (m.migrating) {
    violate(Invariant::kTransferProtocol, page,
            "write grant served during a migration handoff");
  }
  if (m.owner != kNoNode && m.owner != owner) {
    std::ostringstream os;
    os << "write grant served by node " << owner
       << " but the model places the owner at node " << m.owner;
    violate(Invariant::kTransferProtocol, page, os.str());
  }
  // Transfers chain: earlier grantors may still await their release
  // acks, but the *serving* node must be the chain's head — it cannot
  // have an outgoing grant open, nor serve before confirming its own.
  for (const Transfer& t : m.transfers) {
    if (t.from == owner) {
      violate(Invariant::kTransferProtocol, page,
              "node served a second write grant before releasing the first");
    } else if (t.to == owner && !t.gained) {
      violate(Invariant::kTransferProtocol, page,
              "node served a write grant before confirming its own");
    }
  }
  m.transfers.push_back(Transfer{owner, to, version, false});
  m.version = std::max(m.version, version);
  check_page(page, false);
}

void Oracle::on_ownership_gained(NodeId node, PageId page, NodeId from,
                                 std::uint64_t version) {
  note(node, page, "ownership_gained", from, version);
  PageModel& m = pages_[page];
  auto it = std::find_if(m.transfers.begin(), m.transfers.end(),
                         [&](const Transfer& t) {
                           return t.to == node && t.from == from &&
                                  t.version == version && !t.gained;
                         });
  if (it == m.transfers.end()) {
    std::ostringstream os;
    os << "node " << node << " gained ownership at version " << version
       << " without a matching open transfer";
    violate(Invariant::kTransferProtocol, page, os.str());
  } else {
    it->gained = true;
    m.owner = node;  // the token's confirmed holder moves with the grant
  }
  m.version = std::max(m.version, version);
  check_page(page, false);
}

void Oracle::on_ownership_released(NodeId node, PageId page, NodeId to,
                                   std::uint64_t version) {
  note(node, page, "ownership_released", to, version);
  PageModel& m = pages_[page];
  auto it = std::find_if(m.transfers.begin(), m.transfers.end(),
                         [&](const Transfer& t) {
                           return t.from == node && t.to == to &&
                                  t.version == version;
                         });
  if (it == m.transfers.end()) {
    std::ostringstream os;
    os << "node " << node << " released ownership at version " << version
       << " without a matching open transfer";
    violate(Invariant::kTransferProtocol, page, os.str());
  } else {
    if (!it->gained) {
      violate(Invariant::kTransferProtocol, page,
              "transfer completed before the new owner confirmed the grant");
    }
    m.transfers.erase(it);
  }
  m.version = std::max(m.version, version);
  check_page(page, false);
}

void Oracle::on_transfer_aborted(NodeId node, PageId page,
                                 std::uint64_t version) {
  note(node, page, "transfer_aborted", version);
  PageModel& m = pages_[page];
  auto it = std::find_if(m.transfers.begin(), m.transfers.end(),
                         [&](const Transfer& t) {
                           return t.from == node && t.version == version;
                         });
  if (it == m.transfers.end()) {
    violate(Invariant::kTransferProtocol, page,
            "abort without a matching open transfer");
  } else {
    if (it->gained) {
      // The ring is FIFO, so a reject ack can never overtake the accept
      // of the same grant; an abort after the new owner mapped the page
      // would leave two permanent owners.
      violate(Invariant::kTransferProtocol, page,
              "transfer aborted after the new owner confirmed the grant");
    }
    m.transfers.erase(it);
  }
  check_page(page, false);
}

void Oracle::on_page_detached(NodeId node, PageId page, NodeId new_owner,
                              std::uint64_t version) {
  note(node, page, "page_detached", new_owner, version);
  PageModel& m = pages_[page];
  if (!m.transfers.empty() || m.migrating) {
    violate(Invariant::kTransferProtocol, page,
            "migration handoff during another transfer");
  }
  if (m.owner != kNoNode && m.owner != node) {
    std::ostringstream os;
    os << "node " << node << " detached a page the model places at node "
       << m.owner;
    violate(Invariant::kTransferProtocol, page, os.str());
  }
  m.migrating = true;
  m.migrate_to = new_owner;
  m.version = std::max(m.version, version);
  check_page(page, false);
}

void Oracle::on_page_adopted(NodeId node, PageId page,
                             std::uint64_t version) {
  note(node, page, "page_adopted", version);
  PageModel& m = pages_[page];
  if (!m.migrating || m.migrate_to != node || m.version != version) {
    std::ostringstream os;
    os << "node " << node << " adopted at version " << version
       << " without a matching detach";
    violate(Invariant::kTransferProtocol, page, os.str());
  }
  m.migrating = false;
  m.migrate_to = kNoNode;
  m.owner = node;
  m.version = std::max(m.version, version);
  check_page(page, false);
}

void Oracle::on_invalidate_round(NodeId node, PageId page,
                                 std::uint64_t version, int copies) {
  note(node, page, "invalidate_round", version,
       static_cast<std::uint64_t>(copies));
  PageModel& m = pages_[page];
  ++m.inval_rounds;
  m.version = std::max(m.version, version);
}

void Oracle::on_invalidate_round_done(NodeId node, PageId page,
                                      std::uint64_t version) {
  note(node, page, "invalidate_round_done", version);
  PageModel& m = pages_[page];
  if (m.inval_rounds == 0) {
    violate(Invariant::kTransferProtocol, page,
            "invalidation round completed that never started");
  } else {
    --m.inval_rounds;
  }
  check_page(page, false);
}

void Oracle::on_copy_dropped(NodeId node, PageId page, NodeId new_owner,
                             std::uint64_t version) {
  note(node, page, "copy_dropped", new_owner, version);
  PageModel& m = pages_[page];
  m.version = std::max(m.version, version);
  check_page(page, false);
}

void Oracle::on_page_content(NodeId node, PageId page, std::uint64_t version,
                             std::span<const std::byte> bytes,
                             bool at_source) {
  note(node, page, at_source ? "content_source" : "content_sink", version,
       bytes.size());
  PageModel& m = pages_[page];
  if (at_source) {
    m.content_version = version;
    m.content_checksum = fnv1a(bytes);
    m.has_checksum = true;
    return;
  }
  if (!m.has_checksum || m.content_version != version) return;
  ++content_checks_;
  if (fnv1a(bytes) != m.content_checksum) {
    std::ostringstream os;
    os << "image installed at node " << node << " (version " << version
       << ") differs from the source's checksum";
    violate(Invariant::kContentIntegrity, page, os.str());
  }
}

// --- reporting -------------------------------------------------------------

std::string Oracle::brief() const {
  std::ostringstream os;
  os << "oracle[" << to_string(mode_) << "]: " << total_violations()
     << " violations, " << checks_ << " checks, " << content_checks_
     << " content checks; chain hops mean=" << chains_.mean()
     << " max=" << chains_.max_hops << " (" << chains_.faults << " faults)";
  return os.str();
}

std::string Oracle::report() const {
  std::ostringstream os;
  os << brief() << '\n';
  for (std::size_t i = 0; i < kInvariantCount; ++i) {
    if (violations_[i] == 0) continue;
    os << "  " << to_string(static_cast<Invariant>(i)) << ": "
       << violations_[i] << '\n';
  }
  os << "  chain-length distribution (hops: faults):";
  for (std::size_t i = 0; i < ChainHistogram::kBuckets; ++i) {
    if (chains_.counts[i] == 0) continue;
    os << ' ' << i << (i + 1 == ChainHistogram::kBuckets ? "+" : "") << ':'
       << chains_.counts[i];
  }
  os << '\n';
  for (const std::string& v : violation_log_) {
    os << "violation: " << v << '\n';
  }
  return os.str();
}

}  // namespace ivy::oracle
