// Stackful coroutines — the execution vehicle for IVY lightweight
// processes.
//
// The paper's processes are "lightweight": they share one address space
// and a context switch costs a few procedure calls.  We realize them as
// ucontext-based fibers driven by the single-threaded simulator.  A fiber
// runs host code (the application kernel) until it performs an operation
// that must be serialized with the rest of the simulated machine — a page
// fault, an eventcount wait, an explicit yield — at which point it
// switches back to the scheduler, carrying a YieldReason.
//
// The whole simulation is single-threaded, so fibers are cooperatively
// scheduled and runs are deterministic.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <ucontext.h>

#include "ivy/base/types.h"

namespace ivy::sim {

/// Why a fiber handed control back to the scheduler.
enum class YieldReason : std::uint8_t {
  kRunning,   ///< not yielded (internal initial state)
  kBlocked,   ///< waiting on an external completion (fault, eventcount)
  kQuantum,   ///< voluntary preemption point; still runnable
  kFinished,  ///< fiber body returned
};

/// A stackful coroutine.  Non-copyable, non-movable (the running context
/// stores pointers into the object).
class Fiber {
 public:
  using Body = std::function<void()>;

  explicit Fiber(Body body, std::size_t stack_bytes = kDefaultStackBytes);
  ~Fiber();
  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Switches from the scheduler into the fiber; returns the reason the
  /// fiber yielded.  Must not be called from inside any fiber, and must
  /// not be called again after kFinished.
  YieldReason resume();

  /// Yields from inside the currently running fiber back to its resumer.
  /// kFinished is reserved for internal use.
  static void yield(YieldReason reason);

  /// The fiber currently executing, or nullptr when the scheduler runs.
  [[nodiscard]] static Fiber* current() noexcept;

  [[nodiscard]] bool finished() const noexcept {
    return last_reason_ == YieldReason::kFinished;
  }
  [[nodiscard]] YieldReason last_reason() const noexcept {
    return last_reason_;
  }

  /// Accumulates virtual CPU time consumed since the last yield.  The
  /// scheduler drains this when the fiber yields and advances the node
  /// clock, so all externally visible actions carry exact timestamps.
  void charge(Time t) noexcept { pending_charge_ += t; }
  [[nodiscard]] Time take_charge() noexcept {
    Time t = pending_charge_;
    pending_charge_ = 0;
    return t;
  }
  [[nodiscard]] Time pending_charge() const noexcept { return pending_charge_; }

  static constexpr std::size_t kDefaultStackBytes = 256 * 1024;

 private:
  static void trampoline();

  Body body_;
  std::unique_ptr<std::byte[]> stack_;
  ucontext_t context_{};
  ucontext_t return_context_{};
  YieldReason last_reason_ = YieldReason::kRunning;
  Time pending_charge_ = 0;
  bool started_ = false;
};

}  // namespace ivy::sim
