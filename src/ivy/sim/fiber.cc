#include "ivy/sim/fiber.h"

#include <cstdint>

#include "ivy/base/check.h"

namespace ivy::sim {
namespace {

// The simulation is single-threaded; `thread_local` keeps the door open
// for running independent simulators on different host threads.
thread_local Fiber* g_current_fiber = nullptr;
thread_local Fiber* g_starting_fiber = nullptr;

}  // namespace

Fiber::Fiber(Body body, std::size_t stack_bytes)
    : body_(std::move(body)), stack_(new std::byte[stack_bytes]) {
  IVY_CHECK(body_ != nullptr);
  IVY_CHECK_GE(stack_bytes, std::size_t{16 * 1024});
  IVY_CHECK_EQ(getcontext(&context_), 0);
  context_.uc_stack.ss_sp = stack_.get();
  context_.uc_stack.ss_size = stack_bytes;
  context_.uc_link = nullptr;  // fibers never fall off; trampoline yields
  // makecontext only passes int arguments portably, so the fiber pointer
  // travels through g_starting_fiber instead (safe: resume() sets it
  // immediately before the first swap, single-threaded per simulator).
  makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 0);
}

Fiber::~Fiber() {
  // Destroying a live fiber would leak whatever its stack owns.  All
  // call sites join processes before teardown; enforce it.
  IVY_CHECK_MSG(!started_ || finished(),
                "fiber destroyed while suspended mid-execution");
}

void Fiber::trampoline() {
  Fiber* self = g_starting_fiber;
  g_starting_fiber = nullptr;
  IVY_CHECK(self != nullptr);
  self->body_();
  // Returning from the body means the lightweight process terminated.
  Fiber::yield(YieldReason::kFinished);
  IVY_UNREACHABLE("resumed a finished fiber");
}

YieldReason Fiber::resume() {
  IVY_CHECK_MSG(g_current_fiber == nullptr,
                "resume() called from inside a fiber");
  IVY_CHECK_MSG(!finished(), "resume() on a finished fiber");
  g_current_fiber = this;
  if (!started_) {
    started_ = true;
    g_starting_fiber = this;
  }
  last_reason_ = YieldReason::kRunning;
  IVY_CHECK_EQ(swapcontext(&return_context_, &context_), 0);
  g_current_fiber = nullptr;
  IVY_CHECK_MSG(last_reason_ != YieldReason::kRunning,
                "fiber switched out without a yield reason");
  return last_reason_;
}

void Fiber::yield(YieldReason reason) {
  Fiber* self = g_current_fiber;
  IVY_CHECK_MSG(self != nullptr, "yield() outside any fiber");
  IVY_CHECK(reason != YieldReason::kRunning);
  self->last_reason_ = reason;
  g_current_fiber = nullptr;
  IVY_CHECK_EQ(swapcontext(&self->context_, &self->return_context_), 0);
  g_current_fiber = self;
}

Fiber* Fiber::current() noexcept { return g_current_fiber; }

}  // namespace ivy::sim
