// Discrete-event simulation engine.
//
// A single global event queue in virtual time drives everything: message
// deliveries, process resumptions, load-balance timers, retransmission
// checks.  Events at equal timestamps run in scheduling order (a
// monotonically increasing sequence number breaks ties), which makes every
// run bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "ivy/base/check.h"
#include "ivy/base/types.h"
#include "ivy/sim/cost_model.h"

namespace ivy::sim {

class Simulator {
 public:
  using Action = std::function<void()>;

  explicit Simulator(CostModel costs = {}) : costs_(costs) {}

  [[nodiscard]] Time now() const noexcept { return now_; }
  [[nodiscard]] const CostModel& costs() const noexcept { return costs_; }

  /// Schedules `fn` at absolute virtual time `at` (>= now).
  void schedule_at(Time at, Action fn) {
    IVY_CHECK_GE(at, now_);
    queue_.push(Event{at, next_seq_++, std::move(fn)});
  }

  /// Schedules `fn` `delay` nanoseconds from now.
  void schedule_after(Time delay, Action fn) {
    IVY_CHECK_GE(delay, 0);
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Runs events until the queue is empty.  Returns the final time.
  Time run_until_idle() {
    while (step()) {
    }
    return now_;
  }

  /// Runs events while `keep_going()` is true and events remain.
  template <typename Pred>
  Time run_while(Pred&& keep_going) {
    while (keep_going() && step()) {
    }
    return now_;
  }

  /// Executes the next event.  Returns false if the queue was empty.
  bool step() {
    if (queue_.empty()) return false;
    // Moving out of a priority_queue top requires the const_cast idiom;
    // the element is popped immediately after, before any reordering.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    IVY_CHECK_GE(ev.at, now_);
    now_ = ev.at;
    ++executed_;
    ev.fn();
    return true;
  }

  [[nodiscard]] bool idle() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return executed_;
  }

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    Action fn;
    friend bool operator>(const Event& a, const Event& b) {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  CostModel costs_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
};

}  // namespace ivy::sim
