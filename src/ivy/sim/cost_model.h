// Virtual-time cost model, calibrated to the paper's 1988 hardware.
//
// IVY ran on Apollo DN workstations (Motorola 68000-class, roughly
// 1 MIPS) joined by a 12 Mbit/s baseband token ring, with the protocol in
// user mode ("not particularly efficient but simple and tractable").
// The absolute numbers below only matter through their *ratios*:
// compute-per-element vs. page-transfer vs. disk I/O are what shape the
// speedup curves.  Benches sweep these fields freely.
#pragma once

#include "ivy/base/types.h"

namespace ivy::sim {

struct CostModel {
  // --- CPU -----------------------------------------------------------
  /// One checked reference into the shared virtual memory (page-table
  /// lookup + data access).  On the real system this is a plain MMU-
  /// checked memory reference.
  Time mem_ref = ns(1'000);
  /// One unit of application arithmetic (an element step of the inner
  /// loop).  68000-class machines did software floating point at tens of
  /// microseconds per operation — this compute : page-move ratio is what
  /// made the paper's applications compute-dominated, and the speedup
  /// shapes depend on it.
  Time compute_unit = us(40);
  /// Dispatcher context switch ("on the order of a few procedure calls").
  Time context_switch = us(100);
  /// Process creation / termination bookkeeping.
  Time proc_create = us(500);
  /// One test-and-set instruction pair ("two 68000 instructions").
  Time test_and_set = us(2);

  // --- Page fault software path (user-mode handlers) ------------------
  /// Fixed handler overhead at the faulting processor per remote fault.
  Time fault_handler = us(500);
  /// Server-side handling of one protocol request (manager/owner code).
  Time fault_server = us(300);
  /// Cost of changing a page's protection / mapping.
  Time map_page = us(100);

  // --- Network (shared-medium token ring) -----------------------------
  /// Per-message software + media-access latency (send and receive
  /// syscalls, token acquisition).
  Time msg_latency = us(800);
  /// Ring bandwidth: 12 Mbit/s = 1.5 MB/s.
  double ring_bytes_per_second = 1.5e6;
  /// Protocol framing bytes added to every packet.
  std::uint32_t msg_overhead_bytes = 32;

  // --- Simulation fidelity ---------------------------------------------
  /// A process that computes for long stretches without blocking is
  /// preempted (at application compute-charge points) once it accumulates
  /// this much CPU time, so remote coherence traffic interleaves with its
  /// accesses at the right virtual times.  This bounds causality skew; it
  /// is a simulation knob, not a property of the modeled machine, and the
  /// re-dispatch after such a preemption is free.
  Time preempt_quantum = ms(1);

  // --- Disk (Aegis paging device) --------------------------------------
  /// One page-sized disk transfer, seek-dominated.
  Time disk_io = ms(25);

  /// Time to clock `bytes` through the ring medium.
  [[nodiscard]] Time transmit_time(std::uint64_t bytes) const {
    const double secs =
        static_cast<double>(bytes + msg_overhead_bytes) / ring_bytes_per_second;
    return static_cast<Time>(secs * 1e9);
  }
};

}  // namespace ivy::sim
