// Simulator is header-only today; this translation unit pins the vtable-
// free template instantiations and keeps the build target non-empty.
#include "ivy/sim/simulator.h"

namespace ivy::sim {
static_assert(sizeof(Simulator) > 0);
}  // namespace ivy::sim
