// ivy::fault — the deterministic fault plane.
//
// FaultPlane sits between net::Ring and delivery (via net::FaultHook):
// for every (frame, recipient) pair the ring asks for a delivery plan,
// and the plane rolls its own seeded RNG stream against the configured
// FaultSpec rules.  Faults are therefore a pure function of
// (spec, fault seed, traffic), independent of every other RNG in the
// system: the same run with the same --fault/--fault-seed reproduces the
// same losses, and a run with no spec installs no plane and draws
// nothing, keeping zero-fault runs bit-identical to pre-fault builds.
#pragma once

#include <array>
#include <cstdint>
#include <functional>

#include "ivy/base/rng.h"
#include "ivy/base/stats.h"
#include "ivy/fault/spec.h"
#include "ivy/net/ring.h"

namespace ivy::fault {

class FaultPlane : public net::FaultHook {
 public:
  /// `clock` supplies virtual time for window matching and trace stamps
  /// (the runtime wires it to Simulator::now).  `stats` is where injected
  /// faults are accounted (Counter::kFaultsInjected at the sender, plus a
  /// kFaultInjected trace event per perturbation).
  FaultPlane(FaultSpec spec, std::uint64_t seed, Stats& stats,
             std::function<Time()> clock);

  Plan plan_delivery(const net::Message& msg, NodeId recipient) override;

  /// Total injections of one fault type (for tests and reports).
  [[nodiscard]] std::uint64_t injected(FaultType type) const {
    return injected_[static_cast<std::size_t>(type)];
  }
  [[nodiscard]] const FaultSpec& spec() const { return spec_; }

 private:
  void account(const net::Message& msg, FaultType type);

  FaultSpec spec_;
  Rng rng_;
  Stats& stats_;
  std::function<Time()> clock_;
  std::array<std::uint64_t, kFaultTypeCount> injected_{};
};

}  // namespace ivy::fault
