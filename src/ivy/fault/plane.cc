#include "ivy/fault/plane.h"

#include <utility>

#include "ivy/trace/trace.h"

namespace ivy::fault {
namespace {

/// Default spacing of a duplicate's second copy when the rule gives none:
/// a few microseconds, enough to land behind other traffic.
constexpr Time kDefaultDupSpacing = us(5);

}  // namespace

FaultPlane::FaultPlane(FaultSpec spec, std::uint64_t seed, Stats& stats,
                       std::function<Time()> clock)
    : spec_(std::move(spec)),
      rng_(seed),
      stats_(stats),
      clock_(std::move(clock)) {}

void FaultPlane::account(const net::Message& msg, FaultType type) {
  ++injected_[static_cast<std::size_t>(type)];
  stats_.bump(msg.src, Counter::kFaultsInjected);
  IVY_EVT(stats_, record(msg.src, trace::EventKind::kFaultInjected,
                         static_cast<std::uint64_t>(msg.kind),
                         static_cast<std::uint64_t>(type)));
}

FaultPlane::Plan FaultPlane::plan_delivery(const net::Message& msg,
                                           NodeId recipient) {
  Plan plan;
  const Time now = clock_();
  for (const FaultRule& rule : spec_.rules) {
    if (!rule.matches(msg, recipient, now)) continue;
    switch (rule.type) {
      case FaultType::kPartition:
        // Deterministic: a severed pair exchanges nothing in the window.
        account(msg, FaultType::kPartition);
        plan.drop = true;
        return plan;
      case FaultType::kDrop:
        if (rng_.chance(rule.prob)) {
          account(msg, FaultType::kDrop);
          plan.drop = true;
          return plan;  // a lost frame suffers no further faults
        }
        break;
      case FaultType::kDuplicate:
        if (!plan.duplicate && rng_.chance(rule.prob)) {
          account(msg, FaultType::kDuplicate);
          plan.duplicate = true;
          plan.duplicate_delay =
              rule.delay > 0 ? rule.delay : kDefaultDupSpacing;
        }
        break;
      case FaultType::kDelay:
        if (rng_.chance(rule.prob)) {
          account(msg, FaultType::kDelay);
          plan.extra_delay += rule.delay;
        }
        break;
      case FaultType::kCorrupt:
        if (!plan.corrupt && rng_.chance(rule.prob)) {
          account(msg, FaultType::kCorrupt);
          plan.corrupt = true;
        }
        break;
    }
  }
  return plan;
}

}  // namespace ivy::fault
