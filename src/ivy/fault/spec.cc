#include "ivy/fault/spec.h"

#include <cctype>
#include <cstdlib>

namespace ivy::fault {
namespace {

/// Roster used to resolve /kind= names; keep in sync with net::MsgKind.
constexpr net::MsgKind kAllKinds[] = {
    net::MsgKind::kRpcReply,      net::MsgKind::kReadFault,
    net::MsgKind::kWriteFault,    net::MsgKind::kInvalidate,
    net::MsgKind::kInvalidateBcast, net::MsgKind::kGrantAck,
    net::MsgKind::kPageOut,       net::MsgKind::kMigrateAsk,
    net::MsgKind::kMigrateMove,   net::MsgKind::kRemoteResume,
    net::MsgKind::kProcForwarded, net::MsgKind::kLoadHint,
    net::MsgKind::kAllocRequest,  net::MsgKind::kFreeRequest,
    net::MsgKind::kEcWakeup,
};

bool parse_kind(const std::string& name, net::MsgKind* out) {
  for (net::MsgKind k : kAllKinds) {
    if (name == net::to_string(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

bool parse_prob(const std::string& text, double* out) {
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0' && !text.empty() && *out >= 0.0 &&
         *out <= 1.0;
}

bool parse_node(const std::string& text, NodeId* out) {
  char* end = nullptr;
  const unsigned long v = std::strtoul(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || text.empty() || v >= kMaxNodes) {
    return false;
  }
  *out = static_cast<NodeId>(v);
  return true;
}

/// "A-B" node pair.
bool parse_pair(const std::string& text, NodeId* a, NodeId* b) {
  const std::size_t dash = text.find('-');
  if (dash == std::string::npos) return false;
  return parse_node(text.substr(0, dash), a) &&
         parse_node(text.substr(dash + 1), b) && *a != *b;
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    parts.push_back(text.substr(start, pos - start));
    if (pos == std::string::npos) break;
    start = pos + 1;
  }
  return parts;
}

/// Applies one "/qual=value" qualifier to a rule.
bool apply_qualifier(const std::string& qual, FaultRule* rule,
                     std::string* error) {
  const std::size_t eq = qual.find('=');
  if (eq == std::string::npos) {
    *error = "qualifier '" + qual + "' is not name=value";
    return false;
  }
  const std::string name = qual.substr(0, eq);
  const std::string value = qual.substr(eq + 1);
  if (name == "kind") {
    net::MsgKind kind;
    if (!parse_kind(value, &kind)) {
      *error = "unknown message kind '" + value + "'";
      return false;
    }
    rule->kind = kind;
    return true;
  }
  if (name == "pair") {
    if (!parse_pair(value, &rule->pair_a, &rule->pair_b)) {
      *error = "bad node pair '" + value + "' (want A-B)";
      return false;
    }
    return true;
  }
  if (name == "t") {
    const std::size_t plus = value.find('+');
    Time start = 0;
    Time dur = 0;
    if (plus == std::string::npos ||
        !parse_duration(value.substr(0, plus), &start) ||
        !parse_duration(value.substr(plus + 1), &dur) || dur <= 0) {
      *error = "bad window '" + value + "' (want START+DUR)";
      return false;
    }
    rule->window_start = start;
    rule->window_end = start + dur;
    return true;
  }
  *error = "unknown qualifier '" + name + "'";
  return false;
}

bool parse_item(const std::string& item, FaultRule* rule,
                std::string* error) {
  const std::vector<std::string> parts = split(item, '/');
  const std::size_t eq = parts[0].find('=');
  if (eq == std::string::npos) {
    *error = "fault item '" + item + "' is not name=value";
    return false;
  }
  const std::string name = parts[0].substr(0, eq);
  const std::string value = parts[0].substr(eq + 1);

  if (name == "drop" || name == "dup" || name == "corrupt") {
    rule->type = name == "drop"      ? FaultType::kDrop
                 : name == "dup"     ? FaultType::kDuplicate
                                     : FaultType::kCorrupt;
    if (!parse_prob(value, &rule->prob)) {
      *error = name + " expects a probability in [0,1], got '" + value + "'";
      return false;
    }
  } else if (name == "delay") {
    // delay=DUR@P
    rule->type = FaultType::kDelay;
    const std::size_t at = value.find('@');
    if (at == std::string::npos || !parse_duration(value.substr(0, at),
                                                   &rule->delay) ||
        rule->delay <= 0 || !parse_prob(value.substr(at + 1), &rule->prob)) {
      *error = "delay expects DUR@P, got '" + value + "'";
      return false;
    }
  } else if (name == "partition") {
    // partition=A-B:DUR@t=START
    rule->type = FaultType::kPartition;
    rule->prob = 1.0;
    const std::size_t colon = value.find(':');
    const std::size_t at = value.find("@t=");
    Time dur = 0;
    if (colon == std::string::npos || at == std::string::npos || at < colon ||
        !parse_pair(value.substr(0, colon), &rule->pair_a, &rule->pair_b) ||
        !parse_duration(value.substr(colon + 1, at - colon - 1), &dur) ||
        dur <= 0 || !parse_duration(value.substr(at + 3),
                                    &rule->window_start)) {
      *error = "partition expects A-B:DUR@t=START, got '" + value + "'";
      return false;
    }
    rule->window_end = rule->window_start + dur;
    if (parts.size() > 1) {
      *error = "partition takes no qualifiers";
      return false;
    }
    return true;
  } else {
    *error = "unknown fault item '" + name + "'";
    return false;
  }

  for (std::size_t i = 1; i < parts.size(); ++i) {
    if (!apply_qualifier(parts[i], rule, error)) return false;
  }
  return true;
}

}  // namespace

const char* to_string(FaultType type) {
  switch (type) {
    case FaultType::kDrop: return "drop";
    case FaultType::kDuplicate: return "dup";
    case FaultType::kDelay: return "delay";
    case FaultType::kCorrupt: return "corrupt";
    case FaultType::kPartition: return "partition";
  }
  return "?";
}

bool FaultRule::matches(const net::Message& msg, NodeId recipient,
                        Time now) const {
  if (kind.has_value() && *kind != msg.kind) return false;
  if (pair_a != kNoNode) {
    const bool between = (msg.src == pair_a && recipient == pair_b) ||
                         (msg.src == pair_b && recipient == pair_a);
    if (!between) return false;
  }
  return now >= window_start && now < window_end;
}

bool parse_duration(const std::string& text, Time* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || v < 0) return false;
  const std::string suffix(end);
  double scale = 1.0;  // bare numbers are nanoseconds
  if (suffix == "ns" || suffix.empty()) {
    scale = 1.0;
  } else if (suffix == "us") {
    scale = 1e3;
  } else if (suffix == "ms") {
    scale = 1e6;
  } else if (suffix == "s") {
    scale = 1e9;
  } else {
    return false;
  }
  *out = static_cast<Time>(v * scale);
  return true;
}

bool parse_fault_spec(const std::string& text, FaultSpec* out,
                      std::string* error) {
  out->rules.clear();
  if (text.empty()) return true;
  for (const std::string& item : split(text, ',')) {
    if (item.empty()) {
      *error = "empty fault item";
      return false;
    }
    FaultRule rule;
    if (!parse_item(item, &rule, error)) return false;
    out->rules.push_back(rule);
  }
  return true;
}

}  // namespace ivy::fault
