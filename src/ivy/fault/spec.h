// ivy::fault — declarative fault-injection specifications.
//
// A FaultSpec is an ordered list of rules, each perturbing matching
// deliveries with some probability: drop, duplicate, delay (bounded
// reordering), bit-corrupt, or partition.  Rules can be scoped to a
// message kind, a node pair, and a virtual-time window, so a spec can
// express anything from "lose 1% of everything" to "cut nodes 0 and 3
// apart for 100 ms starting at t=50 ms, write faults only".
//
// The textual grammar (parsed from --fault) is comma-separated items:
//
//   drop=P          lose a matching delivery with probability P
//   dup=P           deliver a matching frame twice
//   corrupt=P       damage the frame checksum (receiver drops it)
//   delay=DUR@P     add DUR of extra delivery latency with probability P
//   partition=A-B:DUR@t=START
//                   nodes A and B cannot exchange frames during
//                   [START, START+DUR)
//
// Every item except partition accepts optional '/'-separated qualifiers:
//
//   /kind=NAME      only frames of this net::MsgKind (e.g. write_fault)
//   /pair=A-B       only frames between nodes A and B (either direction)
//   /t=START+DUR    only inside the virtual-time window
//
// Durations take ns/us/ms/s suffixes (bare numbers are nanoseconds).
// Example: drop=0.01,dup=0.005,delay=2ms@0.02,partition=0-3:100ms@t=50ms
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ivy/base/types.h"
#include "ivy/net/message.h"

namespace ivy::fault {

/// What a rule injects.  Values appear as arg1 of kFaultInjected trace
/// events, so keep them stable.
enum class FaultType : std::uint8_t {
  kDrop = 0,
  kDuplicate = 1,
  kDelay = 2,
  kCorrupt = 3,
  kPartition = 4,
};

inline constexpr std::size_t kFaultTypeCount = 5;

[[nodiscard]] const char* to_string(FaultType type);

struct FaultRule {
  FaultType type = FaultType::kDrop;
  /// Injection probability per matching delivery (partition rules use 1).
  double prob = 0.0;
  /// kDelay: extra delivery latency; kDuplicate: spacing of the second
  /// copy (0 = a small default jitter chosen by the plane).
  Time delay = 0;
  /// Node-pair scope; kNoNode = any.  Matches either direction.
  NodeId pair_a = kNoNode;
  NodeId pair_b = kNoNode;
  /// Message-kind scope; empty = any.
  std::optional<net::MsgKind> kind;
  /// Virtual-time window [start, end).
  Time window_start = 0;
  Time window_end = kTimeNever;

  [[nodiscard]] bool matches(const net::Message& msg, NodeId recipient,
                             Time now) const;
};

struct FaultSpec {
  std::vector<FaultRule> rules;

  [[nodiscard]] bool active() const { return !rules.empty(); }
};

/// Parses the --fault grammar.  On failure returns false with a
/// description in *error (and *out unspecified).
bool parse_fault_spec(const std::string& text, FaultSpec* out,
                      std::string* error);

/// Parses a duration literal ("2ms", "50us", "1s", "250" = ns).  Used by
/// the spec parser; exposed for tests.
bool parse_duration(const std::string& text, Time* out);

}  // namespace ivy::fault
