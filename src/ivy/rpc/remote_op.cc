#include "ivy/rpc/remote_op.h"

#include <algorithm>
#include <utility>

#include "ivy/base/check.h"
#include "ivy/base/log.h"
#include "ivy/trace/trace.h"

namespace ivy::rpc {

RemoteOp::RemoteOp(sim::Simulator& sim, net::Ring& ring, Stats& stats,
                   NodeId self)
    : sim_(sim), ring_(ring), stats_(stats), self_(self),
      // rpc ids are globally unique: node id in the top bits.
      next_rpc_id_((static_cast<std::uint64_t>(self) << 40) + 1) {
  ring_.set_handler(self, [this](net::Message&& msg) {
    on_message(std::move(msg));
  });
}

std::uint64_t RemoteOp::request(NodeId dst, net::MsgKind kind,
                                std::any payload, std::uint32_t wire_bytes,
                                ReplyCallback on_reply, Time timeout) {
  IVY_CHECK(on_reply != nullptr);
  IVY_CHECK_NE(dst, self_);
  net::Message msg;
  msg.src = self_;
  msg.dst = dst;
  msg.kind = kind;
  msg.rpc_id = next_rpc_id_++;
  msg.origin = self_;
  msg.payload = std::move(payload);
  msg.wire_bytes = wire_bytes;

  Outstanding out;
  out.original = msg;
  out.on_reply = std::move(on_reply);
  out.expected_replies = 1;
  out.first_sent = sim_.now();
  out.last_sent = out.first_sent;
  out.timeout = timeout;
  const std::uint64_t id = msg.rpc_id;
  outstanding_.emplace(id, std::move(out));
  IVY_EVT(stats_, record(self_, trace::EventKind::kRpcRequest, id, dst));
  transmit(std::move(msg));
  arm_retransmit_timer();
  return id;
}

std::uint64_t RemoteOp::broadcast(net::MsgKind kind, std::any payload,
                                  std::uint32_t wire_bytes, BcastReply scheme,
                                  ReplyCallback on_first,
                                  AllRepliesCallback on_all, Time timeout) {
  net::Message msg;
  msg.src = self_;
  msg.dst = kBroadcast;
  msg.kind = kind;
  msg.rpc_id = next_rpc_id_++;
  msg.origin = self_;
  msg.payload = std::move(payload);
  msg.wire_bytes = wire_bytes;
  const std::uint64_t id = msg.rpc_id;

  switch (scheme) {
    case BcastReply::kNone:
      IVY_CHECK(on_first == nullptr && on_all == nullptr);
      transmit(std::move(msg));
      return id;
    case BcastReply::kAny: {
      IVY_CHECK(on_first != nullptr && on_all == nullptr);
      Outstanding out;
      out.original = msg;
      out.on_reply = std::move(on_first);
      out.expected_replies = 1;
      out.first_sent = sim_.now();
      out.last_sent = out.first_sent;
      out.timeout = timeout;
      outstanding_.emplace(id, std::move(out));
      break;
    }
    case BcastReply::kAll: {
      IVY_CHECK(on_first == nullptr && on_all != nullptr);
      IVY_CHECK_GT(ring_.nodes(), 1u);
      Outstanding out;
      out.original = msg;
      out.on_all = std::move(on_all);
      out.expected_replies = ring_.nodes() - 1;
      out.first_sent = sim_.now();
      out.last_sent = out.first_sent;
      outstanding_.emplace(id, std::move(out));
      break;
    }
  }
  IVY_EVT(stats_,
          record(self_, trace::EventKind::kRpcRequest, id, kMaxNodes));
  transmit(std::move(msg));
  arm_retransmit_timer();
  return id;
}

void RemoteOp::set_handler(net::MsgKind kind, ServerHandler handler) {
  IVY_CHECK(handler != nullptr);
  handlers_[kind] = std::move(handler);
}

void RemoteOp::reply_to(const net::Message& req, std::any payload,
                        std::uint32_t wire_bytes) {
  reply(reply_later(req), std::move(payload), wire_bytes);
}

void RemoteOp::reply(const PendingReply& pending, std::any payload,
                     std::uint32_t wire_bytes) {
  const std::uint64_t key = dedup_key(pending.origin, pending.rpc_id);
  in_progress_.erase(key);
  // Cache the reply so a duplicate request can be answered without
  // re-executing the operation ("resend replies only when necessary").
  done_cache_.push_back(DoneEntry{key, payload, wire_bytes, pending.kind,
                                  pending.origin});
  if (done_cache_.size() > kDoneCacheCapacity) done_cache_.pop_front();

  net::Message msg;
  msg.src = self_;
  msg.dst = pending.origin;
  msg.kind = pending.kind;
  msg.rpc_id = pending.rpc_id;
  msg.origin = pending.origin;
  msg.is_reply = true;
  msg.payload = std::move(payload);
  msg.wire_bytes = wire_bytes;
  IVY_EVT(stats_, record(self_, trace::EventKind::kRpcReplySent,
                         pending.rpc_id, pending.origin));
  // Model the server-side software time before the reply hits the wire.
  sim_.schedule_after(sim_.costs().fault_server,
                      [this, m = std::move(msg)]() mutable {
                        transmit(std::move(m));
                      });
}

void RemoteOp::ignore(const net::Message& req) {
  in_progress_.erase(dedup_key(req.origin, req.rpc_id));
}

void RemoteOp::cancel(std::uint64_t rpc_id) {
  if (outstanding_.erase(rpc_id) > 0) {
    IVY_EVT(stats_, record(self_, trace::EventKind::kRpcCancel, rpc_id, 0));
  }
}

void RemoteOp::forward(net::Message&& req, NodeId next) {
  IVY_CHECK_NE(next, self_);
  // Forwarders do not answer; clear the duplicate marker so a client
  // retransmission is forwarded again (forwarding must be idempotent).
  in_progress_.erase(dedup_key(req.origin, req.rpc_id));
  stats_.bump(self_, Counter::kForwards);
  req.src = self_;
  req.dst = next;
  transmit(std::move(req));
}

void RemoteOp::on_message(net::Message&& msg) {
  if (hint_consumer_) hint_consumer_(msg.src, msg.load_hint);
  if (msg.is_reply) {
    handle_reply(std::move(msg));
  } else {
    handle_request(std::move(msg));
  }
}

void RemoteOp::transmit(net::Message msg) {
  if (hint_provider_) msg.load_hint = hint_provider_();
  ring_.send(std::move(msg));
}

void RemoteOp::set_orphan_reply_handler(net::MsgKind kind,
                                        ServerHandler handler) {
  IVY_CHECK(handler != nullptr);
  orphan_handlers_[kind] = std::move(handler);
}

void RemoteOp::handle_reply(net::Message&& msg) {
  auto it = outstanding_.find(msg.rpc_id);
  if (it == outstanding_.end()) {
    IVY_EVT(stats_, record(self_, trace::EventKind::kRpcOrphan, msg.rpc_id,
                           msg.src));
    // Late duplicate.  Give resource-bearing replies a chance to be
    // absorbed; drop the rest.
    if (auto oh = orphan_handlers_.find(msg.kind);
        oh != orphan_handlers_.end()) {
      oh->second(std::move(msg));
    }
    return;
  }
  Outstanding& out = it->second;
  const Time first_sent = out.first_sent;
  const auto kind_arg =
      static_cast<std::uint64_t>(out.original.kind);
  if (out.on_all) {
    // kAll broadcast: one reply per peer; duplicates from the same peer
    // (reply resends) must not double-count.
    const bool seen = std::any_of(
        out.replies.begin(), out.replies.end(),
        [&](const net::Message& m) { return m.src == msg.src; });
    if (seen) return;
    out.replies.push_back(std::move(msg));
    if (out.replies.size() < out.expected_replies) return;
    auto cb = std::move(out.on_all);
    auto replies = std::move(out.replies);
    outstanding_.erase(it);
    record_round_trip(kind_arg, first_sent, kBroadcast);
    cb(std::move(replies));
    return;
  }
  const NodeId server = msg.src;
  auto cb = std::move(out.on_reply);
  outstanding_.erase(it);
  record_round_trip(kind_arg, first_sent, server);
  cb(std::move(msg));
}

void RemoteOp::record_round_trip(std::uint64_t kind_arg, Time first_sent,
                                 NodeId server) {
  const Time rtt = sim_.now() - first_sent;
  stats_.record_latency(self_, Hist::kRemoteOpRoundTrip, rtt);
  IVY_EVT(stats_,
          record_span(self_, trace::EventKind::kRemoteOp, first_sent, rtt,
                      kind_arg, server == kBroadcast ? kMaxNodes : server));
}

void RemoteOp::handle_request(net::Message&& msg) {
  const std::uint64_t key = dedup_key(msg.origin, msg.rpc_id);
  // Completed before?  Resend the cached reply.
  for (const DoneEntry& done : done_cache_) {
    if (done.key == key) {
      net::Message rep;
      rep.src = self_;
      rep.dst = done.origin;
      rep.kind = done.kind;
      rep.rpc_id = msg.rpc_id;
      rep.origin = done.origin;
      rep.is_reply = true;
      rep.payload = done.payload;
      rep.wire_bytes = done.wire_bytes;
      IVY_EVT(stats_, record(self_, trace::EventKind::kRpcReplySent,
                             rep.rpc_id, rep.origin));
      transmit(std::move(rep));
      return;
    }
  }
  // Still being served?  The reply is on its way; drop the duplicate.
  if (!in_progress_.emplace(key, true).second) return;

  auto it = handlers_.find(msg.kind);
  IVY_CHECK_MSG(it != handlers_.end(),
                "node " << self_ << " has no handler for "
                        << net::to_string(msg.kind));
  it->second(std::move(msg));
}

void RemoteOp::arm_retransmit_timer() {
  if (timer_armed_ || outstanding_.empty()) return;
  timer_armed_ = true;
  sim_.schedule_after(check_interval_, [this] {
    timer_armed_ = false;
    retransmit_scan();
    arm_retransmit_timer();  // keep checking while requests are pending
  });
}

void RemoteOp::retransmit_scan() {
  const Time now = sim_.now();
  for (auto& [id, out] : outstanding_) {
    const Time timeout = out.timeout != 0 ? out.timeout : request_timeout_;
    if (now - out.last_sent < timeout) continue;
    IVY_DEBUG() << "node " << self_ << " retransmits rpc " << id << " ("
                << net::to_string(out.original.kind) << ")";
    stats_.bump(self_, Counter::kRetransmissions);
    IVY_EVT(stats_,
            record(self_, trace::EventKind::kRetransmit,
                   static_cast<std::uint64_t>(out.original.kind),
                   out.original.dst == kBroadcast ? kMaxNodes
                                                  : out.original.dst));
    out.last_sent = now;
    transmit(out.original);  // copy; payload shared_ptr bodies stay cheap
  }
}

}  // namespace ivy::rpc
