#include "ivy/rpc/remote_op.h"

#include <algorithm>
#include <utility>

#include "ivy/base/check.h"
#include "ivy/base/log.h"
#include "ivy/prof/prof.h"
#include "ivy/trace/trace.h"

namespace ivy::rpc {

namespace {

/// Absolute ceiling on the backoff wait: keeps recovery after a long
/// partition bounded instead of letting waits double without end.
constexpr Time kBackoffCap = sec(4);

/// Bound on the duplicate-reply suppression set (mirrors the done-cache
/// philosophy: bounded memory, graceful degradation to the orphan path).
constexpr std::size_t kRepliedCacheCapacity = 4096;

/// Trace-event destination argument: the fan-out sentinels (broadcast,
/// multicast) all render as kMaxNodes.
constexpr NodeId event_dst(NodeId dst) {
  return dst >= kMulticast ? kMaxNodes : dst;
}

}  // namespace

RemoteOp::RemoteOp(sim::Simulator& sim, net::Ring& ring, Stats& stats,
                   NodeId self)
    : sim_(sim), ring_(ring), stats_(stats), self_(self),
      // rpc ids are globally unique: node id in the top bits.
      next_rpc_id_((static_cast<std::uint64_t>(self) << 40) + 1),
      // Per-node jitter stream; only retransmissions draw from it.
      backoff_rng_(0xb0ff'0000'0000ULL ^ (static_cast<std::uint64_t>(self))) {
  ring_.set_handler(self, [this](net::Message&& msg) {
    on_message(std::move(msg));
  });
}

std::uint64_t RemoteOp::request(NodeId dst, net::MsgKind kind,
                                std::any payload, std::uint32_t wire_bytes,
                                ReplyCallback on_reply, Time timeout,
                                FailureCallback on_fail) {
  IVY_CHECK(on_reply != nullptr);
  IVY_CHECK_NE(dst, self_);
  net::Message msg;
  msg.src = self_;
  msg.dst = dst;
  msg.kind = kind;
  msg.rpc_id = next_rpc_id_++;
  msg.origin = self_;
  msg.payload = std::move(payload);
  msg.wire_bytes = wire_bytes;

  Outstanding out;
  out.original = msg;
  out.on_reply = std::move(on_reply);
  out.on_fail = std::move(on_fail);
  out.expected_replies = 1;
  out.first_sent = sim_.now();
  out.last_sent = out.first_sent;
  out.timeout = timeout;
  const std::uint64_t id = msg.rpc_id;
  outstanding_.emplace(id, std::move(out));
  IVY_EVT(stats_, record(self_, trace::EventKind::kRpcRequest, id, dst));
  transmit(std::move(msg));
  arm_retransmit_timer();
  return id;
}

std::uint64_t RemoteOp::broadcast(net::MsgKind kind, std::any payload,
                                  std::uint32_t wire_bytes, BcastReply scheme,
                                  ReplyCallback on_first,
                                  AllRepliesCallback on_all, Time timeout,
                                  FailureCallback on_fail) {
  net::Message msg;
  msg.src = self_;
  msg.dst = kBroadcast;
  msg.kind = kind;
  msg.rpc_id = next_rpc_id_++;
  msg.origin = self_;
  msg.payload = std::move(payload);
  msg.wire_bytes = wire_bytes;
  const std::uint64_t id = msg.rpc_id;

  switch (scheme) {
    case BcastReply::kNone:
      IVY_CHECK(on_first == nullptr && on_all == nullptr);
      transmit(std::move(msg));
      return id;
    case BcastReply::kAny: {
      IVY_CHECK(on_first != nullptr && on_all == nullptr);
      Outstanding out;
      out.original = msg;
      out.on_reply = std::move(on_first);
      out.on_fail = std::move(on_fail);
      out.expected_replies = 1;
      out.first_sent = sim_.now();
      out.last_sent = out.first_sent;
      out.timeout = timeout;
      outstanding_.emplace(id, std::move(out));
      break;
    }
    case BcastReply::kAll: {
      IVY_CHECK(on_first == nullptr && on_all != nullptr);
      IVY_CHECK_GT(ring_.nodes(), 1u);
      Outstanding out;
      out.original = msg;
      out.on_all = std::move(on_all);
      out.on_fail = std::move(on_fail);
      out.expected_replies = ring_.nodes() - 1;
      out.first_sent = sim_.now();
      out.last_sent = out.first_sent;
      out.timeout = timeout;
      outstanding_.emplace(id, std::move(out));
      break;
    }
  }
  IVY_EVT(stats_,
          record(self_, trace::EventKind::kRpcRequest, id, kMaxNodes));
  transmit(std::move(msg));
  arm_retransmit_timer();
  return id;
}

std::uint64_t RemoteOp::multicast(NodeSet targets, net::MsgKind kind,
                                  std::any payload, std::uint32_t wire_bytes,
                                  AllRepliesCallback on_all, Time timeout,
                                  FailureCallback on_fail,
                                  bool deliver_to_all) {
  IVY_CHECK(on_all != nullptr);
  IVY_CHECK(!targets.empty());
  IVY_CHECK(!targets.contains(self_));
  net::Message msg;
  msg.src = self_;
  msg.dst = deliver_to_all ? kBroadcast : kMulticast;
  msg.mcast = targets;
  msg.kind = kind;
  msg.rpc_id = next_rpc_id_++;
  msg.origin = self_;
  msg.payload = std::move(payload);
  msg.wire_bytes = wire_bytes;
  const std::uint64_t id = msg.rpc_id;

  Outstanding out;
  out.original = msg;
  out.on_all = std::move(on_all);
  out.on_fail = std::move(on_fail);
  out.expected_replies = static_cast<std::uint32_t>(targets.count());
  out.first_sent = sim_.now();
  out.last_sent = out.first_sent;
  out.timeout = timeout;
  outstanding_.emplace(id, std::move(out));
  IVY_EVT(stats_,
          record(self_, trace::EventKind::kRpcRequest, id, kMaxNodes));
  transmit(std::move(msg));
  arm_retransmit_timer();
  return id;
}

void RemoteOp::set_handler(net::MsgKind kind, ServerHandler handler) {
  IVY_CHECK(handler != nullptr);
  handlers_[kind] = std::move(handler);
}

void RemoteOp::reply_to(const net::Message& req, std::any payload,
                        std::uint32_t wire_bytes) {
  reply(reply_later(req), std::move(payload), wire_bytes);
}

void RemoteOp::reply(const PendingReply& pending, std::any payload,
                     std::uint32_t wire_bytes) {
  const std::uint64_t key = dedup_key(pending.origin, pending.rpc_id);
  in_progress_.erase(key);
  // Cache the reply so a duplicate request can be answered without
  // re-executing the operation ("resend replies only when necessary").
  done_cache_.push_back(DoneEntry{key, payload, wire_bytes, pending.kind,
                                  pending.origin});
  while (done_cache_.size() > done_cache_capacity_) evict_done_front();

  net::Message msg;
  msg.src = self_;
  msg.dst = pending.origin;
  msg.kind = pending.kind;
  msg.rpc_id = pending.rpc_id;
  msg.origin = pending.origin;
  msg.is_reply = true;
  msg.payload = std::move(payload);
  msg.wire_bytes = wire_bytes;
  IVY_EVT(stats_, record(self_, trace::EventKind::kRpcReplySent,
                         pending.rpc_id, pending.origin));
  // The server-side software time is manager-duty work; as the lowest
  // priority wait it only surfaces when the node is otherwise idle (a
  // busy node's own charges already cover the span).
  IVY_PROF(stats_, begin_wait(self_, prof::Cat::kManagerService,
                              prof::Domain::kService, pending.rpc_id,
                              sim_.now(),
                              static_cast<std::uint64_t>(pending.kind)));
  IVY_PROF(stats_, end_wait(self_, prof::Domain::kService, pending.rpc_id,
                            sim_.now() + sim_.costs().fault_server));
  // Model the server-side software time before the reply hits the wire.
  sim_.schedule_after(sim_.costs().fault_server,
                      [this, m = std::move(msg)]() mutable {
                        transmit(std::move(m));
                      });
}

void RemoteOp::evict_done_front() {
  const DoneEntry& old = done_cache_.front();
  // Remember the highest evicted rpc id per origin: a duplicate at or
  // below the watermark may silently re-execute (see the idempotence
  // contract in the header).
  const std::uint64_t rpc =
      old.key ^ (static_cast<std::uint64_t>(old.origin) << 48);
  std::uint64_t& wm = evicted_watermark_[old.origin];
  wm = std::max(wm, rpc);
  stats_.bump(self_, Counter::kDoneCacheEvictions);
  done_cache_.pop_front();
}

void RemoteOp::set_done_cache_capacity(std::size_t capacity) {
  done_cache_capacity_ = capacity;
  while (done_cache_.size() > done_cache_capacity_) evict_done_front();
}

void RemoteOp::ignore(const net::Message& req) {
  in_progress_.erase(dedup_key(req.origin, req.rpc_id));
}

void RemoteOp::cancel(std::uint64_t rpc_id) {
  if (outstanding_.erase(rpc_id) > 0) {
    IVY_EVT(stats_, record(self_, trace::EventKind::kRpcCancel, rpc_id, 0));
    IVY_PROF(stats_,
             end_wait(self_, prof::Domain::kRpc, rpc_id, sim_.now()));
  }
}

void RemoteOp::forward(net::Message&& req, NodeId next) {
  IVY_CHECK_NE(next, self_);
  // Forwarders do not answer; clear the duplicate marker so a client
  // retransmission is forwarded again (forwarding must be idempotent).
  in_progress_.erase(dedup_key(req.origin, req.rpc_id));
  stats_.bump(self_, Counter::kForwards);
  req.src = self_;
  req.dst = next;
  transmit(std::move(req));
}

void RemoteOp::on_message(net::Message&& msg) {
  if (hint_consumer_) hint_consumer_(msg.src, msg.load_hint);
  if (msg.is_reply) {
    handle_reply(std::move(msg));
  } else {
    handle_request(std::move(msg));
  }
}

void RemoteOp::transmit(net::Message msg) {
  if (hint_provider_) msg.load_hint = hint_provider_();
  ring_.send(std::move(msg));
}

void RemoteOp::set_orphan_reply_handler(net::MsgKind kind,
                                        ServerHandler handler) {
  IVY_CHECK(handler != nullptr);
  orphan_handlers_[kind] = std::move(handler);
}

void RemoteOp::handle_reply(net::Message&& msg) {
  const std::uint64_t rkey = reply_key(msg.src, msg.rpc_id);
  if (replied_.contains(rkey)) {
    // Exact duplicate (fault-injected duplication, or a cached resend
    // crossing the first copy) of a reply this node already processed.
    // Acting on it again could contradict the first decision — e.g. the
    // orphan absorber re-judging a grant it already acked.
    return;
  }
  auto it = outstanding_.find(msg.rpc_id);
  if (it == outstanding_.end()) {
    note_replied(rkey);
    IVY_EVT(stats_, record(self_, trace::EventKind::kRpcOrphan, msg.rpc_id,
                           msg.src));
    // Late duplicate.  Give resource-bearing replies a chance to be
    // absorbed; drop the rest.
    if (auto oh = orphan_handlers_.find(msg.kind);
        oh != orphan_handlers_.end()) {
      oh->second(std::move(msg));
    }
    return;
  }
  Outstanding& out = it->second;
  const Time first_sent = out.first_sent;
  const auto kind_arg =
      static_cast<std::uint64_t>(out.original.kind);
  if (out.on_all) {
    // kAll broadcast: one reply per peer; duplicates from the same peer
    // (reply resends) must not double-count.
    const bool seen = std::any_of(
        out.replies.begin(), out.replies.end(),
        [&](const net::Message& m) { return m.src == msg.src; });
    if (seen) return;
    note_replied(rkey);
    out.replies.push_back(std::move(msg));
    if (out.replies.size() < out.expected_replies) return;
    auto cb = std::move(out.on_all);
    auto replies = std::move(out.replies);
    outstanding_.erase(it);
    IVY_PROF(stats_,
             end_wait(self_, prof::Domain::kRpc, msg.rpc_id, sim_.now()));
    record_round_trip(kind_arg, first_sent, kBroadcast);
    cb(std::move(replies));
    return;
  }
  note_replied(rkey);
  const NodeId server = msg.src;
  auto cb = std::move(out.on_reply);
  outstanding_.erase(it);
  IVY_PROF(stats_,
           end_wait(self_, prof::Domain::kRpc, msg.rpc_id, sim_.now()));
  record_round_trip(kind_arg, first_sent, server);
  cb(std::move(msg));
}

void RemoteOp::note_replied(std::uint64_t key) {
  replied_.insert(key);
  replied_order_.push_back(key);
  if (replied_order_.size() > kRepliedCacheCapacity) {
    replied_.erase(replied_order_.front());
    replied_order_.pop_front();
  }
}

void RemoteOp::record_round_trip(std::uint64_t kind_arg, Time first_sent,
                                 NodeId server) {
  const Time rtt = sim_.now() - first_sent;
  stats_.record_latency(self_, Hist::kRemoteOpRoundTrip, rtt);
  IVY_EVT(stats_,
          record_span(self_, trace::EventKind::kRemoteOp, first_sent, rtt,
                      kind_arg, server == kBroadcast ? kMaxNodes : server));
}

void RemoteOp::handle_request(net::Message&& msg) {
  const std::uint64_t key = dedup_key(msg.origin, msg.rpc_id);
  // Completed before?  Resend the cached reply.
  for (const DoneEntry& done : done_cache_) {
    if (done.key == key) {
      net::Message rep;
      rep.src = self_;
      rep.dst = done.origin;
      rep.kind = done.kind;
      rep.rpc_id = msg.rpc_id;
      rep.origin = done.origin;
      rep.is_reply = true;
      rep.payload = done.payload;
      rep.wire_bytes = done.wire_bytes;
      IVY_EVT(stats_, record(self_, trace::EventKind::kRpcReplySent,
                             rep.rpc_id, rep.origin));
      transmit(std::move(rep));
      return;
    }
  }
  // Still being served?  The reply is on its way; drop the duplicate.
  if (!in_progress_.emplace(key, true).second) return;

  // Heuristic re-execution detector: rpc ids are per-origin monotone, so
  // a "new" request at or below the origin's eviction watermark is old
  // enough to be a duplicate whose cached reply was evicted.
  if (auto wm = evicted_watermark_.find(msg.origin);
      wm != evicted_watermark_.end() && msg.rpc_id <= wm->second) {
    stats_.bump(self_, Counter::kDupReexecutions);
  }

  auto it = handlers_.find(msg.kind);
  IVY_CHECK_MSG(it != handlers_.end(),
                "node " << self_ << " has no handler for "
                        << net::to_string(msg.kind));
  it->second(std::move(msg));
}

void RemoteOp::arm_retransmit_timer() {
  if (timer_armed_ || outstanding_.empty()) return;
  timer_armed_ = true;
  sim_.schedule_after(check_interval_, [this] {
    timer_armed_ = false;
    retransmit_scan();
    arm_retransmit_timer();  // keep checking while requests are pending
  });
}

void RemoteOp::retransmit_scan() {
  const Time now = sim_.now();
  std::vector<std::uint64_t> failed;
  for (auto& [id, out] : outstanding_) {
    const Time base = out.timeout != 0 ? out.timeout : request_timeout_;
    // First retransmit fires at the base timeout; later ones wait the
    // backed-off (jittered) interval computed after the previous send.
    const Time wait = out.backoff_wait != 0 ? out.backoff_wait : base;
    if (now - out.last_sent < wait) continue;
    if (out.retransmits >= max_retransmits_) {
      failed.push_back(id);
      continue;
    }
    ++out.retransmits;
    IVY_DEBUG() << "node " << self_ << " retransmits rpc " << id << " ("
                << net::to_string(out.original.kind) << ") attempt "
                << out.retransmits;
    stats_.bump(self_, Counter::kRetransmissions);
    IVY_EVT(stats_,
            record(self_, trace::EventKind::kRetransmit,
                   static_cast<std::uint64_t>(out.original.kind),
                   event_dst(out.original.dst)));
    if (out.retransmits >= 2) {
      stats_.bump(self_, Counter::kRpcBackoffs);
      IVY_EVT(stats_, record(self_, trace::EventKind::kRpcBackoff, id,
                             out.retransmits));
      // From the second retransmit on, the doubling wait dominates the
      // request latency; charge it as backoff rather than the fault leg.
      IVY_PROF(stats_,
               begin_wait(self_, prof::Cat::kBackoff, prof::Domain::kRpc, id,
                          now,
                          static_cast<std::uint64_t>(out.original.kind)));
    }
    out.backoff_wait = next_backoff(wait);
    out.last_sent = now;
    transmit(out.original);  // copy; payload shared_ptr bodies stay cheap
  }
  // Failures are surfaced after the scan: the callbacks may issue new
  // requests, which would invalidate the iteration above.
  for (const std::uint64_t id : failed) {
    auto it = outstanding_.find(id);
    if (it == outstanding_.end()) continue;
    Outstanding out = std::move(it->second);
    outstanding_.erase(it);
    fail_request(id, std::move(out));
  }
}

Time RemoteOp::next_backoff(Time prev) {
  const Time doubled = prev >= kBackoffCap / 2 ? kBackoffCap : prev * 2;
  // +-25% jitter, deterministic per node: spreads retransmissions of
  // nodes that lost frames in the same window.
  const Time quarter = std::max<Time>(doubled / 4, 1);
  return doubled - quarter +
         static_cast<Time>(
             backoff_rng_.below(static_cast<std::uint64_t>(2 * quarter)));
}

void RemoteOp::fail_request(std::uint64_t id, Outstanding&& out) {
  stats_.bump(self_, Counter::kRpcFailures);
  IVY_PROF(stats_, end_wait(self_, prof::Domain::kRpc, id, sim_.now()));
  IVY_EVT(stats_, record(self_, trace::EventKind::kRpcFailed, id,
                         event_dst(out.original.dst)));
  RequestFailure failure;
  failure.rpc_id = id;
  failure.kind = out.original.kind;
  failure.dst = out.original.dst;
  failure.attempts = out.retransmits + 1;  // the original send counts
  failure.first_sent = out.first_sent;
  IVY_WARN() << "node " << self_ << " rpc " << id << " ("
             << net::to_string(failure.kind) << " -> "
             << (failure.dst >= kMulticast ? -1
                                           : static_cast<int>(failure.dst))
             << ") failed after " << failure.attempts << " attempts";
  if (out.on_fail) {
    out.on_fail(failure);
    return;
  }
  if (failure_handler_) {
    failure_handler_(failure);
    return;
  }
  IVY_CHECK_MSG(false, "node " << self_ << " rpc " << id << " ("
                               << net::to_string(failure.kind)
                               << ") exhausted its retransmission budget "
                                  "with no failure handler installed");
}

}  // namespace ivy::rpc
