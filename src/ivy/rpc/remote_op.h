// IVY's "remote operation" module — a simple request/reply mechanism
// with the three features the paper calls out:
//
//  1. Broadcast/multicast requests with three reply schemes: a reply from
//     *any* receiver (used to locate page owners), replies from *all*
//     receivers (used for invalidation), and *no* reply (used for
//     scheduling hints).
//  2. Request forwarding: node 1 asks node 2, node 2 forwards to node 3,
//     ... node k performs the operation and replies directly to node 1
//     with no intermediate replies — the mechanism that makes the dynamic
//     distributed manager's probOwner chains cheap.
//  3. A retransmission protocol that "resends replies only when
//     necessary": servers remember completed requests and repeat the
//     cached reply if a duplicate request arrives; clients retransmit
//     unanswered requests from a half-second periodic check, mirroring
//     the null-process checking in the paper.  Retransmissions back off
//     exponentially (with deterministic jitter) and give up after a cap,
//     surfacing a terminal RequestFailure instead of retrying forever.
//
// Idempotence contract: the done-cache that suppresses duplicate
// execution is *bounded* (see set_done_cache_capacity).  If a duplicate
// request arrives after its cached reply was evicted, the server
// re-executes the handler.  Handlers must therefore either be naturally
// idempotent (read-only probes, forwards) or tolerate re-execution via
// protocol-level recovery (orphan-reply absorption returns a
// re-granted page to its owner).  Eviction is observable through
// Counter::kDoneCacheEvictions, and suspected re-executions through
// Counter::kDupReexecutions.
//
// One RemoteOp instance exists per node.  Server handlers run as
// simulator events at message-delivery time (IVY's handlers ran at
// interrupt level); a handler may answer immediately, defer the reply by
// keeping a PendingReply handle (used by per-page request queues), or
// forward the request.
#pragma once

#include <any>
#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ivy/base/rng.h"
#include "ivy/base/stats.h"
#include "ivy/net/ring.h"

namespace ivy::rpc {

/// Handle for replying to a request after the handler returned.
struct PendingReply {
  NodeId origin = kNoNode;
  std::uint64_t rpc_id = 0;
  net::MsgKind kind = net::MsgKind::kInvalid;
};

/// Terminal outcome of a request that exhausted its retransmission
/// budget (only possible under fault injection or a genuine partition).
struct RequestFailure {
  std::uint64_t rpc_id = 0;
  net::MsgKind kind = net::MsgKind::kInvalid;
  NodeId dst = kNoNode;  ///< kBroadcast for broadcast requests
  std::uint32_t attempts = 0;
  Time first_sent = 0;
};

enum class BcastReply : std::uint8_t { kAny, kAll, kNone };

class RemoteOp {
 public:
  /// on_reply receives the reply message (payload set by the server).
  using ReplyCallback = std::function<void(net::Message&&)>;
  /// on_all receives every reply of a kAll broadcast, in arrival order.
  using AllRepliesCallback = std::function<void(std::vector<net::Message>&&)>;
  /// Server handler; reply via reply_to()/reply_later() or forward().
  using ServerHandler = std::function<void(net::Message&&)>;
  /// Invoked when a request fails terminally at the retransmission cap.
  using FailureCallback = std::function<void(const RequestFailure&)>;

  RemoteOp(sim::Simulator& sim, net::Ring& ring, Stats& stats, NodeId self);

  RemoteOp(const RemoteOp&) = delete;
  RemoteOp& operator=(const RemoteOp&) = delete;

  [[nodiscard]] NodeId self() const noexcept { return self_; }

  // --- client side -----------------------------------------------------

  /// Sends a request to `dst`; `on_reply` fires exactly once.  `timeout`
  /// overrides the node's retransmission timeout for this request
  /// (0 = use the default).  `on_fail` (optional) fires instead of
  /// `on_reply` if the retransmission cap is reached; without one the
  /// node-level failure handler runs, and without that the run aborts.
  std::uint64_t request(NodeId dst, net::MsgKind kind, std::any payload,
                        std::uint32_t wire_bytes, ReplyCallback on_reply,
                        Time timeout = 0, FailureCallback on_fail = nullptr);

  /// Broadcasts a request.  For kAny, `on_reply` fires once with the
  /// first reply; for kNone neither callback may be given.
  std::uint64_t broadcast(net::MsgKind kind, std::any payload,
                          std::uint32_t wire_bytes, BcastReply scheme,
                          ReplyCallback on_first = nullptr,
                          AllRepliesCallback on_all = nullptr,
                          Time timeout = 0, FailureCallback on_fail = nullptr);

  /// Multicasts a request to `targets` as ONE ring frame and waits for a
  /// reply from every target (the kAll scheme restricted to the copyset).
  /// `targets` must be non-empty and must not include this node.  With
  /// `deliver_to_all` the frame is a true ring broadcast (every station
  /// copies it) but still only `targets.count()` replies complete the
  /// round — receivers outside `targets` are expected to ignore() it.
  std::uint64_t multicast(NodeSet targets, net::MsgKind kind,
                          std::any payload, std::uint32_t wire_bytes,
                          AllRepliesCallback on_all, Time timeout = 0,
                          FailureCallback on_fail = nullptr,
                          bool deliver_to_all = false);

  /// Abandons an outstanding request: no callback will fire and no
  /// retransmissions will be sent.  A reply that still arrives is routed
  /// to the orphan handler of its kind (so resource-bearing replies are
  /// not lost).  No-op if the request already completed.
  void cancel(std::uint64_t rpc_id);

  // --- server side -------------------------------------------------------

  void set_handler(net::MsgKind kind, ServerHandler handler);

  /// Handler for replies whose request is no longer outstanding (a
  /// duplicate answered by a different server after the first reply won).
  /// Without one, such replies are dropped — fine for idempotent data,
  /// wrong for replies that carry a resource (page ownership).
  void set_orphan_reply_handler(net::MsgKind kind, ServerHandler handler);

  /// Replies to `req` immediately (charges server handling time first).
  void reply_to(const net::Message& req, std::any payload,
                std::uint32_t wire_bytes);

  /// Captures a deferred-reply handle; the handler returns without
  /// answering and some later event calls reply().
  [[nodiscard]] static PendingReply reply_later(const net::Message& req) {
    return PendingReply{req.origin, req.rpc_id, req.kind};
  }
  void reply(const PendingReply& pending, std::any payload,
             std::uint32_t wire_bytes);

  /// Declares that this node will never answer `req` (e.g. a broadcast
  /// owner probe received by a non-owner).  Clears the duplicate marker
  /// so a retransmission is evaluated afresh.
  void ignore(const net::Message& req);

  /// Forwards `req` to `next` without replying; the eventual server
  /// replies straight to the originator.
  void forward(net::Message&& req, NodeId next);

  // --- load hints ---------------------------------------------------------

  /// Provider of this node's one-byte load hint, packed into every
  /// outgoing message.
  void set_load_hint_provider(std::function<std::uint8_t()> provider) {
    hint_provider_ = std::move(provider);
  }
  /// Consumer invoked for the hint on every incoming message.
  void set_load_hint_consumer(
      std::function<void(NodeId, std::uint8_t)> consumer) {
    hint_consumer_ = std::move(consumer);
  }

  // --- retransmission ------------------------------------------------------

  void set_request_timeout(Time timeout) { request_timeout_ = timeout; }
  [[nodiscard]] Time request_timeout() const { return request_timeout_; }
  void set_check_interval(Time interval) { check_interval_ = interval; }
  /// Retransmissions allowed per request before it fails terminally.
  void set_max_retransmits(std::uint32_t cap) { max_retransmits_ = cap; }
  /// Node-level handler for terminal request failures (requests without a
  /// per-request on_fail).  Without one, a terminal failure aborts the
  /// run with diagnostics — a protocol under test should never hit the
  /// cap silently.
  void set_failure_handler(FailureCallback handler) {
    failure_handler_ = std::move(handler);
  }
  /// Shrinks (or grows) the done-cache; exposed so tests can force
  /// eviction-induced re-execution with little traffic.
  void set_done_cache_capacity(std::size_t capacity);
  [[nodiscard]] std::size_t outstanding_requests() const {
    return outstanding_.size();
  }
  /// Requests accepted but not yet answered by this node's server side
  /// (deferred replies included).  Zero at quiescence.
  [[nodiscard]] std::size_t pending_serves() const {
    return in_progress_.size();
  }

  /// Entry point wired to the ring.
  void on_message(net::Message&& msg);

 private:
  struct Outstanding {
    net::Message original;  ///< kept for retransmission
    ReplyCallback on_reply;
    AllRepliesCallback on_all;
    FailureCallback on_fail;
    std::vector<net::Message> replies;  ///< kAll accumulation
    std::uint32_t expected_replies = 1;
    std::uint32_t retransmits = 0;  ///< resends so far (0 = first send only)
    Time first_sent = 0;  ///< for round-trip latency accounting
    Time last_sent = 0;
    Time timeout = 0;       ///< 0 = node default
    Time backoff_wait = 0;  ///< current wait before the next retransmit
  };

  struct DoneEntry {
    std::uint64_t key = 0;
    std::any payload;
    std::uint32_t wire_bytes = 0;
    net::MsgKind kind = net::MsgKind::kInvalid;
    NodeId origin = kNoNode;
  };

  void transmit(net::Message msg);
  void record_round_trip(std::uint64_t kind_arg, Time first_sent,
                         NodeId server);
  void handle_reply(net::Message&& msg);
  void handle_request(net::Message&& msg);
  void arm_retransmit_timer();
  void retransmit_scan();
  void fail_request(std::uint64_t id, Outstanding&& out);
  /// Wait before the retransmit after one that waited `prev`: doubled,
  /// capped, with deterministic +-25% jitter.
  Time next_backoff(Time prev);
  void evict_done_front();
  /// Marks a (server, rpc) reply as processed for duplicate suppression.
  void note_replied(std::uint64_t key);
  static std::uint64_t dedup_key(NodeId origin, std::uint64_t rpc_id) {
    return (static_cast<std::uint64_t>(origin) << 48) ^ rpc_id;
  }

  sim::Simulator& sim_;
  net::Ring& ring_;
  Stats& stats_;
  NodeId self_;

  std::uint64_t next_rpc_id_;
  std::unordered_map<std::uint64_t, Outstanding> outstanding_;
  std::unordered_map<net::MsgKind, ServerHandler> handlers_;
  std::unordered_map<net::MsgKind, ServerHandler> orphan_handlers_;

  // Duplicate-request suppression: in-progress set + bounded cache of
  // completed replies ("resend replies only when necessary").
  std::unordered_map<std::uint64_t, bool> in_progress_;
  std::deque<DoneEntry> done_cache_;
  std::size_t done_cache_capacity_ = 1024;
  /// Highest rpc_id evicted from the done-cache per origin node: a
  /// duplicate below (or at) the watermark *may* be a re-execution of an
  /// evicted entry (exact detection is impossible once the key is gone).
  std::unordered_map<NodeId, std::uint64_t> evicted_watermark_;

  // Duplicate-reply suppression: every (rpc_id, server) reply is
  // processed at most once.  Without it a fault-duplicated reply frame
  // is handed to the orphan machinery a second time, which can issue a
  // contradictory decision for a resource it already accepted, and a
  // duplicated kAll reply double-decrements the remaining-reply count.
  // Bounded like the done-cache; an evicted entry degrades gracefully to
  // the orphan path.
  std::deque<std::uint64_t> replied_order_;
  std::unordered_set<std::uint64_t> replied_;
  static std::uint64_t reply_key(NodeId server, std::uint64_t rpc_id) {
    return (static_cast<std::uint64_t>(server) << 56) ^ rpc_id;
  }

  std::function<std::uint8_t()> hint_provider_;
  std::function<void(NodeId, std::uint8_t)> hint_consumer_;

  // Generous default: page requests can legitimately queue behind long
  // defer chains under write contention; duplicates are correctness-safe
  // (orphan absorption) but wasteful.  Drop tests dial this down.
  Time request_timeout_ = sec(2);
  Time check_interval_ = ms(500);  // "every half second"
  std::uint32_t max_retransmits_ = 16;
  FailureCallback failure_handler_;
  /// Jitter stream for backoff; seeded from the node id only, so runs
  /// that never retransmit draw nothing and stay bit-identical.
  Rng backoff_rng_;
  bool timer_armed_ = false;
};

}  // namespace ivy::rpc
