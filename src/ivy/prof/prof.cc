#include "ivy/prof/prof.h"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace ivy::prof {
namespace {

/// Priority of a wait category when several are active at once: the
/// stricter cause wins (a disk stall explains the idle time better than
/// an eventcount wait that happens to overlap it).  Higher wins; ties
/// are broken by earliest-begun.
int wait_priority(Cat cat) {
  switch (cat) {
    case Cat::kDisk: return 13;
    case Cat::kBackoff: return 12;
    case Cat::kWriteFaultInvalidate: return 11;
    case Cat::kWriteFaultTransfer: return 10;
    case Cat::kWriteFaultLocate: return 9;
    case Cat::kReadFaultInvalidate: return 8;
    case Cat::kReadFaultTransfer: return 7;
    case Cat::kReadFaultLocate: return 6;
    case Cat::kMigration: return 5;
    case Cat::kLockWait: return 4;
    case Cat::kSyncWait: return 3;
    case Cat::kManagerService: return 2;
    default: return 0;  // busy categories and kIdle never win a wait
  }
}

bool read_family(Cat cat) {
  return cat == Cat::kReadFaultLocate || cat == Cat::kReadFaultTransfer ||
         cat == Cat::kReadFaultInvalidate;
}

bool write_family(Cat cat) {
  return cat == Cat::kWriteFaultLocate || cat == Cat::kWriteFaultTransfer ||
         cat == Cat::kWriteFaultInvalidate;
}

}  // namespace

const std::array<const char*, kCatCount>& cat_names() {
  static const std::array<const char*, kCatCount> names = {
      "compute",
      "sched_overhead",
      "lock_spin",
      "disk",
      "read_fault_locate",
      "read_fault_transfer",
      "read_fault_invalidate",
      "write_fault_locate",
      "write_fault_transfer",
      "write_fault_invalidate",
      "manager_service",
      "lock_wait",
      "sync_wait",
      "migration",
      "backoff",
      "idle",
  };
  return names;
}

const char* to_string(Cat cat) {
  return cat_names()[static_cast<std::size_t>(cat)];
}

const char* domain_prefix(Domain d) {
  switch (d) {
    case Domain::kNone: return "";
    case Domain::kPageFault: return "page";
    case Domain::kLock: return "lock";
    case Domain::kSync: return "ec";
    case Domain::kRpc: return "rpc";
    case Domain::kMigrate: return "from";
    case Domain::kService: return "msg";
  }
  return "";
}

ChargeScope::ChargeScope(Profiler* prof, Cat cat) : prof_(prof) {
  if (prof_ != nullptr) {
    prev_ = prof_->scope();
    prof_->set_scope(cat);
  }
}

ChargeScope::~ChargeScope() {
  if (prof_ != nullptr) prof_->set_scope(prev_);
}

Profiler::Profiler(NodeId nodes, Time slice) : slice_(slice) {
  IVY_CHECK_GT(nodes, 0u);
  IVY_CHECK_GE(slice, 0);
  nodes_.resize(nodes);
}

// --- accounting core --------------------------------------------------

void Profiler::account(NodeProf& np, Cat cat, Domain domain,
                       std::uint64_t tag, Time from, Time to) {
  IVY_CHECK_LT(from, to);
  const auto ci = static_cast<std::size_t>(cat);
  np.totals[ci] += to - from;
  const std::uint64_t leaf = (static_cast<std::uint64_t>(ci) << 56) |
                             (static_cast<std::uint64_t>(domain) << 48) |
                             (tag & ((std::uint64_t{1} << 48) - 1));
  np.folded[leaf] += to - from;
  if (slice_ > 0) {
    Time a = from;
    while (a < to) {
      const auto bin = static_cast<std::size_t>(a / slice_);
      const Time end = std::min(to, static_cast<Time>(bin + 1) * slice_);
      if (np.bins.size() <= bin) np.bins.resize(bin + 1);
      np.bins[bin][ci] += end - a;
      a = end;
    }
  }
}

void Profiler::charge_wait_segment(NodeProf& np, Time from, Time to) {
  if (to <= from) return;
  const Wait* winner = nullptr;
  for (const auto& [key, w] : np.active) {
    if (winner == nullptr) {
      winner = &w;
      continue;
    }
    const int pw = wait_priority(w.cat);
    const int pb = wait_priority(winner->cat);
    if (pw > pb ||
        (pw == pb && (w.begun < winner->begun ||
                      (w.begun == winner->begun && w.seq < winner->seq)))) {
      winner = &w;
    }
  }
  if (winner == nullptr) {
    account(np, Cat::kIdle, Domain::kNone, 0, from, to);
  } else {
    account(np, winner->cat, winner->domain, winner->tag, from, to);
  }
}

void Profiler::apply_mark(NodeProf& np, const Mark& m) {
  switch (m.kind) {
    case Mark::kBegin: {
      auto [it, inserted] = np.active.try_emplace(m.key);
      Wait& w = it->second;
      if (inserted) {
        w.begun = m.ts;
        w.seq = m.seq;
        w.hops = 0;
      }
      w.cat = m.cat;
      w.tag = m.tag;
      w.domain = static_cast<Domain>((m.key >> 48) & 0xff);
      break;
    }
    case Mark::kRetag: {
      auto it = np.active.find(m.key);
      if (it == np.active.end()) return;
      if (m.cat != Cat::kCount) {
        it->second.cat = m.cat;
        return;
      }
      // fault_leg mark: move the wait to the requested leg, keeping its
      // read/write family.  Non-fault waits (disk restores) are left
      // alone.
      const Cat cur = it->second.cat;
      const bool rd = read_family(cur);
      if (!rd && !write_family(cur)) return;
      switch (static_cast<FaultLeg>(m.tag)) {
        case FaultLeg::kLocate:
          it->second.cat = rd ? Cat::kReadFaultLocate : Cat::kWriteFaultLocate;
          break;
        case FaultLeg::kTransfer:
          it->second.cat =
              rd ? Cat::kReadFaultTransfer : Cat::kWriteFaultTransfer;
          break;
        case FaultLeg::kInvalidate:
          it->second.cat =
              rd ? Cat::kReadFaultInvalidate : Cat::kWriteFaultInvalidate;
          break;
      }
      break;
    }
    case Mark::kEnd: {
      auto it = np.active.find(m.key);
      if (it == np.active.end()) return;
      const Wait& w = it->second;
      if (w.hops > 0) {
        if (read_family(w.cat)) np.hop_total[0] += w.hops;
        else if (write_family(w.cat)) np.hop_total[1] += w.hops;
      }
      np.active.erase(it);
      break;
    }
    case Mark::kHop: {
      auto it = np.active.find(m.key);
      if (it != np.active.end()) ++it->second.hops;
      break;
    }
  }
}

void Profiler::advance_to(NodeProf& np, Time t) {
  if (!np.marks_sorted) {
    std::stable_sort(np.marks.begin(), np.marks.end(),
                     [](const Mark& a, const Mark& b) {
                       return a.ts != b.ts ? a.ts < b.ts : a.seq < b.seq;
                     });
    np.marks_sorted = true;
  }
  std::size_t i = 0;
  while (i < np.marks.size() && np.marks[i].ts <= t) {
    const Mark& m = np.marks[i];
    if (m.ts > np.cursor) {
      charge_wait_segment(np, np.cursor, m.ts);
      np.cursor = m.ts;
    }
    apply_mark(np, m);
    ++i;
  }
  if (i > 0) {
    np.marks.erase(np.marks.begin(),
                   np.marks.begin() + static_cast<std::ptrdiff_t>(i));
  }
  if (t > np.cursor) {
    charge_wait_segment(np, np.cursor, t);
    np.cursor = t;
  }
}

void Profiler::push_mark(NodeId node, Mark m) {
  if (frozen_) return;
  NodeProf& np = nodes_[node];
  m.seq = ++next_seq_;
  if (!np.marks.empty() && np.marks_sorted &&
      m.ts < np.marks.back().ts) {
    np.marks_sorted = false;
  }
  np.marks.push_back(m);
}

// --- busy side --------------------------------------------------------

void Profiler::note_fiber_charge(NodeId node, Time t) {
  if (frozen_ || t <= 0) return;
  nodes_[node].fiber_acc[static_cast<std::size_t>(scope_)] += t;
}

void Profiler::charge_busy(NodeId node, Time from, Time to, Cat cat) {
  if (frozen_) return;
  NodeProf& np = nodes_[node];
  from = std::max(from, np.cursor);
  if (to <= from) return;
  advance_to(np, from);
  account(np, cat, Domain::kNone, 0, from, to);
  np.cursor = to;
}

void Profiler::commit_dispatch(NodeId node, Time now, Time switch_cost,
                               Time fiber_charge, Time pending) {
  if (frozen_) return;
  NodeProf& np = nodes_[node];
  Time t = now;
  if (switch_cost > 0) {
    charge_busy(node, t, t + switch_cost, Cat::kSchedOverhead);
    t += switch_cost;
  }
  // Split the fiber's accumulated charge by the ChargeScope categories
  // noted while it ran; whatever the scopes do not explain is plain
  // application compute.  The scoped sum normally equals the charge
  // exactly (charge_current is the only funnel) but clamping keeps the
  // invariant under any future charge path the scopes miss.
  Time left = fiber_charge;
  for (std::size_t c = 0; c < kCatCount && left > 0; ++c) {
    const Time amt = std::min(np.fiber_acc[c], left);
    if (amt <= 0) continue;
    charge_busy(node, t, t + amt, static_cast<Cat>(c));
    t += amt;
    left -= amt;
  }
  np.fiber_acc.fill(0);
  if (left > 0) {
    charge_busy(node, t, t + left, Cat::kCompute);
    t += left;
  }
  if (pending > 0) {
    charge_busy(node, t, t + pending, Cat::kDisk);
  }
}

// --- wait side --------------------------------------------------------

void Profiler::begin_wait(NodeId node, Cat cat, Domain domain,
                          std::uint64_t value, Time at, std::uint64_t tag) {
  Mark m;
  m.kind = Mark::kBegin;
  m.cat = cat;
  m.ts = at;
  m.key = make_key(domain, value);
  m.tag = tag == kDefaultTag ? value : tag;
  push_mark(node, m);
}

void Profiler::retag_wait(NodeId node, Domain domain, std::uint64_t value,
                          Cat cat, Time at) {
  Mark m;
  m.kind = Mark::kRetag;
  m.cat = cat;
  m.ts = at;
  m.key = make_key(domain, value);
  push_mark(node, m);
}

void Profiler::end_wait(NodeId node, Domain domain, std::uint64_t value,
                        Time at) {
  Mark m;
  m.kind = Mark::kEnd;
  m.ts = at;
  m.key = make_key(domain, value);
  push_mark(node, m);
}

void Profiler::fault_leg(NodeId node, std::uint64_t page, FaultLeg leg,
                         Time at) {
  if (frozen_) return;
  // The family (read vs write) lives in the wait's current category,
  // which is only known once earlier marks are applied — so this resolves
  // lazily, as a retag mark that inspects the wait when processed.
  Mark m;
  m.kind = Mark::kRetag;
  m.cat = Cat::kCount;  // sentinel: resolve family at apply time
  m.ts = at;
  m.key = make_key(Domain::kPageFault, page);
  m.tag = static_cast<std::uint64_t>(leg);
  push_mark(node, m);
}

void Profiler::note_hop(NodeId node, std::uint64_t page) {
  Mark m;
  m.kind = Mark::kHop;
  m.ts = nodes_[node].cursor;  // hops are counts; timing is irrelevant
  m.key = make_key(Domain::kPageFault, page);
  push_mark(node, m);
}

// --- lifecycle --------------------------------------------------------

void Profiler::sync_to(Time t) {
  if (frozen_) return;
  for (auto& np : nodes_) advance_to(np, t);
}

Profiler::Snapshot Profiler::snapshot() const {
  Snapshot snap;
  for (const auto& np : nodes_) {
    snap.accounted = std::max(snap.accounted, np.cursor);
    snap.totals.push_back(np.totals);
    snap.hops.push_back(np.hop_total);
  }
  return snap;
}

void Profiler::finalize(Time end) {
  if (frozen_) return;
  for (auto& np : nodes_) {
    // Drop marks stamped beyond the end of the run (e.g. a manager
    // service span that ends after the last event) so they cannot
    // linger, then account the tail.
    advance_to(np, end);
    np.marks.clear();
  }
  frozen_ = true;
}

bool Profiler::self_check(std::string* error) const {
  for (NodeId n = 0; n < nodes(); ++n) {
    const NodeProf& np = nodes_[n];
    Time sum = 0;
    for (const Time t : np.totals) sum += t;
    if (sum != np.cursor) {
      if (error != nullptr) {
        std::ostringstream os;
        os << "prof self-check: node " << n << " categories sum to " << sum
           << " ns but " << np.cursor << " ns elapsed";
        *error = os.str();
      }
      return false;
    }
    Time folded_sum = 0;
    for (const auto& [leaf, t] : np.folded) folded_sum += t;
    if (folded_sum != sum) {
      if (error != nullptr) {
        std::ostringstream os;
        os << "prof self-check: node " << n << " folded leaves sum to "
           << folded_sum << " ns but categories sum to " << sum << " ns";
        *error = os.str();
      }
      return false;
    }
  }
  return true;
}

// --- exports ----------------------------------------------------------

void Profiler::write_folded(std::ostream& out) const {
  for (NodeId n = 0; n < nodes(); ++n) {
    for (const auto& [leaf, t] : nodes_[n].folded) {
      const auto cat = static_cast<Cat>(leaf >> 56);
      const auto domain = static_cast<Domain>((leaf >> 48) & 0xff);
      const std::uint64_t tag = leaf & ((std::uint64_t{1} << 48) - 1);
      out << "node" << n << ";" << to_string(cat);
      if (domain != Domain::kNone) {
        out << ";" << domain_prefix(domain) << tag;
      }
      out << " " << t << "\n";
    }
  }
}

void Profiler::write_timeline_csv(std::ostream& out) const {
  out << "t_ns,node";
  for (const char* name : cat_names()) out << "," << name;
  out << "\n";
  if (slice_ <= 0) return;
  std::size_t max_bins = 0;
  for (const auto& np : nodes_) max_bins = std::max(max_bins, np.bins.size());
  for (std::size_t b = 0; b < max_bins; ++b) {
    for (NodeId n = 0; n < nodes(); ++n) {
      const auto& bins = nodes_[n].bins;
      out << static_cast<Time>(b) * slice_ << "," << n;
      for (std::size_t c = 0; c < kCatCount; ++c) {
        out << "," << (b < bins.size() ? bins[b][c] : Time{0});
      }
      out << "\n";
    }
  }
}

}  // namespace ivy::prof
