// ivy::prof — virtual-time cost attribution.
//
// The paper's whole evaluation is *time* (Figures 4-6 are speedup
// curves), yet counters answer "how many" and the tracer answers
// "when"; neither says where a node's virtual cycles went.  This module
// does: every simulated nanosecond of every node lands in exactly one
// category — busy work (compute, scheduling overhead, lock spinning)
// charged from the fiber cost funnel, or the winner of the waits active
// while the CPU is otherwise idle (fault legs, disk, lock/eventcount
// blocking, migration, rpc backoff, manager service) — and the per-node
// totals are verified to sum to the elapsed virtual time exactly.
//
// The accounting model mirrors the simulator's cost model:
//   * Busy time.  The scheduler commits a fiber's accumulated charge at
//     each yield as a [now, busy_until) span; commit_dispatch() splits
//     it into the categories noted by ChargeScope while the fiber ran
//     (default kCompute), plus kSchedOverhead for the context switch
//     and kDisk for protocol charges drained from the svm.
//   * Wait time.  Instrumentation sites place begin/retag/end marks
//     keyed by (domain, id); whenever a node's timeline is not covered
//     by a busy span, the highest-priority active wait is charged (disk
//     beats backoff beats fault legs beats lock/sync waits beats
//     manager service); with no active wait the time is kIdle.
//
// Like the oracle, the profiler lives outside the simulated machines:
// marks cost no virtual time and may cross nodes (a serving node retags
// the requester's fault wait into its transfer leg).  Everything is
// null-pointer gated through IVY_PROF, so a run without --prof-out pays
// one branch per instrumentation site.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "ivy/base/check.h"
#include "ivy/base/types.h"

namespace ivy::prof {

/// Where a virtual nanosecond went.  Index-aligned with cat_names().
enum class Cat : std::uint8_t {
  // -- busy categories (the CPU is occupied) ---------------------------
  kCompute = 0,     ///< application work charged by the fiber
  kSchedOverhead,   ///< context switches, spawn cost, fault handler entry
  kLockSpin,        ///< test-and-set / lock bookkeeping cycles
  kDisk,            ///< page-in/out stalling the node (IVY's no-overlap I/O)
  // -- wait categories (the CPU is idle, something is outstanding) -----
  kReadFaultLocate,      ///< read fault: finding the owner
  kReadFaultTransfer,    ///< read fault: page body on the wire / install
  kReadFaultInvalidate,  ///< read fault: (rare) invalidation round
  kWriteFaultLocate,     ///< write fault: finding the owner
  kWriteFaultTransfer,   ///< write fault: grant + page on the wire
  kWriteFaultInvalidate, ///< write fault: invalidating the copy set
  kManagerService,       ///< serving remote requests (manager duty)
  kLockWait,             ///< blocked on a contended SvmLock
  kSyncWait,             ///< blocked on an eventcount / barrier
  kMigration,            ///< waiting for a migrated process to arrive
  kBackoff,              ///< rpc exponential backoff between retransmits
  kIdle,                 ///< nothing outstanding
  kCount                 // sentinel
};

inline constexpr std::size_t kCatCount = static_cast<std::size_t>(Cat::kCount);

[[nodiscard]] const char* to_string(Cat cat);
[[nodiscard]] const std::array<const char*, kCatCount>& cat_names();

/// Wait keys are namespaced so a lock wait and a page-fault wait on the
/// same page never collide.
enum class Domain : std::uint8_t {
  kNone = 0,   ///< busy charges (no wait key)
  kPageFault,  ///< value = PageId
  kLock,       ///< value = the lock's PageId
  kSync,       ///< value = the eventcount's PageId
  kRpc,        ///< value = rpc id (backoff waits)
  kMigrate,    ///< value = 0 (one migrate-ask in flight per node)
  kService,    ///< value = rpc id being served
};

[[nodiscard]] const char* domain_prefix(Domain d);

/// Which leg of a fault's critical path the wait is in; retagging keeps
/// the read/write family of the active wait (invalidate legs on a read
/// fault stay kReadFaultInvalidate).
enum class FaultLeg : std::uint8_t { kLocate, kTransfer, kInvalidate };

class Profiler;

/// RAII category for busy charges made while the current fiber runs.
/// Nested scopes win innermost; the default (no scope) is kCompute.
/// Null-profiler safe.
class ChargeScope {
 public:
  ChargeScope(Profiler* prof, Cat cat);
  ~ChargeScope();
  ChargeScope(const ChargeScope&) = delete;
  ChargeScope& operator=(const ChargeScope&) = delete;

 private:
  Profiler* prof_;
  Cat prev_ = Cat::kCompute;
};

class Profiler {
 public:
  /// `slice` > 0 additionally bins every charge into per-node utilization
  /// slices of that width (for the timeline CSV / Chrome counter track).
  explicit Profiler(NodeId nodes, Time slice = 0);

  [[nodiscard]] NodeId nodes() const { return static_cast<NodeId>(nodes_.size()); }
  [[nodiscard]] Time slice() const { return slice_; }

  // --- busy side (scheduler cost funnel) ------------------------------

  /// A fiber charge passed through Scheduler::charge_current; remembered
  /// under the current ChargeScope category until the next dispatch
  /// commit on that node.
  void note_fiber_charge(NodeId node, Time t);

  /// The scheduler committed a busy span at a yield: [now, now +
  /// switch_cost + fiber_charge + pending).  The fiber charge is split
  /// into the categories noted since the last commit (any remainder is
  /// kCompute); `pending` is svm protocol work (disk) drained into the
  /// same span.
  void commit_dispatch(NodeId node, Time now, Time switch_cost,
                       Time fiber_charge, Time pending);

  /// Directly charge a busy span (spawn cost, event-context disk
  /// stalls).  `from` is clipped to the node's accounting cursor, so a
  /// span the busy model later overwrites can never break the
  /// sums-to-elapsed invariant.
  void charge_busy(NodeId node, Time from, Time to, Cat cat);

  // --- wait side (instrumentation marks) ------------------------------

  /// Starts (or retags, if `(domain, value)` is already active) a wait.
  /// `tag` names the folded-stack leaf; by default the key value.
  void begin_wait(NodeId node, Cat cat, Domain domain, std::uint64_t value,
                  Time at, std::uint64_t tag = kDefaultTag);
  /// Retags an active wait; no-op when the key is not active.
  void retag_wait(NodeId node, Domain domain, std::uint64_t value, Cat cat,
                  Time at);
  /// Ends a wait; no-op when the key is not active (tolerant: some
  /// completion paths never began one).  `at` may lie in the future
  /// (e.g. manager service ends at now + fault_server); the mark is
  /// applied when the timeline reaches it.
  void end_wait(NodeId node, Domain domain, std::uint64_t value, Time at);

  /// Moves an active page-fault wait to the given leg, preserving its
  /// read/write family; no-op for non-fault waits (e.g. kDisk restores).
  void fault_leg(NodeId node, std::uint64_t page, FaultLeg leg, Time at);

  /// A fault request was forwarded another hop on behalf of `node`.
  void note_hop(NodeId node, std::uint64_t page);

  // --- ChargeScope plumbing -------------------------------------------

  [[nodiscard]] Cat scope() const { return scope_; }
  void set_scope(Cat cat) { scope_ = cat; }

  // --- lifecycle ------------------------------------------------------

  /// Advances every node's timeline to `t` (charging waits / idle)
  /// without freezing — call between runs or before reading totals.
  void sync_to(Time t);
  /// Advances every node's timeline to `end` (charging waits / idle) and
  /// freezes the profiler; later marks and charges are ignored.
  void finalize(Time end);
  [[nodiscard]] bool finalized() const { return frozen_; }

  /// Verifies Σ category totals == elapsed virtual time for every node.
  /// True by construction unless the accounting itself is broken — which
  /// is exactly what it guards.
  [[nodiscard]] bool self_check(std::string* error = nullptr) const;

  [[nodiscard]] Time total(NodeId node, Cat cat) const {
    return nodes_[node].totals[static_cast<std::size_t>(cat)];
  }
  /// Virtual time accounted so far on `node` (== finalize() end after
  /// finalization).
  [[nodiscard]] Time accounted(NodeId node) const {
    return nodes_[node].cursor;
  }
  /// Total forwarding hops observed for read / write faults on `node`.
  [[nodiscard]] std::uint64_t hops(NodeId node, bool write) const {
    return nodes_[node].hop_total[write ? 1 : 0];
  }

  /// Per-slice category bins of `node` (empty when slice() == 0).
  [[nodiscard]] const std::vector<std::array<Time, kCatCount>>& slices(
      NodeId node) const {
    return nodes_[node].bins;
  }

  /// A frozen copy of the attribution state.  Runtime::run() takes one
  /// at the end of every run, so tools can read the attribution of the
  /// program proper even after verification host-reads drained the
  /// simulator further (that drain would otherwise show up as idle).
  struct Snapshot {
    Time accounted = 0;  ///< every node's Σ categories equals this
    std::vector<std::array<Time, kCatCount>> totals;      ///< per node
    std::vector<std::array<std::uint64_t, 2>> hops;       ///< [read, write]
  };
  /// Call sync_to() first so all nodes share one accounted instant.
  [[nodiscard]] Snapshot snapshot() const;

  // --- exports --------------------------------------------------------

  /// Folded-stack lines (collapsed format, speedscope / flamegraph.pl
  /// compatible): `node0;write_fault_transfer;page42 999`.
  void write_folded(std::ostream& out) const;
  /// Per-slice per-node category nanoseconds as CSV (slice() must be
  /// > 0 for any rows to exist).
  void write_timeline_csv(std::ostream& out) const;

 private:
  static constexpr std::uint64_t kDefaultTag = ~std::uint64_t{0};

  struct Mark {
    enum Kind : std::uint8_t { kBegin, kRetag, kEnd, kHop };
    Kind kind = kBegin;
    Cat cat = Cat::kIdle;
    Time ts = 0;
    std::uint64_t key = 0;   ///< (domain << 48) | value
    std::uint64_t tag = 0;
    std::uint64_t seq = 0;   ///< stable order among equal timestamps
  };

  struct Wait {
    Cat cat = Cat::kIdle;
    Domain domain = Domain::kNone;
    std::uint64_t tag = 0;
    Time begun = 0;
    std::uint64_t hops = 0;
    std::uint64_t seq = 0;
  };

  struct NodeProf {
    Time cursor = 0;  ///< everything before this instant is accounted
    std::array<Time, kCatCount> totals{};
    std::array<Time, kCatCount> fiber_acc{};  ///< scoped charges pending commit
    std::vector<Mark> marks;                  ///< pending, lazily sorted
    bool marks_sorted = true;
    std::unordered_map<std::uint64_t, Wait> active;
    /// folded leaf (cat<<56 | domain<<48 | tag) -> time
    std::map<std::uint64_t, Time> folded;
    std::vector<std::array<Time, kCatCount>> bins;
    std::array<std::uint64_t, 2> hop_total{};  ///< [read, write]
  };

  static std::uint64_t make_key(Domain d, std::uint64_t value) {
    return (static_cast<std::uint64_t>(d) << 48) |
           (value & ((std::uint64_t{1} << 48) - 1));
  }

  void push_mark(NodeId node, Mark m);
  /// Accounts [cursor, t) of `node` against its active waits (processing
  /// due marks in timestamp order) and advances the cursor.
  void advance_to(NodeProf& np, Time t);
  void apply_mark(NodeProf& np, const Mark& m);
  void charge_wait_segment(NodeProf& np, Time from, Time to);
  void account(NodeProf& np, Cat cat, Domain domain, std::uint64_t tag,
               Time from, Time to);

  std::vector<NodeProf> nodes_;
  Time slice_ = 0;
  Cat scope_ = Cat::kCompute;
  std::uint64_t next_seq_ = 0;
  bool frozen_ = false;
};

}  // namespace ivy::prof

/// Cost-attribution entry point for instrumented modules: a single
/// branch on Stats::prof() (nullptr unless profiling is armed), nothing
/// at all under IVY_PROF_COMPILED_OUT.
///
///   IVY_PROF(stats_, end_wait(self_, prof::Domain::kPageFault, page, now));
#ifdef IVY_PROF_COMPILED_OUT
#define IVY_PROF(stats, call) \
  do {                        \
  } while (0)
#else
#define IVY_PROF(stats, call)                                  \
  do {                                                         \
    if (::ivy::prof::Profiler* ivy_prof_p = (stats).prof()) {  \
      ivy_prof_p->call;                                        \
    }                                                          \
  } while (0)
#endif
