// Unit tests for the remote operation module: request/reply, the three
// broadcast reply schemes, forwarding chains, retransmission with
// "resend replies only when necessary", and orphan-reply absorption.
#include <gtest/gtest.h>

#include "ivy/rpc/remote_op.h"

namespace ivy::rpc {
namespace {

struct Payload {
  int value = 0;
};

class RpcTest : public testing::Test {
 protected:
  static constexpr NodeId kNodes = 4;

  RpcTest() : stats_(kNodes), ring_(sim_, stats_, kNodes) {
    for (NodeId n = 0; n < kNodes; ++n) {
      ops_.push_back(std::make_unique<RemoteOp>(sim_, ring_, stats_, n));
    }
  }

  RemoteOp& op(NodeId n) { return *ops_[n]; }

  sim::Simulator sim_;
  Stats stats_;
  net::Ring ring_;
  std::vector<std::unique_ptr<RemoteOp>> ops_;
};

TEST_F(RpcTest, RequestReplyRoundtrip) {
  int served = 0;
  op(1).set_handler(net::MsgKind::kAllocRequest, [&](net::Message&& msg) {
    ++served;
    const auto p = std::any_cast<Payload>(msg.payload);
    op(1).reply_to(msg, Payload{p.value * 2}, 8);
  });
  int got = -1;
  op(0).request(1, net::MsgKind::kAllocRequest, Payload{21}, 8,
                [&](net::Message&& reply) {
                  got = std::any_cast<Payload>(reply.payload).value;
                });
  sim_.run_until_idle();
  EXPECT_EQ(served, 1);
  EXPECT_EQ(got, 42);
  EXPECT_EQ(op(0).outstanding_requests(), 0u);
}

TEST_F(RpcTest, DeferredReplyViaPendingHandle) {
  PendingReply pending;
  op(2).set_handler(net::MsgKind::kAllocRequest, [&](net::Message&& msg) {
    pending = RemoteOp::reply_later(msg);
    // Answer 10 ms later from an unrelated event.
    sim_.schedule_after(ms(10), [&] { op(2).reply(pending, Payload{7}, 8); });
  });
  int got = -1;
  op(0).request(2, net::MsgKind::kAllocRequest, Payload{0}, 8,
                [&](net::Message&& reply) {
                  got = std::any_cast<Payload>(reply.payload).value;
                });
  sim_.run_until_idle();
  EXPECT_EQ(got, 7);
}

TEST_F(RpcTest, ForwardingChainRepliesToOrigin) {
  // 0 -> 1 -> 2 -> 3, node 3 serves; no intermediate replies.
  op(1).set_handler(net::MsgKind::kReadFault,
                    [&](net::Message&& msg) { op(1).forward(std::move(msg), 2); });
  op(2).set_handler(net::MsgKind::kReadFault,
                    [&](net::Message&& msg) { op(2).forward(std::move(msg), 3); });
  int served_at_3 = 0;
  op(3).set_handler(net::MsgKind::kReadFault, [&](net::Message&& msg) {
    ++served_at_3;
    EXPECT_EQ(msg.origin, 0u);
    EXPECT_EQ(msg.src, 2u);  // immediate sender is the last forwarder
    op(3).reply_to(msg, Payload{99}, 8);
  });
  int got = -1;
  op(0).request(1, net::MsgKind::kReadFault, Payload{}, 8,
                [&](net::Message&& reply) {
                  got = std::any_cast<Payload>(reply.payload).value;
                  EXPECT_EQ(reply.src, 3u);
                });
  sim_.run_until_idle();
  EXPECT_EQ(served_at_3, 1);
  EXPECT_EQ(got, 99);
  EXPECT_EQ(stats_.total(Counter::kForwards), 2u);
}

TEST_F(RpcTest, BroadcastAnyTakesFirstReply) {
  for (NodeId n = 1; n < kNodes; ++n) {
    op(n).set_handler(net::MsgKind::kReadFault, [this, n](net::Message&& msg) {
      if (n == 2) {
        op(n).reply_to(msg, Payload{static_cast<int>(n)}, 8);
      } else {
        op(n).ignore(msg);
      }
    });
  }
  int got = -1;
  int replies = 0;
  op(0).broadcast(net::MsgKind::kReadFault, Payload{}, 8, BcastReply::kAny,
                  [&](net::Message&& reply) {
                    ++replies;
                    got = std::any_cast<Payload>(reply.payload).value;
                  });
  sim_.run_until_idle();
  EXPECT_EQ(replies, 1);
  EXPECT_EQ(got, 2);
}

TEST_F(RpcTest, BroadcastAllCollectsEveryPeer) {
  for (NodeId n = 1; n < kNodes; ++n) {
    op(n).set_handler(net::MsgKind::kInvalidateBcast,
                      [this, n](net::Message&& msg) {
                        op(n).reply_to(msg, Payload{static_cast<int>(n)}, 8);
                      });
  }
  std::set<int> values;
  op(0).broadcast(net::MsgKind::kInvalidateBcast, Payload{}, 8,
                  BcastReply::kAll, nullptr,
                  [&](std::vector<net::Message>&& replies) {
                    for (auto& r : replies) {
                      values.insert(std::any_cast<Payload>(r.payload).value);
                    }
                  });
  sim_.run_until_idle();
  EXPECT_EQ(values, (std::set<int>{1, 2, 3}));
}

TEST_F(RpcTest, BroadcastNoneExpectsNothing) {
  int heard = 0;
  for (NodeId n = 1; n < kNodes; ++n) {
    op(n).set_handler(net::MsgKind::kLoadHint, [&, n](net::Message&& msg) {
      ++heard;
      op(n).ignore(msg);
    });
  }
  op(0).broadcast(net::MsgKind::kLoadHint, Payload{}, 8, BcastReply::kNone);
  sim_.run_until_idle();
  EXPECT_EQ(heard, 3);
  EXPECT_EQ(op(0).outstanding_requests(), 0u);
}

TEST_F(RpcTest, RetransmitsThroughDroppedRequest) {
  int drops = 1;
  ring_.set_drop_hook([&](const net::Message& msg) {
    return !msg.is_reply && drops-- > 0;  // lose the first request frame
  });
  op(0).set_request_timeout(ms(50));
  op(0).set_check_interval(ms(50));
  int served = 0;
  op(1).set_handler(net::MsgKind::kAllocRequest, [&](net::Message&& msg) {
    ++served;
    op(1).reply_to(msg, Payload{5}, 8);
  });
  int got = -1;
  op(0).request(1, net::MsgKind::kAllocRequest, Payload{}, 8,
                [&](net::Message&& reply) {
                  got = std::any_cast<Payload>(reply.payload).value;
                });
  sim_.run_until_idle();
  EXPECT_EQ(got, 5);
  EXPECT_EQ(served, 1);
  EXPECT_GE(stats_.total(Counter::kRetransmissions), 1u);
}

TEST_F(RpcTest, DroppedReplyIsResentWithoutReexecution) {
  int drops = 1;
  ring_.set_drop_hook([&](const net::Message& msg) {
    return msg.is_reply && drops-- > 0;  // lose the first reply frame
  });
  op(0).set_request_timeout(ms(50));
  op(0).set_check_interval(ms(50));
  int served = 0;
  op(1).set_handler(net::MsgKind::kAllocRequest, [&](net::Message&& msg) {
    ++served;
    op(1).reply_to(msg, Payload{11}, 8);
  });
  int got = -1;
  op(0).request(1, net::MsgKind::kAllocRequest, Payload{}, 8,
                [&](net::Message&& reply) {
                  got = std::any_cast<Payload>(reply.payload).value;
                });
  sim_.run_until_idle();
  EXPECT_EQ(got, 11);
  // "resend replies only when necessary": the handler ran once; the
  // duplicate request was answered from the done-cache.
  EXPECT_EQ(served, 1);
}

TEST_F(RpcTest, DuplicateWhileInProgressIsSwallowed) {
  // Server defers; a duplicate (from retransmission) must not re-run the
  // handler or produce a second reply.
  op(0).set_request_timeout(ms(20));
  op(0).set_check_interval(ms(20));
  int served = 0;
  PendingReply pending;
  op(1).set_handler(net::MsgKind::kAllocRequest, [&](net::Message&& msg) {
    ++served;
    pending = RemoteOp::reply_later(msg);
    sim_.schedule_after(ms(100), [&] { op(1).reply(pending, Payload{3}, 8); });
  });
  int replies = 0;
  op(0).request(1, net::MsgKind::kAllocRequest, Payload{}, 8,
                [&](net::Message&&) { ++replies; });
  sim_.run_until_idle();
  EXPECT_EQ(served, 1);
  EXPECT_EQ(replies, 1);
  EXPECT_GE(stats_.total(Counter::kRetransmissions), 1u);
}

TEST_F(RpcTest, LoadHintsPiggybackOnEveryMessage) {
  op(0).set_load_hint_provider([] { return std::uint8_t{9}; });
  std::uint8_t heard = 0;
  op(1).set_load_hint_consumer(
      [&](NodeId from, std::uint8_t hint) {
        if (from == 0) heard = hint;
      });
  op(1).set_handler(net::MsgKind::kAllocRequest, [&](net::Message&& msg) {
    op(1).reply_to(msg, Payload{}, 8);
  });
  op(0).request(1, net::MsgKind::kAllocRequest, Payload{}, 8,
                [](net::Message&&) {});
  sim_.run_until_idle();
  EXPECT_EQ(heard, 9);
}

TEST_F(RpcTest, OrphanReplyHandlerSeesLateDuplicates) {
  // Two servers race to answer the same broadcast; the loser's reply has
  // no outstanding entry left and lands in the orphan handler.
  for (NodeId n : {1u, 2u}) {
    op(n).set_handler(net::MsgKind::kWriteFault, [this, n](net::Message&& msg) {
      op(n).reply_to(msg, Payload{static_cast<int>(n)}, 8);
    });
  }
  op(3).set_handler(net::MsgKind::kWriteFault,
                    [this](net::Message&& msg) { op(3).ignore(msg); });
  int first = -1;
  int orphaned = -1;
  op(0).set_orphan_reply_handler(
      net::MsgKind::kWriteFault, [&](net::Message&& msg) {
        orphaned = std::any_cast<Payload>(msg.payload).value;
      });
  op(0).broadcast(net::MsgKind::kWriteFault, Payload{}, 8, BcastReply::kAny,
                  [&](net::Message&& reply) {
                    first = std::any_cast<Payload>(reply.payload).value;
                  });
  sim_.run_until_idle();
  EXPECT_NE(first, -1);
  EXPECT_NE(orphaned, -1);
  EXPECT_NE(first, orphaned);
}

TEST_F(RpcTest, BackoffSpacesRetransmissionsExponentially) {
  // Drop every request frame so the client retransmits to its cap; the
  // replies never happen.  Waits must grow roughly geometrically.
  op(0).set_request_timeout(ms(10));
  op(0).set_check_interval(ms(1));
  op(0).set_max_retransmits(5);
  std::vector<Time> sent_at;
  ring_.set_drop_hook([&](const net::Message& msg) {
    if (!msg.is_reply) sent_at.push_back(sim_.now());
    return !msg.is_reply;
  });
  bool failed = false;
  op(0).request(
      1, net::MsgKind::kAllocRequest, Payload{}, 8,
      [](net::Message&&) { FAIL() << "no reply can arrive"; }, 0,
      [&](const RequestFailure& f) {
        failed = true;
        EXPECT_EQ(f.attempts, 6u);  // original + 5 retransmissions
        EXPECT_EQ(f.dst, 1u);
      });
  sim_.run_until_idle();
  EXPECT_TRUE(failed);
  ASSERT_EQ(sent_at.size(), 6u);
  // First retransmit near the base timeout; later gaps grow (jitter is
  // +-25%, so each gap is at least 1.5x the previous one's lower bound).
  const Time gap1 = sent_at[2] - sent_at[1];
  const Time gap3 = sent_at[4] - sent_at[3];
  EXPECT_GE(sent_at[1] - sent_at[0], ms(10));
  EXPECT_GT(gap3, gap1);
  EXPECT_GE(stats_.total(Counter::kRpcBackoffs), 3u);
  EXPECT_EQ(stats_.total(Counter::kRpcFailures), 1u);
  EXPECT_EQ(op(0).outstanding_requests(), 0u);  // no hang, no leak
}

TEST_F(RpcTest, NodeFailureHandlerCatchesTerminalFailure) {
  ring_.set_drop_hook(
      [](const net::Message& msg) { return !msg.is_reply; });
  op(0).set_request_timeout(ms(10));
  op(0).set_check_interval(ms(5));
  op(0).set_max_retransmits(2);
  int node_level = 0;
  op(0).set_failure_handler([&](const RequestFailure& f) {
    ++node_level;
    EXPECT_EQ(f.kind, net::MsgKind::kReadFault);
  });
  op(0).request(1, net::MsgKind::kReadFault, Payload{}, 8,
                [](net::Message&&) { FAIL() << "no reply can arrive"; });
  sim_.run_until_idle();
  EXPECT_EQ(node_level, 1);
}

TEST_F(RpcTest, DoneCacheEvictionForcesReexecution) {
  // Regression for the silent-eviction bug: with a tiny done-cache, a
  // duplicate arriving after its cached reply was pushed out re-executes
  // the handler.  The counters must make that visible.
  op(1).set_done_cache_capacity(1);
  int served = 0;
  op(1).set_handler(net::MsgKind::kAllocRequest, [&](net::Message&& msg) {
    ++served;
    op(1).reply_to(msg, Payload{served}, 8);
  });
  // First exchange completes normally and caches its reply...
  net::Message dup;
  op(0).request(1, net::MsgKind::kAllocRequest, Payload{}, 8,
                [&](net::Message&& reply) { dup = std::move(reply); });
  sim_.run_until_idle();
  EXPECT_EQ(served, 1);
  // ...then a second, distinct exchange evicts it (capacity 1)...
  op(2).request(1, net::MsgKind::kAllocRequest, Payload{}, 8,
                [](net::Message&&) {});
  sim_.run_until_idle();
  EXPECT_EQ(served, 2);
  EXPECT_GE(stats_.total(Counter::kDoneCacheEvictions), 1u);
  // ...so a late duplicate of the first request is no longer recognized
  // and re-executes instead of resending the cached reply.
  net::Message replay;
  replay.src = 0;
  replay.dst = 1;
  replay.kind = net::MsgKind::kAllocRequest;
  replay.rpc_id = dup.rpc_id;
  replay.origin = 0;
  replay.payload = Payload{};
  replay.wire_bytes = 8;
  ring_.send(std::move(replay));
  sim_.run_until_idle();
  EXPECT_EQ(served, 3);  // re-executed: the contract tests document
  EXPECT_GE(stats_.total(Counter::kDupReexecutions), 1u);
}

TEST_F(RpcTest, DoneCacheWithinCapacityStillSuppressesDuplicates) {
  // Same replay, ample capacity: answered from the cache, no re-run.
  int served = 0;
  op(1).set_handler(net::MsgKind::kAllocRequest, [&](net::Message&& msg) {
    ++served;
    op(1).reply_to(msg, Payload{served}, 8);
  });
  net::Message dup;
  op(0).request(1, net::MsgKind::kAllocRequest, Payload{}, 8,
                [&](net::Message&& reply) { dup = std::move(reply); });
  sim_.run_until_idle();
  net::Message replay;
  replay.src = 0;
  replay.dst = 1;
  replay.kind = net::MsgKind::kAllocRequest;
  replay.rpc_id = dup.rpc_id;
  replay.origin = 0;
  replay.payload = Payload{};
  replay.wire_bytes = 8;
  ring_.send(std::move(replay));
  sim_.run_until_idle();
  EXPECT_EQ(served, 1);
  EXPECT_EQ(stats_.total(Counter::kDoneCacheEvictions), 0u);
  EXPECT_EQ(stats_.total(Counter::kDupReexecutions), 0u);
}

}  // namespace
}  // namespace ivy::rpc
