// Unit tests for the simulated token ring: serialization on the shared
// medium, FIFO delivery, broadcast fan-out, drop injection, fault-hook
// mechanics, and frame-checksum verification.
#include <gtest/gtest.h>

#include "ivy/net/ring.h"

namespace ivy::net {
namespace {

class RingTest : public testing::Test {
 protected:
  RingTest() : stats_(4), ring_(sim_, stats_, 4) {
    for (NodeId n = 0; n < 4; ++n) {
      ring_.set_handler(n, [this, n](Message&& msg) {
        received_.push_back({n, std::move(msg), sim_.now()});
      });
    }
  }

  Message make(NodeId src, NodeId dst, std::uint32_t bytes = 100) {
    Message m;
    m.src = src;
    m.dst = dst;
    m.kind = MsgKind::kLoadHint;
    m.wire_bytes = bytes;
    return m;
  }

  struct Delivery {
    NodeId at;
    Message msg;
    Time when;
  };

  sim::Simulator sim_;
  Stats stats_;
  Ring ring_;
  std::vector<Delivery> received_;
};

TEST_F(RingTest, UnicastDelivers) {
  ring_.send(make(0, 2));
  sim_.run_until_idle();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].at, 2u);
  EXPECT_EQ(received_[0].msg.src, 0u);
}

TEST_F(RingTest, DeliveryIncludesLatencyAndTransmit) {
  ring_.send(make(0, 1, 1000));
  sim_.run_until_idle();
  const auto& costs = sim_.costs();
  EXPECT_EQ(received_[0].when,
            costs.transmit_time(1000) + costs.msg_latency);
}

TEST_F(RingTest, SharedMediumSerializesTransmissions) {
  // Two simultaneous sends: the second waits for the medium.
  ring_.send(make(0, 1, 1000));
  ring_.send(make(2, 3, 1000));
  sim_.run_until_idle();
  ASSERT_EQ(received_.size(), 2u);
  const Time t0 = received_[0].when;
  const Time t1 = received_[1].when;
  EXPECT_EQ(t1 - t0, sim_.costs().transmit_time(1000));
}

TEST_F(RingTest, FifoBetweenSameEndpoints) {
  for (int i = 0; i < 10; ++i) {
    Message m = make(0, 1);
    m.rpc_id = static_cast<std::uint64_t>(i);
    ring_.send(std::move(m));
  }
  sim_.run_until_idle();
  ASSERT_EQ(received_.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(received_[static_cast<size_t>(i)].msg.rpc_id,
              static_cast<std::uint64_t>(i));
  }
}

TEST_F(RingTest, BroadcastReachesAllOthersAtOnce) {
  ring_.send(make(1, kBroadcast));
  sim_.run_until_idle();
  ASSERT_EQ(received_.size(), 3u);
  std::set<NodeId> who;
  for (const auto& d : received_) {
    who.insert(d.at);
    EXPECT_EQ(d.when, received_[0].when);  // one frame, one arrival time
  }
  EXPECT_EQ(who, (std::set<NodeId>{0, 2, 3}));
  EXPECT_EQ(stats_.total(Counter::kBroadcasts), 1u);
  EXPECT_EQ(stats_.total(Counter::kMessages), 0u);
}

TEST_F(RingTest, DropHookLosesFrameAfterOccupyingMedium) {
  int dropped = 0;
  ring_.set_drop_hook([&](const Message&) { return ++dropped == 1; });
  ring_.send(make(0, 1, 1000));  // lost
  ring_.send(make(0, 2, 1000));  // delivered, but after the lost frame's slot
  sim_.run_until_idle();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].at, 2u);
  // The dropped frame still consumed ring time.
  EXPECT_EQ(received_[0].when, 2 * sim_.costs().transmit_time(1000) +
                                   sim_.costs().msg_latency);
}

TEST_F(RingTest, BytesAccountedWithFraming) {
  ring_.send(make(0, 1, 100));
  sim_.run_until_idle();
  EXPECT_EQ(stats_.total(Counter::kBytesOnRing),
            100u + sim_.costs().msg_overhead_bytes);
}

// Scripted FaultHook: one queued Plan per plan_delivery call, default
// clean delivery once the script runs out.
class ScriptedHook : public FaultHook {
 public:
  Plan plan_delivery(const Message& msg, NodeId recipient) override {
    asked.push_back({msg.kind, msg.src, recipient});
    if (next >= plans.size()) return Plan{};
    return plans[next++];
  }

  struct Asked {
    MsgKind kind;
    NodeId src;
    NodeId recipient;
  };
  std::vector<Plan> plans;
  std::size_t next = 0;
  std::vector<Asked> asked;
};

TEST_F(RingTest, FaultHookConsultedPerRecipient) {
  ScriptedHook hook;
  ring_.set_fault_hook(&hook);
  ring_.send(make(1, kBroadcast));
  sim_.run_until_idle();
  // One plan per recipient of the broadcast, none for the sender.
  ASSERT_EQ(hook.asked.size(), 3u);
  for (const auto& a : hook.asked) EXPECT_NE(a.recipient, 1u);
  EXPECT_EQ(received_.size(), 3u);
}

TEST_F(RingTest, BroadcastChargesRingTimeOnceUnderPartialDrop) {
  // A broadcast that loses two of three copies must cost the same ring
  // time (and byte accounting) as a clean one: the frame circulated
  // once; per-recipient faults only change who kept a copy.
  ScriptedHook hook;
  hook.plans = {{.drop = true}, {.drop = true}, {}};
  ring_.set_fault_hook(&hook);
  ring_.send(make(1, kBroadcast, 500));
  // A trailing unicast lands exactly one transmit slot later, proving
  // the broadcast held the medium for one slot only.
  ring_.send(make(0, 2, 500));
  sim_.run_until_idle();
  ASSERT_EQ(received_.size(), 2u);  // surviving bcast copy + unicast
  EXPECT_EQ(received_[1].when - received_[0].when,
            sim_.costs().transmit_time(500));
  EXPECT_EQ(stats_.total(Counter::kBroadcasts), 1u);
  EXPECT_EQ(stats_.total(Counter::kBytesOnRing),
            2 * (500u + sim_.costs().msg_overhead_bytes));
}

TEST_F(RingTest, FaultHookDuplicateDeliversTwice) {
  ScriptedHook hook;
  hook.plans = {{.duplicate = true, .duplicate_delay = us(7)}};
  ring_.set_fault_hook(&hook);
  ring_.send(make(0, 2));
  sim_.run_until_idle();
  ASSERT_EQ(received_.size(), 2u);
  EXPECT_EQ(received_[0].at, 2u);
  EXPECT_EQ(received_[1].at, 2u);
  EXPECT_EQ(received_[1].when - received_[0].when, us(7));
}

TEST_F(RingTest, FaultHookDelayReordersTraffic) {
  ScriptedHook hook;
  hook.plans = {{.extra_delay = ms(1)}};
  ring_.set_fault_hook(&hook);
  Message first = make(0, 2);
  first.rpc_id = 1;  // delayed past the second frame
  Message second = make(0, 2);
  second.rpc_id = 2;
  ring_.send(std::move(first));
  ring_.send(std::move(second));
  sim_.run_until_idle();
  ASSERT_EQ(received_.size(), 2u);
  EXPECT_EQ(received_[0].msg.rpc_id, 2u);
  EXPECT_EQ(received_[1].msg.rpc_id, 1u);
}

TEST_F(RingTest, CorruptedFrameDroppedByReceiverChecksum) {
  ScriptedHook hook;
  hook.plans = {{.corrupt = true}};
  ring_.set_fault_hook(&hook);
  ring_.send(make(0, 2));
  ring_.send(make(0, 3));  // clean
  sim_.run_until_idle();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].at, 3u);
  EXPECT_EQ(stats_.total(Counter::kChecksumDrops), 1u);
  EXPECT_EQ(stats_.node_total(2, Counter::kChecksumDrops), 1u);
}

TEST(MessageChecksum, SealVerifyAndTamper) {
  Message m;
  m.src = 3;
  m.kind = MsgKind::kWriteFault;
  m.rpc_id = 42;
  m.origin = 3;
  m.wire_bytes = 128;
  seal_message(m);
  EXPECT_TRUE(message_intact(m));
  // dst is excluded on purpose: broadcast fan-out rewrites it.
  m.dst = 7;
  EXPECT_TRUE(message_intact(m));
  m.rpc_id = 43;
  EXPECT_FALSE(message_intact(m));
}

TEST(RingMisc, MessageKindNamesExist) {
  for (MsgKind k : {MsgKind::kReadFault, MsgKind::kWriteFault,
                    MsgKind::kInvalidate, MsgKind::kMigrateAsk,
                    MsgKind::kRemoteResume, MsgKind::kAllocRequest}) {
    EXPECT_NE(std::string(to_string(k)), "unknown");
  }
}

}  // namespace
}  // namespace ivy::net
