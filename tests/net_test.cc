// Unit tests for the simulated token ring: serialization on the shared
// medium, FIFO delivery, broadcast fan-out, drop injection.
#include <gtest/gtest.h>

#include "ivy/net/ring.h"

namespace ivy::net {
namespace {

class RingTest : public testing::Test {
 protected:
  RingTest() : stats_(4), ring_(sim_, stats_, 4) {
    for (NodeId n = 0; n < 4; ++n) {
      ring_.set_handler(n, [this, n](Message&& msg) {
        received_.push_back({n, std::move(msg), sim_.now()});
      });
    }
  }

  Message make(NodeId src, NodeId dst, std::uint32_t bytes = 100) {
    Message m;
    m.src = src;
    m.dst = dst;
    m.kind = MsgKind::kLoadHint;
    m.wire_bytes = bytes;
    return m;
  }

  struct Delivery {
    NodeId at;
    Message msg;
    Time when;
  };

  sim::Simulator sim_;
  Stats stats_;
  Ring ring_;
  std::vector<Delivery> received_;
};

TEST_F(RingTest, UnicastDelivers) {
  ring_.send(make(0, 2));
  sim_.run_until_idle();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].at, 2u);
  EXPECT_EQ(received_[0].msg.src, 0u);
}

TEST_F(RingTest, DeliveryIncludesLatencyAndTransmit) {
  ring_.send(make(0, 1, 1000));
  sim_.run_until_idle();
  const auto& costs = sim_.costs();
  EXPECT_EQ(received_[0].when,
            costs.transmit_time(1000) + costs.msg_latency);
}

TEST_F(RingTest, SharedMediumSerializesTransmissions) {
  // Two simultaneous sends: the second waits for the medium.
  ring_.send(make(0, 1, 1000));
  ring_.send(make(2, 3, 1000));
  sim_.run_until_idle();
  ASSERT_EQ(received_.size(), 2u);
  const Time t0 = received_[0].when;
  const Time t1 = received_[1].when;
  EXPECT_EQ(t1 - t0, sim_.costs().transmit_time(1000));
}

TEST_F(RingTest, FifoBetweenSameEndpoints) {
  for (int i = 0; i < 10; ++i) {
    Message m = make(0, 1);
    m.rpc_id = static_cast<std::uint64_t>(i);
    ring_.send(std::move(m));
  }
  sim_.run_until_idle();
  ASSERT_EQ(received_.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(received_[static_cast<size_t>(i)].msg.rpc_id,
              static_cast<std::uint64_t>(i));
  }
}

TEST_F(RingTest, BroadcastReachesAllOthersAtOnce) {
  ring_.send(make(1, kBroadcast));
  sim_.run_until_idle();
  ASSERT_EQ(received_.size(), 3u);
  std::set<NodeId> who;
  for (const auto& d : received_) {
    who.insert(d.at);
    EXPECT_EQ(d.when, received_[0].when);  // one frame, one arrival time
  }
  EXPECT_EQ(who, (std::set<NodeId>{0, 2, 3}));
  EXPECT_EQ(stats_.total(Counter::kBroadcasts), 1u);
  EXPECT_EQ(stats_.total(Counter::kMessages), 0u);
}

TEST_F(RingTest, DropHookLosesFrameAfterOccupyingMedium) {
  int dropped = 0;
  ring_.set_drop_hook([&](const Message&) { return ++dropped == 1; });
  ring_.send(make(0, 1, 1000));  // lost
  ring_.send(make(0, 2, 1000));  // delivered, but after the lost frame's slot
  sim_.run_until_idle();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].at, 2u);
  // The dropped frame still consumed ring time.
  EXPECT_EQ(received_[0].when, 2 * sim_.costs().transmit_time(1000) +
                                   sim_.costs().msg_latency);
}

TEST_F(RingTest, BytesAccountedWithFraming) {
  ring_.send(make(0, 1, 100));
  sim_.run_until_idle();
  EXPECT_EQ(stats_.total(Counter::kBytesOnRing),
            100u + sim_.costs().msg_overhead_bytes);
}

TEST(RingMisc, MessageKindNamesExist) {
  for (MsgKind k : {MsgKind::kReadFault, MsgKind::kWriteFault,
                    MsgKind::kInvalidate, MsgKind::kMigrateAsk,
                    MsgKind::kRemoteResume, MsgKind::kAllocRequest}) {
    EXPECT_NE(std::string(to_string(k)), "unknown");
  }
}

}  // namespace
}  // namespace ivy::net
