// Protocol-level tests of the shared virtual memory, driving Svm's
// asynchronous interface directly (no process layer) so individual fault
// flows are observable: grants, downgrades, invalidation, versions,
// eviction to disk, direct handoff.  Parameterized over all four manager
// algorithms.
#include <gtest/gtest.h>

#include <memory>

#include "ivy/svm/manager.h"
#include "ivy/svm/observer.h"
#include "ivy/svm/svm.h"

namespace ivy::svm {
namespace {

class SvmHarness {
 public:
  SvmHarness(NodeId nodes, ManagerKind kind, std::size_t frames = 4096,
             std::size_t page_size = 256, PageId pages = 64)
      : stats_(nodes), ring_(sim_, stats_, nodes) {
    SvmOptions opts;
    opts.geo = Geometry{page_size, pages};
    opts.manager = kind;
    opts.frames_per_node = frames;
    for (NodeId n = 0; n < nodes; ++n) {
      rpcs_.push_back(std::make_unique<rpc::RemoteOp>(sim_, ring_, stats_, n));
      svms_.push_back(
          std::make_unique<Svm>(sim_, *rpcs_.back(), stats_, n, nodes, opts));
    }
  }

  Svm& at(NodeId n) { return *svms_[n]; }

  /// Synchronously (in virtual time) obtains `want` access on `node`,
  /// then settles in-flight tails (two-phase transfer acknowledgements)
  /// so page-table assertions see the quiescent state.
  void ensure(NodeId node, PageId page, Access want) {
    bool done = false;
    at(node).request_access(page, want, [&] { done = true; });
    sim_.run_while([&] { return !done; });
    ASSERT_TRUE(done) << "fault never completed: node " << node << " page "
                      << page << " want " << to_string(want);
    ASSERT_TRUE(at(node).has_access(page, want));
    sim_.run_until_idle();
  }

  void write_u64(NodeId node, SvmAddr addr, std::uint64_t v) {
    at(node).write_bytes(addr, std::as_bytes(std::span(&v, 1)));
  }
  std::uint64_t read_u64(NodeId node, SvmAddr addr) {
    std::uint64_t v = 0;
    at(node).read_bytes(addr, std::as_writable_bytes(std::span(&v, 1)));
    return v;
  }

  void settle() { sim_.run_until_idle(); }

  void check_invariants() {
    settle();
    const PageId pages = at(0).geometry().num_pages;
    const NodeId nodes = static_cast<NodeId>(svms_.size());
    for (PageId p = 0; p < pages; ++p) {
      NodeId owner = kNoNode;
      for (NodeId n = 0; n < nodes; ++n) {
        if (at(n).table().at(p).owned) {
          ASSERT_EQ(owner, kNoNode) << "two owners for page " << p;
          owner = n;
        }
      }
      ASSERT_NE(owner, kNoNode) << "no owner for page " << p;
      const PageEntry& oe = at(owner).table().at(p);
      for (NodeId n = 0; n < nodes; ++n) {
        if (n == owner) continue;
        const PageEntry& e = at(n).table().at(p);
        ASSERT_NE(e.access, Access::kWrite);
        if (e.access == Access::kRead) {
          ASSERT_TRUE(oe.copyset.contains(n));
          ASSERT_NE(oe.access, Access::kWrite);
        }
      }
    }
  }

  sim::Simulator sim_;
  Stats stats_;
  net::Ring ring_;
  std::vector<std::unique_ptr<rpc::RemoteOp>> rpcs_;
  std::vector<std::unique_ptr<Svm>> svms_;
};

class SvmProtocol : public testing::TestWithParam<ManagerKind> {};

TEST_P(SvmProtocol, InitialStateOwnedByNodeZero) {
  SvmHarness h(3, GetParam());
  EXPECT_TRUE(h.at(0).table().at(0).owned);
  EXPECT_TRUE(h.at(0).has_access(0, Access::kWrite));
  EXPECT_FALSE(h.at(1).table().at(0).owned);
  EXPECT_FALSE(h.at(1).has_access(0, Access::kRead));
}

TEST_P(SvmProtocol, ReadFaultDeliversDataAndCopyset) {
  SvmHarness h(3, GetParam());
  h.write_u64(0, 8, 0xfeed);
  h.ensure(1, 0, Access::kRead);
  EXPECT_EQ(h.read_u64(1, 8), 0xfeedu);
  // Owner unchanged, downgraded to read, knows the reader.
  EXPECT_TRUE(h.at(0).table().at(0).owned);
  EXPECT_EQ(h.at(0).table().at(0).access, Access::kRead);
  EXPECT_TRUE(h.at(0).table().at(0).copyset.contains(1));
  h.check_invariants();
}

TEST_P(SvmProtocol, WriteFaultMovesOwnershipAndData) {
  SvmHarness h(3, GetParam());
  h.write_u64(0, 16, 111);
  h.ensure(2, 0, Access::kWrite);
  EXPECT_TRUE(h.at(2).table().at(0).owned);
  EXPECT_EQ(h.read_u64(2, 16), 111u);  // data travelled with ownership
  EXPECT_FALSE(h.at(0).table().at(0).owned);
  EXPECT_EQ(h.at(0).table().at(0).access, Access::kNil);
  EXPECT_GT(h.at(2).table().at(0).version, 0u);
  h.check_invariants();
}

TEST_P(SvmProtocol, WriterInvalidatesAllReadCopies) {
  SvmHarness h(4, GetParam());
  h.write_u64(0, 0, 1);
  h.ensure(1, 0, Access::kRead);
  h.ensure(2, 0, Access::kRead);
  h.ensure(3, 0, Access::kWrite);
  EXPECT_EQ(h.at(1).table().at(0).access, Access::kNil);
  EXPECT_EQ(h.at(2).table().at(0).access, Access::kNil);
  EXPECT_TRUE(h.at(3).has_access(0, Access::kWrite));
  h.write_u64(3, 0, 2);
  // Fresh reads see the new value — never the stale copy.
  h.ensure(1, 0, Access::kRead);
  EXPECT_EQ(h.read_u64(1, 0), 2u);
  h.check_invariants();
}

TEST_P(SvmProtocol, SequentialWritersChainOwnership) {
  SvmHarness h(4, GetParam());
  for (std::uint64_t round = 0; round < 8; ++round) {
    const NodeId writer = static_cast<NodeId>(round % 4);
    h.ensure(writer, 3, Access::kWrite);
    h.write_u64(writer, 3 * 256, round);
  }
  h.ensure(0, 3, Access::kRead);
  EXPECT_EQ(h.read_u64(0, 3 * 256), 7u);
  h.check_invariants();
}

TEST_P(SvmProtocol, OwnerUpgradeIsLocalWhenNoCopies) {
  SvmHarness h(2, GetParam());
  h.ensure(1, 5, Access::kWrite);  // 1 becomes owner
  const auto messages_before = h.stats_.total(Counter::kMessages);
  // Owner re-faulting to write (e.g. after serving itself) is local.
  h.ensure(1, 5, Access::kWrite);
  EXPECT_EQ(h.stats_.total(Counter::kMessages), messages_before);
}

TEST_P(SvmProtocol, UpgradeAfterServingReaderInvalidates) {
  SvmHarness h(2, GetParam());
  h.ensure(1, 2, Access::kRead);  // owner 0 downgrades to read
  ASSERT_EQ(h.at(0).table().at(2).access, Access::kRead);
  const auto inv_before = h.stats_.total(Counter::kInvalidationsSent);
  h.ensure(0, 2, Access::kWrite);  // local upgrade with invalidation
  EXPECT_EQ(h.stats_.total(Counter::kInvalidationsSent), inv_before + 1);
  EXPECT_EQ(h.at(1).table().at(2).access, Access::kNil);
  EXPECT_TRUE(h.at(0).table().at(2).owned);
  h.check_invariants();
}

TEST_P(SvmProtocol, CopyHolderWriteFaultSkipsBody) {
  SvmHarness h(2, GetParam());
  h.write_u64(0, 7 * 256, 0xabc);
  h.ensure(1, 7, Access::kRead);
  const auto transfers_before = h.stats_.total(Counter::kPageTransfers);
  const auto bodyless_before = h.stats_.total(Counter::kBodylessUpgrades);
  h.ensure(1, 7, Access::kWrite);  // holds a valid copy: ownership only
  EXPECT_EQ(h.stats_.total(Counter::kPageTransfers), transfers_before);
  EXPECT_EQ(h.stats_.total(Counter::kBodylessUpgrades), bodyless_before + 1);
  EXPECT_EQ(h.read_u64(1, 7 * 256), 0xabcu);
  h.check_invariants();
}

TEST_P(SvmProtocol, StaleCopyVersionFallsBackToFullBody) {
  SvmHarness h(2, GetParam());
  h.ensure(1, 7, Access::kWrite);  // bump the page off version 0
  h.ensure(0, 7, Access::kWrite);
  h.write_u64(0, 7 * 256, 0x5a5a);
  h.ensure(1, 7, Access::kRead);
  // Skew the requester's recorded version below the owner's: the grant
  // must not trust the local copy and has to ship the body.
  h.at(1).table().at(7).version -= 1;
  const auto transfers_before = h.stats_.total(Counter::kPageTransfers);
  const auto bodyless_before = h.stats_.total(Counter::kBodylessUpgrades);
  h.ensure(1, 7, Access::kWrite);
  EXPECT_EQ(h.stats_.total(Counter::kBodylessUpgrades), bodyless_before);
  EXPECT_EQ(h.stats_.total(Counter::kPageTransfers), transfers_before + 1);
  EXPECT_EQ(h.read_u64(1, 7 * 256), 0x5a5au);
  h.check_invariants();
}

TEST_P(SvmProtocol, MulticastInvalidationUsesOneFrame) {
  SvmHarness h(4, GetParam());
  h.write_u64(0, 0, 1);
  h.ensure(1, 0, Access::kRead);
  h.ensure(2, 0, Access::kRead);
  const auto mcasts_before = h.stats_.total(Counter::kMulticasts);
  const auto rounds_before = h.stats_.total(Counter::kInvalidateMulticasts);
  const auto inv_before = h.stats_.total(Counter::kInvalidationsSent);
  h.ensure(0, 0, Access::kWrite);  // local upgrade invalidating both copies
  EXPECT_EQ(h.stats_.total(Counter::kInvalidateMulticasts), rounds_before + 1);
  EXPECT_EQ(h.stats_.total(Counter::kMulticasts), mcasts_before + 1);
  // Per-member accounting is preserved: two invalidations, one frame.
  EXPECT_EQ(h.stats_.total(Counter::kInvalidationsSent), inv_before + 2);
  EXPECT_EQ(h.at(1).table().at(0).access, Access::kNil);
  EXPECT_EQ(h.at(2).table().at(0).access, Access::kNil);
  h.check_invariants();
}

TEST_P(SvmProtocol, LazyZeroPagesMaterializeOnFirstUse) {
  SvmHarness h(2, GetParam());
  h.ensure(1, 9, Access::kRead);
  EXPECT_EQ(h.read_u64(1, 9 * 256 + 64), 0u);
}

TEST_P(SvmProtocol, EvictionSpillsOwnedPageAndRestores) {
  SvmHarness h(2, GetParam(), /*frames=*/4);
  // Touch more owned pages than node 0 has frames.
  for (PageId p = 0; p < 8; ++p) {
    h.write_u64(0, static_cast<SvmAddr>(p) * 256, p + 100);
  }
  EXPECT_GT(h.stats_.total(Counter::kDiskWrites), 0u);
  // Every page still readable — resident or restored from disk.
  for (PageId p = 0; p < 8; ++p) {
    h.ensure(0, p, Access::kRead);
    EXPECT_EQ(h.read_u64(0, static_cast<SvmAddr>(p) * 256), p + 100u);
  }
  EXPECT_GT(h.stats_.total(Counter::kDiskReads), 0u);
}

TEST_P(SvmProtocol, RemoteFaultOnSpilledPageRestoresFirst) {
  SvmHarness h(2, GetParam(), /*frames=*/4);
  for (PageId p = 0; p < 8; ++p) {
    h.write_u64(0, static_cast<SvmAddr>(p) * 256, p);
  }
  // Page 0 was evicted to node 0's disk; node 1 faults on it.
  h.ensure(1, 0, Access::kRead);
  EXPECT_EQ(h.read_u64(1, 0), 0u);
  h.ensure(1, 6, Access::kWrite);
  EXPECT_EQ(h.read_u64(1, 6 * 256), 6u);
  h.check_invariants();
}

TEST_P(SvmProtocol, ReadCopiesEvictSilently) {
  SvmHarness h(2, GetParam(), /*frames=*/4);
  h.write_u64(0, 0, 77);
  h.ensure(1, 0, Access::kRead);
  // Node 1 streams over other pages, evicting its copy of page 0.
  for (PageId p = 1; p < 8; ++p) h.ensure(1, p, Access::kRead);
  EXPECT_EQ(h.at(1).table().at(0).access, Access::kNil);
  EXPECT_EQ(h.stats_.node_total(1, Counter::kDiskWrites), 0u);
  // Re-faulting finds the data at the owner again.
  h.ensure(1, 0, Access::kRead);
  EXPECT_EQ(h.read_u64(1, 0), 77u);
}

TEST_P(SvmProtocol, DetachAdoptMovesOwnershipDirectly) {
  SvmHarness h(2, GetParam());
  h.write_u64(0, 11 * 256, 0xdead);
  const auto messages_before = h.stats_.total(Counter::kMessages);
  const PageTransfer t = h.at(0).detach_page(11, 1, /*with_body=*/true);
  h.at(1).adopt_page(t);
  // No protocol messages: "only requires setting the protection bits".
  EXPECT_EQ(h.stats_.total(Counter::kMessages), messages_before);
  EXPECT_TRUE(h.at(1).table().at(11).owned);
  EXPECT_EQ(h.read_u64(1, 11 * 256), 0xdeadu);
  EXPECT_FALSE(h.at(0).table().at(11).owned);
  // Later faults route correctly despite the managers not being told.
  h.ensure(0, 11, Access::kWrite);
  EXPECT_EQ(h.read_u64(0, 11 * 256), 0xdeadu);
  h.check_invariants();
}

TEST_P(SvmProtocol, DetachElidesBodyWhenNewOwnerHoldsCopy) {
  SvmHarness h(2, GetParam());
  h.write_u64(0, 13 * 256, 0x77);
  h.ensure(1, 13, Access::kRead);
  const auto bodyless_before = h.stats_.total(Counter::kBodylessUpgrades);
  const PageTransfer t = h.at(0).detach_page(13, 1, /*with_body=*/true);
  // The new owner sits in the copyset: the detach ships no body.
  EXPECT_EQ(t.body, nullptr);
  EXPECT_TRUE(t.body_elided);
  EXPECT_EQ(h.stats_.total(Counter::kBodylessUpgrades), bodyless_before + 1);
  h.at(1).adopt_page(t);
  EXPECT_TRUE(h.at(1).table().at(13).owned);
  EXPECT_EQ(h.read_u64(1, 13 * 256), 0x77u);
  h.check_invariants();
}

TEST_P(SvmProtocol, DetachWithoutBodyTransfersOwnershipOnly) {
  SvmHarness h(2, GetParam());
  h.write_u64(0, 12 * 256, 1);
  const PageTransfer t = h.at(0).detach_page(12, 1, /*with_body=*/false);
  EXPECT_EQ(t.body, nullptr);
  h.at(1).adopt_page(t);
  EXPECT_TRUE(h.at(1).table().at(12).owned);
  // Content is "meaningless" (fresh zero page at the new owner).
  EXPECT_EQ(h.read_u64(1, 12 * 256), 0u);
  h.check_invariants();
}

TEST_P(SvmProtocol, StaleInvalidationIsIgnoredByVersionGuard) {
  SvmHarness h(3, GetParam());
  h.write_u64(0, 0, 5);
  h.ensure(1, 0, Access::kRead);
  const std::uint64_t version = h.at(1).table().at(0).version;
  // A duplicate invalidation from an *older* epoch must not kill the
  // fresh copy.
  net::Message msg;
  msg.src = 2;
  msg.dst = 1;
  msg.kind = net::MsgKind::kInvalidate;
  msg.origin = 2;
  msg.rpc_id = 991;
  msg.payload = InvalidatePayload{0, 2, version};  // not newer
  h.at(1).on_invalidate(std::move(msg));
  h.settle();
  EXPECT_EQ(h.at(1).table().at(0).access, Access::kRead);
}

TEST_P(SvmProtocol, ConcurrentWritersConverge) {
  SvmHarness h(4, GetParam());
  int done = 0;
  for (NodeId n = 0; n < 4; ++n) {
    h.at(n).request_access(1, Access::kWrite, [&] { ++done; });
  }
  h.settle();
  // Every fault completed (possibly revoked again afterwards) and the
  // system settled into a single-owner state.
  EXPECT_EQ(done, 4);
  h.check_invariants();
}

TEST_P(SvmProtocol, AccessSpanningPages) {
  SvmHarness h(2, GetParam());
  h.ensure(1, 0, Access::kWrite);
  h.ensure(1, 1, Access::kWrite);
  const std::uint64_t v = 0x1122334455667788ull;
  h.at(1).write_bytes(252, std::as_bytes(std::span(&v, 1)));
  std::uint64_t out = 0;
  h.at(1).read_bytes(252, std::as_writable_bytes(std::span(&out, 1)));
  EXPECT_EQ(out, v);
}

INSTANTIATE_TEST_SUITE_P(
    AllManagers, SvmProtocol,
    testing::Values(ManagerKind::kCentralized, ManagerKind::kFixedDistributed,
                    ManagerKind::kDynamicDistributed, ManagerKind::kBroadcast),
    [](const testing::TestParamInfo<ManagerKind>& info) {
      return to_string(info.param);
    });

TEST(SvmGeometry, PageAndOffsetMath) {
  Geometry geo{1024, 16};
  EXPECT_EQ(geo.size_bytes(), 16u * 1024u);
  EXPECT_EQ(geo.page_of(0), 0u);
  EXPECT_EQ(geo.page_of(1023), 0u);
  EXPECT_EQ(geo.page_of(1024), 1u);
  EXPECT_EQ(geo.offset_of(1030), 6u);
}

// Regression for the stale-reference hazard in invalidate_copies: the
// observer hook fires mid-round, and an observer that grows the page
// table reallocates the PageEntry vector.  The old code kept a
// PageEntry& across that callout and the ack continuations; under ASan
// this test caught the dangling read.
class GrowingObserver : public CoherenceObserver {
 public:
  std::vector<Svm*> svms;
  PageId grow_to = 0;
  bool grown = false;

  void attach(Svm* svm) override { svms.push_back(svm); }
  void on_invalidate_round(NodeId, PageId, std::uint64_t, int) override {
    if (grown || grow_to == 0) return;
    grown = true;
    // The address space is shared: every node grows in lockstep.
    for (Svm* svm : svms) svm->grow_table(grow_to);
  }

  void on_fault_start(NodeId, PageId, Access) override {}
  void on_fault_complete(NodeId, PageId, Access) override {}
  void on_forward(NodeId, PageId, NodeId, NodeId, bool) override {}
  void on_read_served(NodeId, PageId, NodeId) override {}
  void on_write_served(NodeId, PageId, NodeId, std::uint64_t) override {}
  void on_ownership_gained(NodeId, PageId, NodeId, std::uint64_t) override {}
  void on_ownership_released(NodeId, PageId, NodeId, std::uint64_t) override {}
  void on_transfer_aborted(NodeId, PageId, std::uint64_t) override {}
  void on_page_detached(NodeId, PageId, NodeId, std::uint64_t) override {}
  void on_page_adopted(NodeId, PageId, std::uint64_t) override {}
  void on_invalidate_round_done(NodeId, PageId, std::uint64_t) override {}
  void on_copy_dropped(NodeId, PageId, NodeId, std::uint64_t) override {}
  void on_page_content(NodeId, PageId, std::uint64_t,
                       std::span<const std::byte>, bool) override {}
};

class GrowMidRound : public testing::TestWithParam<ManagerKind> {};

TEST_P(GrowMidRound, TableGrowthDuringInvalidationRoundIsSafe) {
  constexpr PageId kInitialPages = 64;
  constexpr PageId kGrownPages = 96;
  sim::Simulator sim;
  Stats stats(3);
  net::Ring ring(sim, stats, 3);
  GrowingObserver obs;
  obs.grow_to = kGrownPages;
  SvmOptions opts;
  opts.geo = Geometry{256, kInitialPages};
  opts.manager = GetParam();
  opts.observer = &obs;
  std::vector<std::unique_ptr<rpc::RemoteOp>> rpcs;
  std::vector<std::unique_ptr<Svm>> svms;
  for (NodeId n = 0; n < 3; ++n) {
    rpcs.push_back(std::make_unique<rpc::RemoteOp>(sim, ring, stats, n));
    svms.push_back(
        std::make_unique<Svm>(sim, *rpcs.back(), stats, n, 3, opts));
    obs.attach(svms.back().get());
  }
  auto ensure = [&](NodeId node, PageId page, Access want) {
    bool done = false;
    svms[node]->request_access(page, want, [&] { done = true; });
    sim.run_while([&] { return !done; });
    ASSERT_TRUE(done);
    sim.run_until_idle();
  };

  const std::uint64_t magic = 0xfeedbeef;
  svms[0]->write_bytes(0, std::as_bytes(std::span(&magic, 1)));
  ensure(1, 0, Access::kRead);
  ensure(2, 0, Access::kRead);
  // The upgrade's invalidation round fires the observer, which grows
  // the table of every node mid-round.
  ensure(0, 0, Access::kWrite);
  ASSERT_TRUE(obs.grown);
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(svms[n]->geometry().num_pages, kGrownPages);
    EXPECT_EQ(svms[n]->table().num_pages(), kGrownPages);
    EXPECT_EQ(svms[n]->table().at(0).access,
              n == 0 ? Access::kWrite : Access::kNil);
  }
  // The grown region is live protocol state: pages fault and move like
  // the original ones (manager owner maps were extended too).
  const PageId fresh = kInitialPages + 10;
  ensure(1, fresh, Access::kWrite);
  const std::uint64_t v = 0xd00d;
  svms[1]->write_bytes(static_cast<SvmAddr>(fresh) * 256,
                       std::as_bytes(std::span(&v, 1)));
  ensure(2, fresh, Access::kRead);
  std::uint64_t out = 0;
  svms[2]->read_bytes(static_cast<SvmAddr>(fresh) * 256,
                      std::as_writable_bytes(std::span(&out, 1)));
  EXPECT_EQ(out, v);
}

INSTANTIATE_TEST_SUITE_P(
    AllManagers, GrowMidRound,
    testing::Values(ManagerKind::kCentralized, ManagerKind::kFixedDistributed,
                    ManagerKind::kDynamicDistributed, ManagerKind::kBroadcast),
    [](const testing::TestParamInfo<ManagerKind>& info) {
      return to_string(info.param);
    });

TEST(SvmProbOwner, DynamicChainsCompressTowardOwner) {
  SvmHarness h(8, ManagerKind::kDynamicDistributed);
  // Walk ownership through all nodes, then verify every node's hint
  // chain reaches the final owner in bounded hops.
  for (NodeId n = 1; n < 8; ++n) h.ensure(n, 4, Access::kWrite);
  h.settle();
  for (NodeId n = 0; n < 8; ++n) {
    NodeId cursor = n;
    int hops = 0;
    while (!h.at(cursor).table().at(4).owned) {
      cursor = h.at(cursor).table().at(4).prob_owner;
      ASSERT_LE(++hops, 8);
    }
    EXPECT_EQ(cursor, 7u);
  }
}

}  // namespace
}  // namespace ivy::svm
