// End-to-end runs of the six benchmark programs on small instances, each
// verified against its sequential oracle, across node counts and
// coherence managers (parameterized).
#include <gtest/gtest.h>

#include "ivy/apps/dotprod.h"
#include "ivy/apps/jacobi.h"
#include "ivy/apps/matmul.h"
#include "ivy/apps/msort.h"
#include "ivy/apps/pde3d.h"
#include "ivy/apps/tsp.h"

namespace ivy::apps {
namespace {

struct Setup {
  NodeId nodes;
  svm::ManagerKind manager;
};

std::string setup_name(const testing::TestParamInfo<Setup>& info) {
  return std::to_string(info.param.nodes) + "nodes_" +
         svm::to_string(info.param.manager);
}

class AppsOnManagers : public testing::TestWithParam<Setup> {
 protected:
  Config make_config() const {
    Config cfg;
    cfg.nodes = GetParam().nodes;
    cfg.manager = GetParam().manager;
    cfg.heap_pages = 4096;
    cfg.stack_region_pages = 64;
    return cfg;
  }
};

TEST_P(AppsOnManagers, Jacobi) {
  Runtime rt(make_config());
  JacobiParams p;
  p.n = 64;
  p.iterations = 4;
  const RunOutcome out = run_jacobi(rt, p);
  EXPECT_TRUE(out.verified) << out.detail;
  EXPECT_GT(out.elapsed, 0);
  rt.check_coherence_invariants();
}

TEST_P(AppsOnManagers, Pde3d) {
  Runtime rt(make_config());
  Pde3dParams p;
  p.m = 10;
  p.iterations = 3;
  const RunOutcome out = run_pde3d(rt, p);
  EXPECT_TRUE(out.verified) << out.detail;
  rt.check_coherence_invariants();
}

TEST_P(AppsOnManagers, Tsp) {
  Runtime rt(make_config());
  TspParams p;
  p.cities = 8;
  const RunOutcome out = run_tsp(rt, p);
  EXPECT_TRUE(out.verified) << out.detail;
  rt.check_coherence_invariants();
}

TEST_P(AppsOnManagers, Matmul) {
  Runtime rt(make_config());
  MatmulParams p;
  p.n = 48;
  const RunOutcome out = run_matmul(rt, p);
  EXPECT_TRUE(out.verified) << out.detail;
  rt.check_coherence_invariants();
}

TEST_P(AppsOnManagers, Dotprod) {
  Runtime rt(make_config());
  DotprodParams p;
  p.n = 4096;
  const RunOutcome out = run_dotprod(rt, p);
  EXPECT_TRUE(out.verified) << out.detail;
  rt.check_coherence_invariants();
}

TEST_P(AppsOnManagers, Msort) {
  Runtime rt(make_config());
  MsortParams p;
  p.records = 2048;
  const RunOutcome out = run_msort(rt, p);
  EXPECT_TRUE(out.verified) << out.detail;
  rt.check_coherence_invariants();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AppsOnManagers,
    testing::Values(Setup{1, svm::ManagerKind::kDynamicDistributed},
                    Setup{2, svm::ManagerKind::kDynamicDistributed},
                    Setup{4, svm::ManagerKind::kDynamicDistributed},
                    Setup{8, svm::ManagerKind::kDynamicDistributed},
                    Setup{4, svm::ManagerKind::kCentralized},
                    Setup{4, svm::ManagerKind::kFixedDistributed},
                    Setup{4, svm::ManagerKind::kBroadcast},
                    Setup{3, svm::ManagerKind::kCentralized},
                    Setup{5, svm::ManagerKind::kFixedDistributed}),
    setup_name);

}  // namespace
}  // namespace ivy::apps
