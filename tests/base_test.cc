// Unit tests for the base substrate: deterministic RNG, node sets,
// counters and epochs.
#include <gtest/gtest.h>

#include <set>

#include "ivy/base/rng.h"
#include "ivy/base/stats.h"
#include "ivy/base/types.h"

namespace ivy {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) ASSERT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowCoversSmallRangeEventually) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 300; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInHalfOpenUnitInterval) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ForkIsIndependent) {
  Rng parent(9);
  Rng child = parent.fork();
  Rng parent2(9);
  (void)parent2.fork();
  // The fork consumed one draw; parent and parent2 stay in lock step.
  EXPECT_EQ(parent(), parent2());
  // Child stream differs from the parent's continuation.
  Rng child2 = child;
  EXPECT_EQ(child(), child2());
}

TEST(NodeSet, BasicOperations) {
  NodeSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0);
  s.add(0);
  s.add(5);
  s.add(63);
  EXPECT_EQ(s.count(), 3);
  EXPECT_TRUE(s.contains(0));
  EXPECT_TRUE(s.contains(5));
  EXPECT_TRUE(s.contains(63));
  EXPECT_FALSE(s.contains(1));
  s.remove(5);
  EXPECT_FALSE(s.contains(5));
  EXPECT_EQ(s.count(), 2);
  s.add(63);  // idempotent
  EXPECT_EQ(s.count(), 2);
}

TEST(NodeSet, ForEachVisitsAscending) {
  NodeSet s;
  s.add(7);
  s.add(1);
  s.add(42);
  std::vector<NodeId> seen;
  s.for_each([&](NodeId n) { seen.push_back(n); });
  EXPECT_EQ(seen, (std::vector<NodeId>{1, 7, 42}));
}

TEST(NodeSet, UnionAndClear) {
  NodeSet a, b;
  a.add(1);
  b.add(2);
  a |= b;
  EXPECT_TRUE(a.contains(1));
  EXPECT_TRUE(a.contains(2));
  a.clear();
  EXPECT_TRUE(a.empty());
}

TEST(Stats, PerNodeAndTotals) {
  Stats stats(3);
  stats.bump(0, Counter::kMessages);
  stats.bump(1, Counter::kMessages, 4);
  stats.bump(2, Counter::kReadFaults);
  EXPECT_EQ(stats.node_total(0, Counter::kMessages), 1u);
  EXPECT_EQ(stats.node_total(1, Counter::kMessages), 4u);
  EXPECT_EQ(stats.total(Counter::kMessages), 5u);
  EXPECT_EQ(stats.total(Counter::kReadFaults), 1u);
  EXPECT_EQ(stats.total(Counter::kWriteFaults), 0u);
}

TEST(Stats, EpochsRecordDeltas) {
  Stats stats(2);
  stats.bump(0, Counter::kDiskReads, 10);
  EXPECT_EQ(stats.mark_epoch(), 0u);
  stats.bump(1, Counter::kDiskReads, 3);
  stats.bump(0, Counter::kDiskWrites, 1);
  EXPECT_EQ(stats.mark_epoch(), 1u);
  stats.mark_epoch();  // empty epoch

  ASSERT_EQ(stats.epoch_count(), 3u);
  EXPECT_EQ(stats.epoch(0).get(Counter::kDiskReads), 10u);
  EXPECT_EQ(stats.epoch(1).get(Counter::kDiskReads), 3u);
  EXPECT_EQ(stats.epoch(1).get(Counter::kDiskWrites), 1u);
  EXPECT_EQ(stats.epoch(2).get(Counter::kDiskReads), 0u);
}

TEST(Stats, SummaryListsNonZeroOnly) {
  Stats stats(1);
  stats.bump(0, Counter::kMigrations, 2);
  const std::string s = stats.summary();
  EXPECT_NE(s.find("migrations = 2"), std::string::npos);
  EXPECT_EQ(s.find("read_faults"), std::string::npos);
}

TEST(CounterNames, RosterMatchesEnum) {
  // Every counter has a distinct, non-empty name.
  const auto& names = counter_names();
  std::set<std::string> unique;
  for (const char* name : names) {
    ASSERT_NE(name, nullptr);
    ASSERT_GT(std::string(name).size(), 0u);
    unique.insert(name);
  }
  EXPECT_EQ(unique.size(), kCounterCount);
}

TEST(CounterNames, IndexAlignedWithEnum) {
  const auto& names = counter_names();
  EXPECT_STREQ(names[static_cast<std::size_t>(Counter::kReadFaults)],
               "read_faults");
  EXPECT_STREQ(names[static_cast<std::size_t>(Counter::kOwnershipTransfers)],
               "ownership_transfers");
  EXPECT_STREQ(names[static_cast<std::size_t>(Counter::kMigrations)],
               "migrations");
  EXPECT_STREQ(names[static_cast<std::size_t>(Counter::kFreeCalls)],
               "free_calls");
}

TEST(HistNames, RosterMatchesEnum) {
  const auto& names = hist_names();
  std::set<std::string> unique;
  for (const char* name : names) {
    ASSERT_NE(name, nullptr);
    ASSERT_GT(std::string(name).size(), 0u);
    unique.insert(name);
  }
  EXPECT_EQ(unique.size(), kHistCount);
  EXPECT_STREQ(names[static_cast<std::size_t>(Hist::kFaultResolution)],
               "fault_resolution_ns");
  EXPECT_STREQ(names[static_cast<std::size_t>(Hist::kDiskStall)],
               "disk_stall_ns");
}

TEST(Histogram, BucketBoundaries) {
  // Bucket 0 = {0}; bucket b >= 1 = [2^(b-1), 2^b).
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(1023), 10u);
  EXPECT_EQ(Histogram::bucket_of(1024), 11u);
  // Top bucket is open-ended: values past 2^63 clamp instead of indexing
  // out of range.
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), 63u);
  EXPECT_EQ(Histogram::bucket_hi(63), ~std::uint64_t{0});

  for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
    // Each bucket's bounds contain exactly the values it receives.
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_lo(b)), b);
    EXPECT_LT(Histogram::bucket_lo(b), Histogram::bucket_hi(b));
    if (b + 1 < Histogram::kBuckets) {
      EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_hi(b) - 1), b);
      EXPECT_EQ(Histogram::bucket_hi(b), Histogram::bucket_lo(b + 1));
    }
  }
}

TEST(Histogram, RecordAndStats) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);

  h.record(0);
  h.record(1);
  h.record(3);
  h.record(1000);
  h.record(-5);  // negative latencies clamp to zero
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1004u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.mean(), 1004.0 / 5.0);
  EXPECT_EQ(h.bucket(0), 2u);   // 0 and the clamped -5
  EXPECT_EQ(h.bucket(1), 1u);   // 1
  EXPECT_EQ(h.bucket(2), 1u);   // 3
  EXPECT_EQ(h.bucket(10), 1u);  // 1000 in [512, 1024)
}

TEST(Histogram, MergeAddsCountsAndExtremes) {
  Histogram a;
  a.record(4);
  a.record(16);
  Histogram b;
  b.record(2);
  b.record(100);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.sum(), 122u);
  EXPECT_EQ(a.min(), 2u);
  EXPECT_EQ(a.max(), 100u);
  EXPECT_EQ(a.bucket(Histogram::bucket_of(2)), 1u);
  EXPECT_EQ(a.bucket(Histogram::bucket_of(4)), 1u);

  // Merging into an empty histogram takes the other's extremes.
  Histogram empty;
  empty.merge(a);
  EXPECT_EQ(empty.min(), 2u);
  EXPECT_EQ(empty.max(), 100u);
}

TEST(Stats, LatencyHistogramsPerNodeAndMerged) {
  Stats stats(2);
  stats.record_latency(0, Hist::kFaultResolution, 10);
  stats.record_latency(1, Hist::kFaultResolution, 30);
  stats.record_latency(1, Hist::kLockWait, 7);
  EXPECT_EQ(stats.node_hist(0, Hist::kFaultResolution).count(), 1u);
  EXPECT_EQ(stats.node_hist(1, Hist::kFaultResolution).count(), 1u);
  const Histogram merged = stats.hist(Hist::kFaultResolution);
  EXPECT_EQ(merged.count(), 2u);
  EXPECT_EQ(merged.sum(), 40u);
  EXPECT_EQ(merged.min(), 10u);
  EXPECT_EQ(merged.max(), 30u);
  EXPECT_EQ(stats.hist(Hist::kEcWait).count(), 0u);
}

TEST(Types, TimeLiteralHelpers) {
  EXPECT_EQ(us(1), 1000);
  EXPECT_EQ(ms(1), 1'000'000);
  EXPECT_EQ(sec(2), 2'000'000'000);
  EXPECT_DOUBLE_EQ(to_seconds(ms(1500)), 1.5);
}

TEST(Types, ProcIdEqualityAndHash) {
  const ProcId a{1, 2, 3};
  const ProcId b{1, 2, 3};
  const ProcId c{1, 2, 4};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(std::hash<ProcId>{}(a), std::hash<ProcId>{}(b));
  EXPECT_NE(std::hash<ProcId>{}(a), std::hash<ProcId>{}(c));
}

}  // namespace
}  // namespace ivy
