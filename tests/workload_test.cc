// Unit tests for the benchmark-workload infrastructure: deterministic
// generators, sequential oracles, partitioning, and the analytic
// merge-split speedup bound.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "ivy/apps/msort.h"
#include "ivy/apps/workload.h"

namespace ivy::apps {
namespace {

TEST(Generators, AreDeterministicPerSeed) {
  EXPECT_EQ(gen_vector(100, 7), gen_vector(100, 7));
  EXPECT_NE(gen_vector(100, 7), gen_vector(100, 8));
  EXPECT_EQ(gen_dd_matrix(16, 3), gen_dd_matrix(16, 3));
  EXPECT_EQ(gen_permutation(50, 1), gen_permutation(50, 1));
  const auto r1 = gen_records(32, 5);
  const auto r2 = gen_records(32, 5);
  for (std::size_t i = 0; i < 32; ++i) ASSERT_TRUE(r1[i] == r2[i]);
}

TEST(Generators, DdMatrixIsStrictlyDiagonallyDominant) {
  constexpr std::size_t n = 24;
  const auto a = gen_dd_matrix(n, 9);
  for (std::size_t i = 0; i < n; ++i) {
    double off = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) off += std::abs(a[i * n + j]);
    }
    ASSERT_GT(std::abs(a[i * n + i]), off) << "row " << i;
  }
}

TEST(Generators, TspWeightsAreSymmetricPositive) {
  const int n = 9;
  const auto w = gen_tsp_weights(n, 4);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const double wij = w[static_cast<std::size_t>(i * n + j)];
      ASSERT_DOUBLE_EQ(wij, w[static_cast<std::size_t>(j * n + i)]);
      if (i != j) {
        ASSERT_GE(wij, 1.0);
      }
    }
  }
}

TEST(Generators, PermutationIsABijection) {
  const auto p = gen_permutation(1000, 2);
  std::vector<bool> seen(1000, false);
  for (auto v : p) {
    ASSERT_LT(v, 1000u);
    ASSERT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(Oracles, JacobiConvergesOnDominantSystem) {
  constexpr std::size_t n = 32;
  const auto a = gen_dd_matrix(n, 11);
  const auto b = gen_vector(n, 12);
  const auto x = jacobi_oracle(a, b, n, 60);
  // Residual ||Ax - b|| should be tiny after 60 sweeps.
  double residual = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < n; ++j) row += a[i * n + j] * x[j];
    residual = std::max(residual, std::abs(row - b[i]));
  }
  EXPECT_LT(residual, 1e-8);
}

TEST(Oracles, Pde3dPreservesZeroRhs) {
  const auto u = pde3d_oracle(std::vector<double>(5 * 5 * 5, 0.0), 5, 10);
  for (double v : u) ASSERT_EQ(v, 0.0);
}

TEST(Oracles, Pde3dBoundedByRhsScale) {
  // With |rhs| <= 1 and u_{k+1} = (sum of 6 neighbours + rhs)/6, the
  // iterates stay bounded by k/… well below 6 after 10 sweeps.
  const auto rhs = gen_vector(6 * 6 * 6, 3);
  const auto u = pde3d_oracle(rhs, 6, 10);
  for (double v : u) ASSERT_LT(std::abs(v), 6.0);
}

TEST(Oracles, TspMatchesBruteForceOnTinyInstance) {
  // 5 cities: check the branch-and-bound oracle against full enumeration.
  const int n = 5;
  const auto w = gen_tsp_weights(n, 21);
  std::vector<int> perm{1, 2, 3, 4};
  double best = 1e18;
  do {
    double cost = w[static_cast<std::size_t>(perm[0])];
    for (int i = 0; i + 1 < 4; ++i) {
      cost += w[static_cast<std::size_t>(perm[i] * n + perm[i + 1])];
    }
    cost += w[static_cast<std::size_t>(perm[3] * n)];
    best = std::min(best, cost);
  } while (std::next_permutation(perm.begin(), perm.end()));
  EXPECT_DOUBLE_EQ(tsp_oracle(w, n), best);
}

TEST(Partition, CoversRangeExactlyOnce) {
  for (std::size_t n : {1u, 7u, 64u, 1000u}) {
    for (int parts : {1, 2, 3, 8}) {
      std::size_t covered = 0;
      std::size_t prev_end = 0;
      for (int k = 0; k < parts; ++k) {
        const Range r = partition(n, parts, k);
        ASSERT_EQ(r.begin, prev_end);
        ASSERT_LE(r.begin, r.end);
        covered += r.end - r.begin;
        prev_end = r.end;
      }
      ASSERT_EQ(covered, n);
      ASSERT_EQ(prev_end, n);
    }
  }
}

TEST(Partition, BalancedWithinOne) {
  for (int parts : {3, 7, 8}) {
    std::size_t lo = SIZE_MAX, hi = 0;
    for (int k = 0; k < parts; ++k) {
      const Range r = partition(1000, parts, k);
      lo = std::min(lo, r.end - r.begin);
      hi = std::max(hi, r.end - r.begin);
    }
    EXPECT_LE(hi - lo, 1u);
  }
}

TEST(SortRecords, OrderingIsTotalAndStableOnKeys) {
  auto recs = gen_records(256, 3);
  std::sort(recs.begin(), recs.end());
  for (std::size_t i = 1; i < recs.size(); ++i) {
    ASSERT_FALSE(recs[i] < recs[i - 1]);
  }
}

TEST(MsortBound, MonotoneAndSubLinear) {
  double prev = 1.0;
  EXPECT_DOUBLE_EQ(msort_ideal_speedup(1 << 14, 1), 1.0);
  for (int procs = 2; procs <= 8; ++procs) {
    const double s = msort_ideal_speedup(1 << 14, procs);
    EXPECT_GT(s, prev);           // more processors always help...
    EXPECT_LT(s, procs);          // ...but never linearly (2N-1 rounds)
    prev = s;
  }
}

}  // namespace
}  // namespace ivy::apps
