// Property-based coherence tests.
//
// "the value returned by a read operation is always the same as the value
// written by the most recent write operation to the same address."
//
// Strategy: single-writer-per-cell discipline makes the oracle exact —
// each cell's writer publishes strictly increasing values, so every read
// anywhere must observe a value that is (a) one the writer actually
// wrote (or the initial zero) and (b) non-decreasing per reader, and the
// final state must equal the writer's last value.  A randomized access
// mix over many pages, parameterized across managers x node counts x
// page sizes — and with message-drop injection exercising the
// retransmission machinery end to end.
#include <gtest/gtest.h>

#include "ivy/ivy.h"

namespace ivy {
namespace {

struct PropertySetup {
  NodeId nodes;
  svm::ManagerKind manager;
  std::size_t page_size;
  double drop_rate;
  bool broadcast_invalidation;
  bool distributed_copysets = false;
};

std::string setup_name(const testing::TestParamInfo<PropertySetup>& info) {
  const auto& p = info.param;
  std::string name = std::to_string(p.nodes) + "n_" +
                     svm::to_string(p.manager) + "_" +
                     std::to_string(p.page_size) + "b";
  if (p.drop_rate > 0) name += "_drops";
  if (p.broadcast_invalidation) name += "_bcastinv";
  if (p.distributed_copysets) name += "_dcs";
  return name;
}

class CoherenceProperty : public testing::TestWithParam<PropertySetup> {};

TEST_P(CoherenceProperty, SingleWriterCellsStayCoherent) {
  const PropertySetup& setup = GetParam();
  Config cfg;
  cfg.nodes = setup.nodes;
  cfg.page_size = setup.page_size;
  cfg.heap_pages = static_cast<PageId>((256u * 1024u) / setup.page_size);
  cfg.stack_region_pages = 64;
  cfg.manager = setup.manager;
  cfg.broadcast_invalidation = setup.broadcast_invalidation;
  cfg.distributed_copysets = setup.distributed_copysets;
  Runtime rt(cfg);

  if (setup.drop_rate > 0) {
    // Lossy ring + aggressive client timeouts: the retransmission and
    // duplicate-absorption machinery must preserve coherence.
    auto rng = std::make_shared<Rng>(cfg.seed ^ 0xd40);
    rt.ring().set_drop_hook([rng, rate = setup.drop_rate](
                                const net::Message&) {
      return rng->chance(rate);
    });
    for (NodeId n = 0; n < cfg.nodes; ++n) {
      rt.rpc(n).set_request_timeout(ms(60));
      rt.rpc(n).set_check_interval(ms(30));
    }
  }

  const int procs = static_cast<int>(setup.nodes);
  constexpr std::size_t kCells = 512;
  constexpr int kSteps = 300;
  auto cells = rt.alloc_array<std::uint64_t>(kCells);

  // Host-side observation log, filled in by the processes as they run.
  struct Violation {
    std::string what;
  };
  std::vector<Violation> violations;
  std::vector<std::uint64_t> last_written(kCells, 0);

  for (int p = 0; p < procs; ++p) {
    rt.spawn_on(static_cast<NodeId>(p), [&, p, cells]() mutable {
      Rng rng(0xc0ffee + static_cast<std::uint64_t>(p));
      // Reader-side monotonicity memory.
      std::vector<std::uint64_t> floor(kCells, 0);
      std::uint64_t next_value = 1;
      for (int step = 0; step < kSteps; ++step) {
        const auto cell = rng.below(kCells);
        const bool mine =
            cell % static_cast<std::uint64_t>(procs) ==
            static_cast<std::uint64_t>(p);
        if (mine && rng.chance(0.5)) {
          // Strictly increasing values, tagged with the writer id.
          const std::uint64_t value =
              (next_value++ << 8) | static_cast<std::uint64_t>(p);
          cells[cell] = value;
          last_written[cell] = value;
          floor[cell] = value;
        } else {
          const std::uint64_t got = cells[cell];
          if (got != 0) {
            const auto writer = got & 0xff;
            if (writer != cell % static_cast<std::uint64_t>(procs)) {
              violations.push_back({"cell " + std::to_string(cell) +
                                    " carries foreign writer tag"});
            }
          }
          if (got < floor[cell]) {
            violations.push_back(
                {"cell " + std::to_string(cell) + " went backwards: " +
                 std::to_string(got) + " < " + std::to_string(floor[cell])});
          }
          floor[cell] = std::max(floor[cell], got);
        }
        charge(2);
      }
    });
  }
  rt.run();

  for (const auto& v : violations) ADD_FAILURE() << v.what;
  // Final state: exactly the last value each writer wrote.
  for (std::size_t c = 0; c < kCells; ++c) {
    ASSERT_EQ(rt.host_read(cells, c), last_written[c]) << "cell " << c;
  }
  rt.check_coherence_invariants();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CoherenceProperty,
    testing::Values(
        PropertySetup{2, svm::ManagerKind::kDynamicDistributed, 1024, 0, false},
        PropertySetup{4, svm::ManagerKind::kDynamicDistributed, 1024, 0, false},
        PropertySetup{8, svm::ManagerKind::kDynamicDistributed, 1024, 0, false},
        PropertySetup{8, svm::ManagerKind::kDynamicDistributed, 256, 0, false},
        PropertySetup{8, svm::ManagerKind::kDynamicDistributed, 4096, 0, false},
        PropertySetup{4, svm::ManagerKind::kCentralized, 1024, 0, false},
        PropertySetup{8, svm::ManagerKind::kCentralized, 512, 0, false},
        PropertySetup{4, svm::ManagerKind::kFixedDistributed, 1024, 0, false},
        PropertySetup{8, svm::ManagerKind::kFixedDistributed, 2048, 0, false},
        PropertySetup{4, svm::ManagerKind::kBroadcast, 1024, 0, false},
        PropertySetup{4, svm::ManagerKind::kDynamicDistributed, 1024, 0, true},
        PropertySetup{8, svm::ManagerKind::kCentralized, 1024, 0, true},
        PropertySetup{2, svm::ManagerKind::kDynamicDistributed, 1024, 0.02,
                      false},
        PropertySetup{4, svm::ManagerKind::kDynamicDistributed, 1024, 0.02,
                      false},
        PropertySetup{4, svm::ManagerKind::kCentralized, 1024, 0.02, false},
        PropertySetup{4, svm::ManagerKind::kFixedDistributed, 1024, 0.02,
                      false},
        PropertySetup{8, svm::ManagerKind::kDynamicDistributed, 1024, 0,
                      false, true},
        PropertySetup{4, svm::ManagerKind::kDynamicDistributed, 1024, 0.02,
                      false, true}),
    setup_name);

// Mixed-size reads and writes crossing page boundaries keep torn data
// out: a multi-page store is observed either not at all or in full once
// the writer's fault sequence completed and a barrier ordered it.
TEST(CoherenceSpans, CrossPageWritesAreNotTorn) {
  Config cfg;
  cfg.nodes = 3;
  cfg.page_size = 256;
  cfg.heap_pages = 512;
  cfg.stack_region_pages = 64;
  Runtime rt(cfg);

  struct Fat {
    std::uint64_t a, b, c, d;
  };
  // Place a Fat record straddling a page boundary.
  const SvmAddr addr = 256 * 3 - 16;
  auto bar = rt.create_barrier(3);

  rt.spawn_on(0, [=]() mutable {
    for (std::uint64_t round = 1; round <= 20; ++round) {
      proc::svm_write<Fat>(addr, Fat{round, round, round, round});
      bar.arrive(2 * static_cast<std::int64_t>(round) - 2);
      bar.arrive(2 * static_cast<std::int64_t>(round) - 1);
    }
  });
  for (NodeId n : {1u, 2u}) {
    rt.spawn_on(n, [=]() mutable {
      for (std::uint64_t round = 1; round <= 20; ++round) {
        bar.arrive(2 * static_cast<std::int64_t>(round) - 2);
        const Fat f = proc::svm_read<Fat>(addr);
        EXPECT_EQ(f.a, round);
        EXPECT_EQ(f.b, round);
        EXPECT_EQ(f.c, round);
        EXPECT_EQ(f.d, round);
        bar.arrive(2 * static_cast<std::int64_t>(round) - 1);
      }
    });
  }
  rt.run();
  rt.check_coherence_invariants();
}

}  // namespace
}  // namespace ivy
