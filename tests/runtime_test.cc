// Tests for the runtime facade: configuration validation, address-space
// layout, host-side access, determinism of whole runs, and the
// invariant auditor itself.
#include <gtest/gtest.h>

#include "ivy/apps/msort.h"
#include "ivy/apps/tsp.h"
#include "ivy/ivy.h"

namespace ivy::runtime {
namespace {

Config small(NodeId nodes) {
  Config cfg;
  cfg.nodes = nodes;
  cfg.heap_pages = 256;
  cfg.stack_region_pages = 64;
  return cfg;
}

TEST(ConfigTest, GeometryCoversHeapAndStacks) {
  Config cfg = small(4);
  EXPECT_EQ(cfg.total_pages(), 256u + 4u * 64u);
  EXPECT_EQ(cfg.geometry().size_bytes(),
            static_cast<SvmAddr>(cfg.total_pages()) * cfg.page_size);
}

TEST(ConfigDeathTest, RejectsBadConfigs) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto with = [](auto mutate) {
    Config cfg;
    cfg.heap_pages = 16;
    mutate(cfg);
    Runtime rt(cfg);
  };
  EXPECT_DEATH(with([](Config& c) { c.nodes = 0; }), "IVY_CHECK");
  EXPECT_DEATH(with([](Config& c) { c.nodes = 65; }), "IVY_CHECK");
  EXPECT_DEATH(with([](Config& c) { c.page_size = 100; }), "IVY_CHECK");
  EXPECT_DEATH(with([](Config& c) { c.page_size = 128; }), "IVY_CHECK");
  EXPECT_DEATH(with([](Config& c) { c.manager_node = 7; }), "IVY_CHECK");
  EXPECT_DEATH(with([](Config& c) { c.chunk_bytes = 1000; }), "IVY_CHECK");
}

TEST(RuntimeTest, HostWriteThenProcessRead) {
  Runtime rt(small(2));
  auto data = rt.alloc_array<int>(64);
  for (std::size_t i = 0; i < 64; ++i) {
    rt.host_write<int>(data.address_of(i), static_cast<int>(i * 7));
  }
  int sum = 0;
  rt.spawn_on(1, [&sum, data]() mutable {
    for (std::size_t i = 0; i < 64; ++i) sum += data[i];
  });
  rt.run();
  EXPECT_EQ(sum, 7 * (63 * 64) / 2);
}

TEST(RuntimeTest, HostReadFindsDataWhereverItLives) {
  Runtime rt(small(4));
  auto data = rt.alloc_array<std::uint64_t>(256);
  auto bar = rt.create_barrier(4);
  for (NodeId n = 0; n < 4; ++n) {
    rt.spawn_on(n, [=]() mutable {
      for (std::size_t i = n; i < 256; i += 4) {
        data[i] = i * 3;
      }
      bar.arrive(0);
    });
  }
  rt.run();
  for (std::size_t i = 0; i < 256; ++i) {
    ASSERT_EQ(rt.host_read(data, i), i * 3);
  }
}

TEST(RuntimeTest, AllocRawExhaustionAborts) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Runtime rt(small(1));
        (void)rt.alloc_raw(1024u * 1024u * 1024u);
      },
      "exhausted");
}

TEST(RuntimeTest, FreeRawReturnsMemory) {
  Runtime rt(small(1));
  const SvmAddr a = rt.alloc_raw(1024);
  rt.free_raw(a);
  const SvmAddr b = rt.alloc_raw(1024);
  EXPECT_EQ(a, b);
}

TEST(RuntimeTest, MultiplePhasesShareOneMachine) {
  Runtime rt(small(2));
  auto v = rt.alloc_scalar<int>();
  rt.spawn_on(0, [=]() mutable { v.set(1); });
  rt.run();
  EXPECT_EQ(rt.host_read<int>(v.address()), 1);
  rt.spawn_on(1, [=]() mutable { v.set(v.get() + 1); });
  rt.run();
  EXPECT_EQ(rt.host_read<int>(v.address()), 2);
  rt.check_coherence_invariants();
}

TEST(RuntimeTest, StatsEpochIntegration) {
  Runtime rt(small(2));
  auto data = rt.alloc_array<int>(512);
  rt.spawn_on(1, [=, &rt]() mutable {
    for (std::size_t i = 0; i < 512; ++i) data[i] = 1;
    rt.mark_epoch();
    for (std::size_t i = 0; i < 512; ++i) data[i] = 2;
    rt.mark_epoch();
  });
  rt.run();
  ASSERT_EQ(rt.stats().epoch_count(), 2u);
  // Epoch 1: node 1 pulled the pages over (write faults); epoch 2: it
  // already owned everything.
  EXPECT_GT(rt.stats().epoch(0).get(Counter::kWriteFaults),
            rt.stats().epoch(1).get(Counter::kWriteFaults));
}

// --- determinism ------------------------------------------------------------

struct RunFingerprint {
  Time end_time;
  std::uint64_t messages;
  std::uint64_t faults;
  std::uint64_t events;

  friend bool operator==(const RunFingerprint&,
                         const RunFingerprint&) = default;
};

RunFingerprint fingerprint_run(std::uint64_t seed) {
  Config cfg = small(4);
  cfg.seed = seed;
  cfg.frames_per_node = 96;  // include replacement in the fingerprint
  Runtime rt(cfg);
  apps::MsortParams p;
  p.records = 1024;
  p.seed = seed;
  const apps::RunOutcome out = run_msort(rt, p);
  EXPECT_TRUE(out.verified);
  rt.drain();
  return RunFingerprint{
      rt.now(),
      rt.stats().total(Counter::kMessages),
      rt.stats().total(Counter::kReadFaults) +
          rt.stats().total(Counter::kWriteFaults),
      rt.simulator().events_executed()};
}

TEST(Determinism, IdenticalSeedsIdenticalRuns) {
  const RunFingerprint a = fingerprint_run(123);
  const RunFingerprint b = fingerprint_run(123);
  EXPECT_EQ(a, b);
}

TEST(Determinism, DifferentSeedsDifferentData) {
  // Different input data changes the work actually done.  (The sort's
  // charge profile is data-independent, so use the branch-and-bound
  // search, whose tree shape depends on the weights.)
  auto tsp_time = [](std::uint64_t seed) {
    Config cfg = small(2);
    cfg.heap_pages = 1024;  // room for the branch pool
    Runtime rt(cfg);
    apps::TspParams p;
    p.cities = 8;
    p.seed = seed;
    const apps::RunOutcome out = run_tsp(rt, p);
    EXPECT_TRUE(out.verified);
    return out.elapsed;
  };
  EXPECT_NE(tsp_time(1), tsp_time(2));
}

// --- invariant auditor sanity -------------------------------------------------

TEST(InvariantAuditor, CleanMachinePasses) {
  Runtime rt(small(3));
  rt.check_coherence_invariants();
}

TEST(Diagnostics, DumpStateReportsNonQuiescentPages) {
  Runtime rt(small(2));
  EXPECT_EQ(rt.dump_state().find("page"), std::string::npos);
  // Forge a mid-fault entry and expect it in the dump.
  rt.svm(1).table().at(5).fault_in_progress = true;
  const std::string dump = rt.dump_state();
  EXPECT_NE(dump.find("page 5"), std::string::npos);
  EXPECT_NE(dump.find("fault=1"), std::string::npos);
  rt.svm(1).table().at(5).fault_in_progress = false;
}

TEST(InvariantAuditor, DetectsCorruptedOwnership) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Runtime rt(small(2));
        // Forge a second owner.
        rt.svm(1).table().at(3).owned = true;
        rt.check_coherence_invariants();
      },
      "two owners");
  EXPECT_DEATH(
      {
        Runtime rt(small(2));
        // Forge a rogue writer that is not the owner.
        rt.svm(1).table().at(3).access = svm::Access::kWrite;
        rt.check_coherence_invariants();
      },
      "non-owner");
}

}  // namespace
}  // namespace ivy::runtime
