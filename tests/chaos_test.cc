// Chaos verification: every workload on every manager stays correct
// under a mixed fault load — dropped, duplicated, and delayed frames —
// with the strict coherence oracle armed and retransmission timeouts
// tightened so the backoff path is actually exercised.  The grid sweeps
// fault seeds so each point sees a different deterministic fault
// schedule; any incorrect answer, oracle violation, lost ownership
// token, or stuck rpc fails the test.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "ivy/apps/dotprod.h"
#include "ivy/apps/jacobi.h"
#include "ivy/apps/matmul.h"
#include "ivy/apps/msort.h"
#include "ivy/apps/pde3d.h"
#include "ivy/apps/tsp.h"
#include "ivy/fault/plane.h"

namespace ivy::apps {
namespace {

// The acceptance fault load from the issue: 2% drop, 1% duplication,
// and a 2ms delay on 5% of frames (enough to reorder traffic).
constexpr const char* kChaosSpec = "drop=0.02,dup=0.01,delay=2ms@0.05";

struct ChaosPoint {
  svm::ManagerKind manager = svm::ManagerKind::kDynamicDistributed;
  std::uint64_t fault_seed = 1;
  std::string label;
};

class ChaosTest : public testing::TestWithParam<ChaosPoint> {
 protected:
  Config make_config() const {
    const ChaosPoint& p = GetParam();
    Config cfg;
    cfg.nodes = 4;
    cfg.manager = p.manager;
    cfg.oracle_mode = oracle::Mode::kStrict;
    std::string error;
    EXPECT_TRUE(fault::parse_fault_spec(kChaosSpec, &cfg.fault, &error))
        << error;
    cfg.fault_seed = p.fault_seed;
    // Tight rpc timing so lost frames are retransmitted (with backoff)
    // within the short virtual lifetime of these workloads.
    cfg.rpc_request_timeout = ms(20);
    cfg.rpc_check_interval = ms(5);
    return cfg;
  }

  // Quiescence: after a run drains, no node may still be waiting on a
  // reply or holding a half-served request.  A leak here means a fault
  // was absorbed by losing an rpc instead of recovering it.  (Terminal
  // rpc failures are allowed: a fault request black-holed by poisoned
  // routing state fails its retransmission cap and recovers through the
  // broadcast relocate — what matters is that the run still finished
  // correct and quiet.)
  static void expect_quiescent(Runtime& rt) {
    for (NodeId n = 0; n < rt.config().nodes; ++n) {
      EXPECT_EQ(rt.rpc(n).outstanding_requests(), 0u) << "node " << n;
      EXPECT_EQ(rt.rpc(n).pending_serves(), 0u) << "node " << n;
    }
  }

  static std::uint64_t injected_total(Runtime& rt) {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < fault::kFaultTypeCount; ++i) {
      total += rt.fault_plane()->injected(static_cast<fault::FaultType>(i));
    }
    return total;
  }
};

TEST_P(ChaosTest, Jacobi) {
  Runtime rt(make_config());
  JacobiParams p;
  p.n = 32;
  p.iterations = 2;
  const RunOutcome out = run_jacobi(rt, p);
  EXPECT_TRUE(out.verified) << out.detail;
  rt.check_coherence_invariants();
  expect_quiescent(rt);
  // Jacobi moves enough traffic that a silent no-op fault plane would
  // be a test bug: prove injections actually happened.
  EXPECT_GT(injected_total(rt), 0u);
}

TEST_P(ChaosTest, Matmul) {
  Runtime rt(make_config());
  MatmulParams p;
  p.n = 24;
  const RunOutcome out = run_matmul(rt, p);
  EXPECT_TRUE(out.verified) << out.detail;
  rt.check_coherence_invariants();
  expect_quiescent(rt);
}

TEST_P(ChaosTest, Pde3d) {
  Runtime rt(make_config());
  Pde3dParams p;
  p.m = 6;
  p.iterations = 2;
  const RunOutcome out = run_pde3d(rt, p);
  EXPECT_TRUE(out.verified) << out.detail;
  rt.check_coherence_invariants();
  expect_quiescent(rt);
}

TEST_P(ChaosTest, Tsp) {
  Runtime rt(make_config());
  TspParams p;
  p.cities = 7;
  const RunOutcome out = run_tsp(rt, p);
  EXPECT_TRUE(out.verified) << out.detail;
  rt.check_coherence_invariants();
  expect_quiescent(rt);
}

TEST_P(ChaosTest, Dotprod) {
  Runtime rt(make_config());
  DotprodParams p;
  p.n = 2048;
  const RunOutcome out = run_dotprod(rt, p);
  EXPECT_TRUE(out.verified) << out.detail;
  rt.check_coherence_invariants();
  expect_quiescent(rt);
}

TEST_P(ChaosTest, Msort) {
  Runtime rt(make_config());
  MsortParams p;
  p.records = 256;
  const RunOutcome out = run_msort(rt, p);
  EXPECT_TRUE(out.verified) << out.detail;
  rt.check_coherence_invariants();
  expect_quiescent(rt);
}

// Read-modify-write rotation: every node reads the value each round and
// the writer rotates, so each round's writer holds a read copy when its
// write fault is served — the bodyless-grant path under the full chaos
// load, on every manager and fault seed of the grid.
TEST_P(ChaosTest, ReadModifyWriteRotationGoesBodyless) {
  Runtime rt(make_config());
  auto value = rt.alloc_scalar<std::uint64_t>();
  auto bar = rt.create_barrier(4);
  constexpr std::uint64_t kRounds = 10;
  for (NodeId n = 0; n < 4; ++n) {
    rt.spawn_on(n, [=]() mutable {
      for (std::uint64_t round = 0; round < kRounds; ++round) {
        if (round % 4 == n) value.set(round * 100 + n);
        bar.arrive(2 * static_cast<std::int64_t>(round));
        EXPECT_EQ(value.get(), round * 100 + round % 4);
        bar.arrive(2 * static_cast<std::int64_t>(round) + 1);
      }
    });
  }
  rt.run();
  rt.check_coherence_invariants();
  expect_quiescent(rt);
  EXPECT_GT(rt.stats().total(Counter::kBodylessUpgrades), 0u);
  EXPECT_GT(injected_total(rt), 0u);
}

// 4 managers x 5 fault seeds; every point runs all six workloads.
std::vector<ChaosPoint> chaos_grid() {
  struct Mgr {
    svm::ManagerKind kind;
    const char* name;
  };
  static constexpr Mgr kManagers[] = {
      {svm::ManagerKind::kCentralized, "centralized"},
      {svm::ManagerKind::kFixedDistributed, "fixed"},
      {svm::ManagerKind::kDynamicDistributed, "dynamic"},
      {svm::ManagerKind::kBroadcast, "broadcast"},
  };
  std::vector<ChaosPoint> grid;
  for (const Mgr& m : kManagers) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      grid.push_back(
          {m.kind, seed, std::string(m.name) + "_seed" + std::to_string(seed)});
    }
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(Grid, ChaosTest, testing::ValuesIn(chaos_grid()),
                         [](const testing::TestParamInfo<ChaosPoint>& info) {
                           return info.param.label;
                         });

// --- partition heal (satellite) ---------------------------------------
//
// Two nodes lose all connectivity for a window that spans active page
// traffic.  Requests caught in the partition back off and retransmit;
// once the window closes they must go through — the run finishes with
// the right answer, no terminal failures, and a quiet network.
TEST(PartitionHealTest, BackoffRecoversAfterHeal) {
  Config cfg;
  cfg.nodes = 4;
  cfg.oracle_mode = oracle::Mode::kStrict;
  std::string error;
  ASSERT_TRUE(fault::parse_fault_spec("partition=0-1:40ms@t=1ms",
                                      &cfg.fault, &error))
      << error;
  cfg.rpc_request_timeout = ms(10);
  cfg.rpc_check_interval = ms(5);

  Runtime rt(cfg);
  JacobiParams p;
  p.n = 32;
  p.iterations = 3;
  const RunOutcome out = run_jacobi(rt, p);
  EXPECT_TRUE(out.verified) << out.detail;
  rt.check_coherence_invariants();

  // The partition actually bit, and recovery went through the backoff
  // retransmission path rather than terminal failure.
  using fault::FaultType;
  EXPECT_GT(rt.fault_plane()->injected(FaultType::kPartition), 0u);
  EXPECT_GT(rt.stats().total(Counter::kRetransmissions), 0u);
  EXPECT_EQ(rt.stats().total(Counter::kRpcFailures), 0u);
  for (NodeId n = 0; n < cfg.nodes; ++n) {
    EXPECT_EQ(rt.rpc(n).outstanding_requests(), 0u) << "node " << n;
    EXPECT_EQ(rt.rpc(n).pending_serves(), 0u) << "node " << n;
  }
}

}  // namespace
}  // namespace ivy::apps
