// The coherence oracle must (a) stay silent on clean protocol traffic
// under every manager algorithm, and (b) detect each invariant class
// when the page tables are deliberately corrupted behind its back.
// Corruption tests run in warn mode so the violation counters are
// observable; one strict-mode test checks the fail-fast path aborts
// with event context.
#include <gtest/gtest.h>

#include <memory>

#include "ivy/oracle/oracle.h"
#include "ivy/svm/manager.h"
#include "ivy/svm/svm.h"

namespace ivy::oracle {
namespace {

using svm::Access;
using svm::ManagerKind;

/// svm_test's harness with the oracle wired in as the global observer.
class OracleHarness {
 public:
  explicit OracleHarness(Mode mode, NodeId nodes,
                         ManagerKind kind = ManagerKind::kDynamicDistributed)
      : oracle_(mode, nodes, kPages, /*initial_owner=*/0),
        stats_(nodes),
        ring_(sim_, stats_, nodes) {
    oracle_.set_clock([this] { return sim_.now(); });
    svm::SvmOptions opts;
    opts.geo = svm::Geometry{256, kPages};
    opts.manager = kind;
    opts.frames_per_node = 4096;
    opts.observer = &oracle_;
    for (NodeId n = 0; n < nodes; ++n) {
      rpcs_.push_back(std::make_unique<rpc::RemoteOp>(sim_, ring_, stats_, n));
      svms_.push_back(std::make_unique<svm::Svm>(sim_, *rpcs_.back(), stats_,
                                                 n, nodes, opts));
      oracle_.attach(svms_.back().get());
    }
  }

  static constexpr PageId kPages = 8;

  svm::Svm& at(NodeId n) { return *svms_[n]; }
  Oracle& oracle() { return oracle_; }

  void ensure(NodeId node, PageId page, Access want) {
    bool done = false;
    at(node).request_access(page, want, [&] { done = true; });
    sim_.run_while([&] { return !done; });
    ASSERT_TRUE(done);
    sim_.run_until_idle();
  }

  void write_u64(NodeId node, SvmAddr addr, std::uint64_t v) {
    at(node).write_bytes(addr, std::as_bytes(std::span(&v, 1)));
  }

  /// Some realistic traffic: ownership ping-pong on page 0, read
  /// sharing on page 1, then a settle.
  void churn() {
    write_u64(0, 0, 1);
    ensure(1, 0, Access::kWrite);
    write_u64(1, 0, 2);
    ensure(2, 0, Access::kWrite);
    ensure(0, 0, Access::kWrite);
    write_u64(0, 256, 7);
    ensure(1, 1, Access::kRead);
    ensure(2, 1, Access::kRead);
    ensure(3, 1, Access::kRead);
    sim_.run_until_idle();
  }

  sim::Simulator sim_;
  Oracle oracle_;
  Stats stats_;
  net::Ring ring_;
  std::vector<std::unique_ptr<rpc::RemoteOp>> rpcs_;
  std::vector<std::unique_ptr<svm::Svm>> svms_;
};

// --- clean runs -----------------------------------------------------------

class OracleClean : public testing::TestWithParam<ManagerKind> {};

TEST_P(OracleClean, StrictOracleStaysSilentOnCleanTraffic) {
  OracleHarness h(Mode::kStrict, 4, GetParam());
  h.churn();
  h.oracle().final_audit();
  EXPECT_EQ(h.oracle().total_violations(), 0u);
  EXPECT_GT(h.oracle().checks(), 0u);
  // Page 0 changed hands three times — content checksums were compared.
  EXPECT_GT(h.oracle().content_checks(), 0u);
  // Every fault resolved, so the chain histogram saw them all.
  EXPECT_GT(h.oracle().chain_histogram().faults, 0u);
}

INSTANTIATE_TEST_SUITE_P(Managers, OracleClean,
                         testing::Values(ManagerKind::kCentralized,
                                         ManagerKind::kFixedDistributed,
                                         ManagerKind::kDynamicDistributed,
                                         ManagerKind::kBroadcast),
                         [](const auto& info) {
                           return std::string(svm::to_string(info.param));
                         });

// --- per-invariant detection ----------------------------------------------

TEST(OracleDetect, DuplicateOwnerToken) {
  OracleHarness h(Mode::kWarn, 4);
  h.churn();
  h.at(3).table().at(0).owned = true;  // forge a second token
  h.oracle().final_audit();
  EXPECT_GT(h.oracle().violations(Invariant::kSingleOwner), 0u);
}

TEST(OracleDetect, VanishedOwnerToken) {
  OracleHarness h(Mode::kWarn, 4);
  h.churn();
  h.at(0).table().at(0).owned = false;  // drop the token on the floor
  h.oracle().final_audit();
  EXPECT_GT(h.oracle().violations(Invariant::kSingleOwner), 0u);
}

TEST(OracleDetect, WriterWithoutExclusivity) {
  OracleHarness h(Mode::kWarn, 4);
  h.churn();
  // Node 3 keeps a read mapping of page 0 although node 0 writes it.
  svm::PageEntry& e = h.at(3).table().at(0);
  e.access = Access::kRead;
  e.version = h.at(0).table().at(0).version;
  h.oracle().final_audit();
  EXPECT_GT(h.oracle().violations(Invariant::kWriterExclusive), 0u);
}

TEST(OracleDetect, WriteAccessWithoutOwnership) {
  OracleHarness h(Mode::kWarn, 4);
  h.churn();
  h.at(3).table().at(1).access = Access::kWrite;
  h.oracle().final_audit();
  EXPECT_GT(h.oracle().violations(Invariant::kWriterExclusive), 0u);
}

TEST(OracleDetect, ReaderMissingFromCopyTree) {
  OracleHarness h(Mode::kWarn, 4);
  h.churn();
  // Pretend node 3 read page 2 but no owner copyset records it.
  svm::PageEntry& e = h.at(3).table().at(2);
  e.access = Access::kRead;
  e.version = h.at(0).table().at(2).version;
  h.oracle().final_audit();
  EXPECT_GT(h.oracle().violations(Invariant::kCopysetCoverage), 0u);
}

TEST(OracleDetect, StaleMappingSurvivedInvalidation) {
  OracleHarness h(Mode::kWarn, 4);
  h.churn();
  // A reader of page 0 at an old version — its invalidation was "lost".
  // (Registering it in the owner's copyset keeps coverage satisfied, so
  // exactly the lost-invalidation check fires.)
  svm::PageEntry& e = h.at(2).table().at(0);
  e.access = Access::kRead;
  e.version = 1;
  h.at(0).table().at(0).copyset.add(2);
  h.oracle().final_audit();
  EXPECT_GT(h.oracle().violations(Invariant::kLostInvalidation), 0u);
}

TEST(OracleDetect, ProbOwnerCycle) {
  OracleHarness h(Mode::kWarn, 4);
  h.churn();
  // Nodes 2 and 3 point their page-3 hints at each other: requests
  // would bounce forever without reaching the owner.
  h.at(2).table().at(3).prob_owner = 3;
  h.at(3).table().at(3).prob_owner = 2;
  h.oracle().final_audit();
  EXPECT_GT(h.oracle().violations(Invariant::kChainTermination), 0u);
}

TEST(OracleDetect, UnmatchedTransferSteps) {
  OracleHarness h(Mode::kWarn, 4);
  h.churn();
  // A grant-accept out of thin air, then a release nobody granted.
  h.oracle().on_ownership_gained(2, 4, /*from=*/1, /*version=*/9);
  h.oracle().on_ownership_released(1, 4, /*to=*/2, /*version=*/9);
  EXPECT_GE(h.oracle().violations(Invariant::kTransferProtocol), 2u);
}

TEST(OracleDetect, CorruptedPageImage) {
  OracleHarness h(Mode::kWarn, 4);
  const std::uint64_t good = 0xabcdef, bad = 0xfee1bad;
  h.oracle().on_page_content(0, 5, /*version=*/3,
                             std::as_bytes(std::span(&good, 1)),
                             /*at_source=*/true);
  h.oracle().on_page_content(1, 5, /*version=*/3,
                             std::as_bytes(std::span(&bad, 1)),
                             /*at_source=*/false);
  EXPECT_EQ(h.oracle().violations(Invariant::kContentIntegrity), 1u);
}

// --- reporting ------------------------------------------------------------

TEST(OracleReport, ViolationCarriesRecentEventContext) {
  OracleHarness h(Mode::kWarn, 4);
  h.churn();
  h.at(3).table().at(0).owned = true;
  h.oracle().final_audit();
  const std::string report = h.oracle().report();
  EXPECT_NE(report.find("single_owner"), std::string::npos) << report;
  EXPECT_NE(report.find("recent events"), std::string::npos) << report;
  // The context window names the protocol steps that led up to it.
  EXPECT_NE(report.find("ownership_gained"), std::string::npos) << report;
}

TEST(OracleReport, BriefSummarizesChecks) {
  OracleHarness h(Mode::kWarn, 4);
  h.churn();
  const std::string brief = h.oracle().brief();
  EXPECT_NE(brief.find("oracle[warn]"), std::string::npos) << brief;
  EXPECT_NE(brief.find("0 violations"), std::string::npos) << brief;
}

TEST(OracleStrictDeathTest, AbortsOnFirstViolation) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        OracleHarness h(Mode::kStrict, 4);
        h.churn();
        h.at(3).table().at(0).owned = true;
        h.oracle().final_audit();
      },
      "coherence oracle");
}

}  // namespace
}  // namespace ivy::oracle
