// Cross-configuration matrix: the applications must stay correct under
// every combination of machine knobs — page sizes, the two-level
// allocator, broadcast invalidation, memory pressure with both
// replacement policies, and system scheduling with load balancing.
#include <gtest/gtest.h>

#include "ivy/apps/jacobi.h"
#include "ivy/apps/msort.h"

namespace ivy::apps {
namespace {

struct Knobs {
  std::size_t page_size = 1024;
  bool two_level_alloc = false;
  bool broadcast_invalidation = false;
  std::size_t frames = 1 << 22;
  mem::ReplacementPolicy replacement = mem::ReplacementPolicy::kSampledLru;
  bool system_scheduling = false;
  const char* label = "";
};

class ConfigMatrix : public testing::TestWithParam<Knobs> {
 protected:
  Config make_config() const {
    const Knobs& k = GetParam();
    Config cfg;
    cfg.nodes = 4;
    cfg.page_size = k.page_size;
    cfg.heap_pages = static_cast<PageId>((4u << 20) / k.page_size);
    cfg.stack_region_pages = 64;
    cfg.two_level_alloc = k.two_level_alloc;
    cfg.broadcast_invalidation = k.broadcast_invalidation;
    cfg.frames_per_node = k.frames;
    cfg.replacement = k.replacement;
    // Every matrix point runs under the strict coherence oracle: any
    // copyset/ownership drift aborts the test with event context.
    cfg.oracle_mode = oracle::Mode::kStrict;
    if (k.system_scheduling) {
      cfg.sched.load_balancing = true;
      cfg.sched.lower_threshold = 1;
      cfg.sched.upper_threshold = 2;
      cfg.sched.lb_interval = ms(10);
      cfg.stack_region_pages = 128;
    }
    return cfg;
  }
};

TEST_P(ConfigMatrix, JacobiStaysCorrect) {
  Runtime rt(make_config());
  JacobiParams p;
  p.n = 48;
  p.iterations = 3;
  p.system_scheduling = GetParam().system_scheduling;
  const RunOutcome out = run_jacobi(rt, p);
  EXPECT_TRUE(out.verified) << out.detail;
  rt.check_coherence_invariants();
}

TEST_P(ConfigMatrix, MsortStaysCorrect) {
  Runtime rt(make_config());
  MsortParams p;
  p.records = 1024;
  const RunOutcome out = run_msort(rt, p);
  EXPECT_TRUE(out.verified) << out.detail;
  rt.check_coherence_invariants();
}

INSTANTIATE_TEST_SUITE_P(
    Knobs, ConfigMatrix,
    testing::Values(
        Knobs{.label = "baseline"},
        Knobs{.page_size = 256, .label = "tiny_pages"},
        Knobs{.page_size = 4096, .label = "huge_pages"},
        Knobs{.two_level_alloc = true, .label = "two_level_alloc"},
        Knobs{.broadcast_invalidation = true, .label = "bcast_inval"},
        Knobs{.frames = 96,
              .replacement = mem::ReplacementPolicy::kSampledLru,
              .label = "paging_sampled"},
        Knobs{.frames = 96,
              .replacement = mem::ReplacementPolicy::kStrictLru,
              .label = "paging_strict"},
        Knobs{.system_scheduling = true, .label = "system_sched"},
        Knobs{.page_size = 512,
              .two_level_alloc = true,
              .broadcast_invalidation = true,
              .label = "combo"}),
    [](const testing::TestParamInfo<Knobs>& info) {
      return std::string(info.param.label);
    });

}  // namespace
}  // namespace ivy::apps
