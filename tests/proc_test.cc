// Tests for process management: spawn/finish, LIFO dispatch, blocking,
// stale-wakeup epochs, migration with stack handoff and forwarding
// pointers, passive load balancing, migratability control.
#include <gtest/gtest.h>

#include "ivy/ivy.h"

namespace ivy::proc {
namespace {

runtime::Config two_nodes(bool lb = false) {
  runtime::Config cfg;
  cfg.nodes = 2;
  cfg.heap_pages = 256;
  cfg.stack_region_pages = 128;
  cfg.sched.load_balancing = lb;
  return cfg;
}

TEST(ProcTest, SpawnRunsBodyAndCountsDown) {
  runtime::Runtime rt(two_nodes());
  int ran = 0;
  rt.spawn_on(0, [&] { ++ran; });
  rt.spawn_on(1, [&] { ++ran; });
  rt.run();
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(rt.scheduler(0).proc_count(), 0);
  EXPECT_EQ(rt.stats().total(Counter::kProcSpawns), 2u);
}

TEST(ProcTest, SpawnInsideProcessWorks) {
  runtime::Runtime rt(two_nodes());
  int child_ran = 0;
  rt.spawn_on(0, [&rt, &child_ran] {
    proc::Scheduler::current_scheduler()->spawn([&child_ran] {
      ++child_ran;
    });
    (void)rt;
  });
  rt.run();
  EXPECT_EQ(child_ran, 1);
}

TEST(ProcTest, LifoDispatchRunsNewestReadyFirst) {
  runtime::Runtime rt(two_nodes());
  std::vector<int> order;
  // Both spawned before the first dispatch: LIFO runs #2 first.
  rt.spawn_on(0, [&] { order.push_back(1); });
  rt.spawn_on(0, [&] { order.push_back(2); });
  rt.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(ProcTest, VirtualTimeAdvancesWithCharges) {
  runtime::Runtime rt(two_nodes());
  rt.spawn_on(0, [] { charge_compute(1000); });
  const Time t = rt.run();
  // At least the 1000 compute units (40 us each) must have elapsed.
  EXPECT_GE(t, 1000 * rt.config().costs.compute_unit);
}

TEST(ProcTest, BlockAndExternalResume) {
  runtime::Runtime rt(two_nodes());
  std::vector<int> trace;
  rt.spawn_on(0, [&trace] {
    Scheduler* sched = Scheduler::current_scheduler();
    Pcb* self = Scheduler::current_pcb();
    trace.push_back(1);
    Scheduler::block_current([sched, self, &trace] {
      // Resume ourselves 5 ms later.
      sched->simulator().schedule_after(ms(5), [sched, self] {
        sched->make_ready(*self);
      });
      trace.push_back(2);
    });
    trace.push_back(3);
  });
  rt.run();
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3}));
  EXPECT_GE(rt.now(), ms(5));
}

TEST(ProcTest, StaleEpochWakeupIsIgnored) {
  runtime::Runtime rt(two_nodes());
  int resumed = 0;
  rt.spawn_on(0, [&rt, &resumed] {
    Scheduler* sched = Scheduler::current_scheduler();
    Pcb* self = Scheduler::current_pcb();
    const ProcId pid = self->id;
    const std::uint32_t first_epoch = self->block_epoch + 1;
    // First block: a wakeup for this epoch plus a duplicate later.
    Scheduler::block_current([sched, pid, first_epoch] {
      sched->simulator().schedule_after(ms(1), [sched, pid, first_epoch] {
        sched->resume(pid, first_epoch);
      });
      // The duplicate arrives during the *second* block, with the old
      // epoch: it must not wake the process.
      sched->simulator().schedule_after(ms(10), [sched, pid, first_epoch] {
        sched->resume(pid, first_epoch);
      });
    });
    ++resumed;
    // Second block: only the correct-epoch wakeup works.
    const std::uint32_t second_epoch = self->block_epoch + 1;
    Scheduler::block_current([sched, pid, second_epoch] {
      sched->simulator().schedule_after(ms(30), [sched, pid, second_epoch] {
        sched->resume(pid, second_epoch);
      });
    });
    ++resumed;
    (void)rt;
  });
  rt.run();
  EXPECT_EQ(resumed, 2);
  EXPECT_GE(rt.now(), ms(30));  // the stale wakeup did not cut it short
}

TEST(ProcTest, LoadBalancerSpreadsWork) {
  runtime::Config cfg;
  cfg.nodes = 4;
  cfg.heap_pages = 256;
  cfg.stack_region_pages = 256;
  cfg.sched.load_balancing = true;
  cfg.sched.lower_threshold = 1;
  cfg.sched.upper_threshold = 2;
  cfg.sched.lb_interval = ms(10);
  runtime::Runtime rt(cfg);

  auto where = rt.alloc_array<std::uint32_t>(12);
  for (int i = 0; i < 12; ++i) {
    rt.spawn([i, where]() mutable {
      for (int s = 0; s < 200; ++s) charge_compute(25);
      where[static_cast<std::size_t>(i)] = self_node();
    });
  }
  rt.run();
  EXPECT_GT(rt.stats().total(Counter::kMigrations), 0u);
  std::set<std::uint32_t> nodes_used;
  for (int i = 0; i < 12; ++i) {
    nodes_used.insert(rt.host_read(where, static_cast<std::size_t>(i)));
  }
  EXPECT_GE(nodes_used.size(), 3u);
}

TEST(ProcTest, NonMigratableProcessesStayHome) {
  runtime::Config cfg;
  cfg.nodes = 4;
  cfg.heap_pages = 256;
  cfg.stack_region_pages = 256;
  cfg.sched.load_balancing = true;
  cfg.sched.lower_threshold = 1;
  cfg.sched.upper_threshold = 2;
  cfg.sched.lb_interval = ms(10);
  runtime::Runtime rt(cfg);

  auto where = rt.alloc_array<std::uint32_t>(8);
  for (int i = 0; i < 8; ++i) {
    rt.spawn_on(0,
                [i, where]() mutable {
                  for (int s = 0; s < 200; ++s) charge_compute(25);
                  where[static_cast<std::size_t>(i)] = self_node();
                },
                /*migratable=*/false);
  }
  rt.run();
  EXPECT_EQ(rt.stats().total(Counter::kMigrations), 0u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(rt.host_read(where, static_cast<std::size_t>(i)), 0u);
  }
}

TEST(ProcTest, MigratedProcessKeepsItsStackPageContents) {
  // The migrating process owns its current stack page (spawn touched
  // it); after migration the transfer must leave the page owned by the
  // destination with its body intact.
  runtime::Config cfg;
  cfg.nodes = 2;
  cfg.heap_pages = 256;
  cfg.stack_region_pages = 128;
  cfg.sched.load_balancing = true;
  cfg.sched.lower_threshold = 1;
  cfg.sched.upper_threshold = 1;  // node 0 gives work away eagerly
  cfg.sched.lb_interval = ms(5);
  runtime::Runtime rt(cfg);

  auto out = rt.alloc_array<std::uint32_t>(4);
  for (int i = 0; i < 4; ++i) {
    rt.spawn_on(0, [i, out]() mutable {
      Pcb* self = proc::Scheduler::current_pcb();
      const SvmAddr stack = self->stack_base;
      // Write a marker into our own SVM stack page.
      proc::svm_write<std::uint64_t>(stack + 64, 0xabcd0000u + i);
      for (int s = 0; s < 100; ++s) charge_compute(25);
      // Still readable wherever we ended up (possibly after migration —
      // note current_pcb()->stack_base travels with the PCB).
      const auto marker = proc::svm_read<std::uint64_t>(
          proc::Scheduler::current_pcb()->stack_base + 64);
      EXPECT_EQ(marker, 0xabcd0000u + i);
      out[static_cast<std::size_t>(i)] = self_node();
    });
  }
  rt.run();
  EXPECT_GT(rt.stats().total(Counter::kMigrations), 0u);
  bool any_moved = false;
  for (int i = 0; i < 4; ++i) {
    any_moved = any_moved ||
                rt.host_read(out, static_cast<std::size_t>(i)) != 0u;
  }
  EXPECT_TRUE(any_moved);
  rt.check_coherence_invariants();
}

TEST(ProcTest, ForwardingPointerRoutesWakeupAfterMigration) {
  // A process records its original PID, migrates, then waits on an
  // eventcount; the advance (which stored the *new* PID) plus a direct
  // resume of the old PID must both find it.
  runtime::Config cfg;
  cfg.nodes = 2;
  cfg.heap_pages = 256;
  cfg.stack_region_pages = 128;
  cfg.sched.load_balancing = true;
  cfg.sched.lower_threshold = 1;
  cfg.sched.upper_threshold = 1;
  cfg.sched.lb_interval = ms(5);
  runtime::Runtime rt(cfg);

  auto moved = rt.alloc_scalar<std::uint32_t>();
  // Two processes so node 0 is "overloaded" and gives one away.
  for (int i = 0; i < 3; ++i) {
    rt.spawn_on(0, [i, moved, &rt]() mutable {
      const ProcId original = current_pid();
      for (int s = 0; s < 100; ++s) charge_compute(25);
      if (current_pid().home != original.home) {
        moved.set(moved.get() + 1);
        // Wait for a wakeup addressed to the ORIGINAL pid.
        proc::Scheduler* sched = proc::Scheduler::current_scheduler();
        const std::uint32_t epoch =
            proc::Scheduler::current_pcb()->block_epoch + 1;
        proc::Scheduler::block_current([&rt, original, epoch] {
          rt.scheduler(original.home)
              .simulator()
              .schedule_after(ms(3), [&rt, original, epoch] {
                rt.scheduler(original.home).resume(original, epoch);
              });
        });
        (void)sched;
      }
    });
  }
  rt.run();
  EXPECT_GE(rt.host_read<std::uint32_t>(moved.address()), 1u);
}

TEST(ProcTest, MigrationRespectsUpperThreshold) {
  runtime::Config cfg;
  cfg.nodes = 2;
  cfg.heap_pages = 256;
  cfg.stack_region_pages = 256;
  cfg.sched.load_balancing = true;
  cfg.sched.lower_threshold = 1;
  cfg.sched.upper_threshold = 100;  // never above: all requests refused
  cfg.sched.lb_interval = ms(5);
  runtime::Runtime rt(cfg);
  for (int i = 0; i < 6; ++i) {
    rt.spawn_on(0, [] {
      for (int s = 0; s < 50; ++s) charge_compute(25);
    });
  }
  rt.run();
  EXPECT_EQ(rt.stats().total(Counter::kMigrations), 0u);
}

}  // namespace
}  // namespace ivy::proc
