// Tests for the protocol mechanisms that keep the ownership token
// conserved and the system live under retransmission, duplication and
// degenerate hint states: two-phase ownership transfer (grant-ack),
// pending-grant resend, request cancellation, bounce recovery through
// broadcast owner location, and seed-swept stress with message drops.
#include <gtest/gtest.h>

#include <memory>

#include "ivy/ivy.h"
#include "ivy/svm/manager.h"

namespace ivy::svm {
namespace {

/// Proc-less harness (same shape as svm_test's, plus drop control).
class Harness {
 public:
  Harness(NodeId nodes, ManagerKind kind, std::size_t frames = 4096)
      : stats_(nodes), ring_(sim_, stats_, nodes) {
    SvmOptions opts;
    opts.geo = Geometry{256, 64};
    opts.manager = kind;
    opts.frames_per_node = frames;
    for (NodeId n = 0; n < nodes; ++n) {
      rpcs_.push_back(std::make_unique<rpc::RemoteOp>(sim_, ring_, stats_, n));
      rpcs_.back()->set_request_timeout(ms(40));
      rpcs_.back()->set_check_interval(ms(20));
      svms_.push_back(
          std::make_unique<Svm>(sim_, *rpcs_.back(), stats_, n, nodes, opts));
    }
  }

  Svm& at(NodeId n) { return *svms_[n]; }

  void ensure(NodeId node, PageId page, Access want) {
    bool done = false;
    at(node).request_access(page, want, [&] { done = true; });
    sim_.run_while([&] { return !done; });
    ASSERT_TRUE(done);
    sim_.run_until_idle();
  }

  void check_single_owner(PageId page) {
    int owners = 0;
    for (auto& svm : svms_) {
      owners += svm->table().at(page).owned ? 1 : 0;
    }
    ASSERT_EQ(owners, 1) << "page " << page;
  }

  sim::Simulator sim_;
  Stats stats_;
  net::Ring ring_;
  std::vector<std::unique_ptr<rpc::RemoteOp>> rpcs_;
  std::vector<std::unique_ptr<Svm>> svms_;
};

TEST(TwoPhaseTransfer, OldOwnerHoldsPageUntilAck) {
  Harness h(2, ManagerKind::kDynamicDistributed);
  // Stall the ack by dropping the first kGrantAck frame.
  int ack_drops = 1;
  h.ring_.set_drop_hook([&](const net::Message& m) {
    return m.kind == net::MsgKind::kGrantAck && !m.is_reply && ack_drops-- > 0;
  });
  bool done = false;
  h.at(1).request_access(3, Access::kWrite, [&] { done = true; });
  // Run until the requester completed but before retransmission closes
  // the handshake: node 0 must still be (pending) owner.
  h.sim_.run_while([&] { return !done; });
  EXPECT_TRUE(h.at(1).table().at(3).owned);
  EXPECT_TRUE(h.at(0).table().at(3).owned);  // token held until acked
  EXPECT_TRUE(h.at(0).table().at(3).fault_in_progress);
  // The ack retransmits; everything settles to exactly one owner.
  h.sim_.run_until_idle();
  EXPECT_FALSE(h.at(0).table().at(3).owned);
  h.check_single_owner(3);
}

TEST(TwoPhaseTransfer, DroppedGrantIsResentFromPendingState) {
  Harness h(2, ManagerKind::kDynamicDistributed);
  int grant_drops = 1;
  h.ring_.set_drop_hook([&](const net::Message& m) {
    return m.is_reply && m.kind == net::MsgKind::kWriteFault &&
           grant_drops-- > 0;
  });
  h.ensure(1, 5, Access::kWrite);
  h.check_single_owner(5);
  EXPECT_TRUE(h.at(1).table().at(5).owned);
  EXPECT_GE(h.stats_.total(Counter::kRetransmissions), 1u);
}

TEST(TwoPhaseTransfer, WriteDataSurvivesLossyHandshake) {
  Harness h(3, ManagerKind::kDynamicDistributed);
  const std::uint64_t magic = 0x5eed;
  h.ensure(1, 7, Access::kWrite);
  h.at(1).write_bytes(7 * 256, std::as_bytes(std::span(&magic, 1)));
  // Lossy period while ownership moves 1 -> 2.
  auto rng = std::make_shared<Rng>(42);
  h.ring_.set_drop_hook(
      [rng](const net::Message&) { return rng->chance(0.3); });
  h.ensure(2, 7, Access::kWrite);
  h.ring_.set_drop_hook(nullptr);
  h.sim_.run_until_idle();
  std::uint64_t out = 0;
  h.at(2).read_bytes(7 * 256, std::as_writable_bytes(std::span(&out, 1)));
  EXPECT_EQ(out, magic);
  h.check_single_owner(7);
}

TEST(TwoPhaseTransfer, BodylessGrantLostThenResent) {
  Harness h(2, ManagerKind::kDynamicDistributed);
  const std::uint64_t magic = 0xcafe;
  h.at(0).write_bytes(5 * 256, std::as_bytes(std::span(&magic, 1)));
  h.ensure(1, 5, Access::kRead);  // node 1 now holds a valid copy
  const auto transfers_before = h.stats_.total(Counter::kPageTransfers);
  const auto bodyless_before = h.stats_.total(Counter::kBodylessUpgrades);
  int grant_drops = 1;
  h.ring_.set_drop_hook([&](const net::Message& m) {
    return m.is_reply && m.kind == net::MsgKind::kWriteFault &&
           grant_drops-- > 0;
  });
  h.ensure(1, 5, Access::kWrite);
  h.ring_.set_drop_hook(nullptr);
  h.sim_.run_until_idle();
  h.check_single_owner(5);
  EXPECT_TRUE(h.at(1).table().at(5).owned);
  // The retransmitted request was answered from the pending-transfer
  // state, still bodyless: the upgrade decision is counted once and no
  // page body ever crossed the wire.
  EXPECT_GE(h.stats_.total(Counter::kRetransmissions), 1u);
  EXPECT_EQ(h.stats_.total(Counter::kPageTransfers), transfers_before);
  EXPECT_EQ(h.stats_.total(Counter::kBodylessUpgrades), bodyless_before + 1);
  std::uint64_t out = 0;
  h.at(1).read_bytes(5 * 256, std::as_writable_bytes(std::span(&out, 1)));
  EXPECT_EQ(out, magic);
}

TEST(TwoPhaseTransfer, BodylessGrantLostThenReofferedByPush) {
  Harness h(2, ManagerKind::kDynamicDistributed);
  const std::uint64_t magic = 0xbead;
  h.at(0).write_bytes(6 * 256, std::as_bytes(std::span(&magic, 1)));
  h.ensure(1, 6, Access::kRead);
  const auto transfers_before = h.stats_.total(Counter::kPageTransfers);
  // Drop the grant reply AND every retransmitted write-fault request, so
  // the requester can never re-ask: the only path left is the old
  // owner's kGrantPush re-offer, which must stay bodyless and be
  // absorbable against the requester's surviving read copy.
  bool black_hole = false;
  h.ring_.set_drop_hook([&](const net::Message& m) {
    if (m.kind != net::MsgKind::kWriteFault) return false;
    if (m.is_reply && !black_hole) {
      black_hole = true;  // the grant is lost...
      return true;
    }
    return black_hole && !m.is_reply;  // ...and so is every re-ask
  });
  bool done = false;
  h.at(1).request_access(6, Access::kWrite, [&] { done = true; });
  h.sim_.run_while([&] { return !done; });
  h.ring_.set_drop_hook(nullptr);
  h.sim_.run_until_idle();
  h.check_single_owner(6);
  EXPECT_TRUE(h.at(1).table().at(6).owned);
  EXPECT_GE(h.stats_.total(Counter::kGrantReoffers), 1u);
  EXPECT_EQ(h.stats_.total(Counter::kPageTransfers), transfers_before);
  std::uint64_t out = 0;
  h.at(1).read_bytes(6 * 256, std::as_writable_bytes(std::span(&out, 1)));
  EXPECT_EQ(out, magic);
}

class UpgradeRace : public testing::TestWithParam<ManagerKind> {};

TEST_P(UpgradeRace, CopyHolderUpgradeRacingInvalidationConverges) {
  Harness h(3, GetParam());
  h.ensure(1, 2, Access::kRead);
  h.ensure(2, 2, Access::kRead);
  // The owner's local upgrade invalidates both copies while node 1 is
  // itself write-faulting with has_copy set — its copy (and thus the
  // bodyless-grant precondition) may die mid-flight.  Whichever order
  // the ring delivers, both faults must complete and converge on one
  // owner with intact data.
  bool done0 = false;
  bool done1 = false;
  h.at(0).request_access(2, Access::kWrite, [&] { done0 = true; });
  h.at(1).request_access(2, Access::kWrite, [&] { done1 = true; });
  h.sim_.run_while([&] { return !(done0 && done1); });
  h.sim_.run_until_idle();
  h.check_single_owner(2);
  for (NodeId n = 0; n < 3; ++n) {
    const PageEntry& e = h.at(n).table().at(2);
    EXPECT_FALSE(e.fault_in_progress) << "node " << n;
    EXPECT_TRUE(e.deferred_requests.empty()) << "node " << n;
  }
  // Post-race the protocol still moves data correctly.
  h.ensure(2, 2, Access::kWrite);
  const std::uint64_t magic = 0x1234;
  h.at(2).write_bytes(2 * 256, std::as_bytes(std::span(&magic, 1)));
  h.ensure(0, 2, Access::kRead);
  std::uint64_t out = 0;
  h.at(0).read_bytes(2 * 256, std::as_writable_bytes(std::span(&out, 1)));
  EXPECT_EQ(out, magic);
}

INSTANTIATE_TEST_SUITE_P(
    AllManagers, UpgradeRace,
    testing::Values(ManagerKind::kCentralized, ManagerKind::kFixedDistributed,
                    ManagerKind::kDynamicDistributed, ManagerKind::kBroadcast),
    [](const testing::TestParamInfo<ManagerKind>& info) {
      return to_string(info.param);
    });

TEST(BounceRecovery, MutuallyStaleHintsResolveViaBroadcast) {
  Harness h(8, ManagerKind::kDynamicDistributed);
  // Make node 7 the owner of page 9, then poison hints: 1 and 3 point at
  // each other (the degenerate state two crossing write faults create).
  h.ensure(7, 9, Access::kWrite);
  h.at(1).table().at(9).prob_owner = 3;
  h.at(3).table().at(9).prob_owner = 1;
  bool done1 = false, done3 = false;
  h.at(1).request_access(9, Access::kWrite, [&] { done1 = true; });
  h.at(3).request_access(9, Access::kWrite, [&] { done3 = true; });
  h.sim_.run_while([&] { return !(done1 && done3); });
  EXPECT_TRUE(done1 && done3);
  h.sim_.run_until_idle();
  h.check_single_owner(9);
  EXPECT_GT(h.stats_.total(Counter::kBroadcasts), 0u);
}

TEST(RpcCancel, CancelledRequestFiresNoCallbackAndOrphansReply) {
  sim::Simulator sim;
  Stats stats(2);
  net::Ring ring(sim, stats, 2);
  rpc::RemoteOp a(sim, ring, stats, 0);
  rpc::RemoteOp b(sim, ring, stats, 1);
  b.set_handler(net::MsgKind::kAllocRequest, [&](net::Message&& msg) {
    b.reply_to(msg, 123, 8);
  });
  bool fired = false;
  bool orphaned = false;
  a.set_orphan_reply_handler(net::MsgKind::kAllocRequest,
                             [&](net::Message&&) { orphaned = true; });
  const auto id = a.request(1, net::MsgKind::kAllocRequest, 0, 8,
                            [&](net::Message&&) { fired = true; });
  a.cancel(id);
  sim.run_until_idle();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(orphaned);
  EXPECT_EQ(a.outstanding_requests(), 0u);
}

class ProtocolStress
    : public testing::TestWithParam<std::tuple<ManagerKind, int>> {};

TEST_P(ProtocolStress, RandomOpsWithDropsConvergeToSingleOwners) {
  const auto [kind, seed] = GetParam();
  Harness h(6, kind);
  auto rng = std::make_shared<Rng>(static_cast<std::uint64_t>(seed));
  h.ring_.set_drop_hook(
      [rng](const net::Message&) { return rng->chance(0.03); });

  Rng op_rng(static_cast<std::uint64_t>(seed) * 7919 + 1);
  int outstanding = 0;
  // Fire a randomized torrent of faults from every node over few pages
  // (maximum contention), interleaved with partial event processing.
  for (int step = 0; step < 400; ++step) {
    const auto node = static_cast<NodeId>(op_rng.below(6));
    const auto page = static_cast<PageId>(op_rng.below(5));
    const Access want =
        op_rng.chance(0.5) ? Access::kWrite : Access::kRead;
    if (!h.at(node).has_access(page, want) &&
        !h.at(node).table().at(page).fault_in_progress) {
      ++outstanding;
      h.at(node).request_access(page, want, [&outstanding] {
        --outstanding;
      });
    }
    for (int e = 0; e < 40 && h.sim_.step(); ++e) {
    }
  }
  h.ring_.set_drop_hook(nullptr);  // let the tail drain losslessly
  h.sim_.run_until_idle();
  EXPECT_EQ(outstanding, 0);
  for (PageId p = 0; p < 5; ++p) {
    h.check_single_owner(p);
    for (NodeId n = 0; n < 6; ++n) {
      const PageEntry& e = h.at(n).table().at(p);
      EXPECT_FALSE(e.fault_in_progress) << "node " << n << " page " << p;
      EXPECT_TRUE(e.deferred_requests.empty());
      EXPECT_TRUE(e.local_waiters.empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ProtocolStress,
    testing::Combine(testing::Values(ManagerKind::kCentralized,
                                     ManagerKind::kFixedDistributed,
                                     ManagerKind::kDynamicDistributed,
                                     ManagerKind::kBroadcast),
                     testing::Range(1, 6)),
    [](const testing::TestParamInfo<std::tuple<ManagerKind, int>>& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace ivy::svm

namespace ivy::svm {
namespace {

// --- distribution of copy sets (Li & Hudak's refinement) --------------------

class DistributedCopysets : public testing::Test {
 protected:
  static SvmOptions options() {
    SvmOptions opts;
    opts.geo = Geometry{256, 64};
    opts.manager = ManagerKind::kDynamicDistributed;
    opts.distributed_copysets = true;
    return opts;
  }
};

TEST_F(DistributedCopysets, CopyHolderServesReadsAndFormsATree) {
  sim::Simulator sim;
  Stats stats(4);
  net::Ring ring(sim, stats, 4);
  std::vector<std::unique_ptr<rpc::RemoteOp>> rpcs;
  std::vector<std::unique_ptr<Svm>> svms;
  for (NodeId n = 0; n < 4; ++n) {
    rpcs.push_back(std::make_unique<rpc::RemoteOp>(sim, ring, stats, n));
    svms.push_back(
        std::make_unique<Svm>(sim, *rpcs.back(), stats, n, 4, options()));
  }
  auto ensure = [&](NodeId node, PageId page, Access want) {
    bool done = false;
    svms[node]->request_access(page, want, [&] { done = true; });
    sim.run_while([&] { return !done; });
    ASSERT_TRUE(done);
    sim.run_until_idle();
  };
  const std::uint64_t magic = 0xfeed;
  svms[0]->write_bytes(0, std::as_bytes(std::span(&magic, 1)));

  // Node 1 reads from the owner; nodes 2 and 3 then fault with their
  // probOwner pointing at node 1 (a copy holder), which must serve them
  // itself and record them as its children.
  ensure(1, 0, Access::kRead);
  svms[2]->table().at(0).prob_owner = 1;
  svms[3]->table().at(0).prob_owner = 1;
  ensure(2, 0, Access::kRead);
  ensure(3, 0, Access::kRead);
  std::uint64_t out = 0;
  svms[3]->read_bytes(0, std::as_writable_bytes(std::span(&out, 1)));
  EXPECT_EQ(out, magic);
  // The tree: owner 0 knows 1; node 1 knows 2 and 3; the owner does NOT
  // know the grandchildren.
  EXPECT_TRUE(svms[0]->table().at(0).copyset.contains(1));
  EXPECT_FALSE(svms[0]->table().at(0).copyset.contains(2));
  EXPECT_TRUE(svms[1]->table().at(0).copyset.contains(2));
  EXPECT_TRUE(svms[1]->table().at(0).copyset.contains(3));

  // A write by the owner must invalidate the WHOLE tree, recursively.
  ensure(0, 0, Access::kWrite);
  for (NodeId n = 1; n < 4; ++n) {
    EXPECT_EQ(svms[n]->table().at(0).access, Access::kNil) << "node " << n;
  }
}

TEST_F(DistributedCopysets, AppsStayCorrectWithTreeInvalidation) {
  Config cfg;
  cfg.nodes = 6;
  cfg.heap_pages = 1024;
  cfg.stack_region_pages = 64;
  cfg.distributed_copysets = true;
  Runtime rt(cfg);
  auto value = rt.alloc_scalar<std::uint64_t>();
  auto bar = rt.create_barrier(6);
  // Rounds of write-then-fan-out reads: readers may be served by other
  // readers; the next write must still reach everyone.
  for (NodeId n = 0; n < 6; ++n) {
    rt.spawn_on(n, [=]() mutable {
      for (std::uint64_t round = 0; round < 10; ++round) {
        if (round % 6 == n) value.set(round * 100 + n);
        bar.arrive(2 * static_cast<std::int64_t>(round));
        const std::uint64_t got = value.get();
        EXPECT_EQ(got, round * 100 + round % 6);
        bar.arrive(2 * static_cast<std::int64_t>(round) + 1);
      }
    });
  }
  rt.run();
  rt.check_coherence_invariants();
}

}  // namespace
}  // namespace ivy::svm
