// ivy::trace — tracer ring buffer, Chrome trace / metrics exporters and
// the hot-page report.  The exporter tests parse the emitted JSON with a
// small in-file recursive-descent parser (no external dependency) and
// cross-check it against the live Stats registry.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "ivy/apps/jacobi.h"
#include "ivy/trace/chrome_trace.h"
#include "ivy/trace/hot_pages.h"
#include "ivy/trace/metrics.h"
#include "ivy/trace/trace.h"

namespace ivy::trace {
namespace {

// --- minimal JSON parser ---------------------------------------------------

struct Json {
  enum Kind { kNull, kBool, kNum, kStr, kArr, kObj };
  Kind kind = kNull;
  bool boolean = false;
  std::string num;  // raw numeric token, exact for 64-bit integers
  std::string str;
  std::vector<Json> arr;
  std::map<std::string, Json> obj;

  [[nodiscard]] std::uint64_t as_u64() const {
    if (kind != kNum) throw std::runtime_error("not a number");
    return std::strtoull(num.c_str(), nullptr, 10);
  }
  [[nodiscard]] const Json& at(const std::string& key) const {
    if (kind != kObj) throw std::runtime_error("not an object");
    auto it = obj.find(key);
    if (it == obj.end()) throw std::runtime_error("missing key: " + key);
    return it->second;
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return kind == kObj && obj.count(key) != 0;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (pos_ != s_.size()) throw std::runtime_error("trailing garbage");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\n' ||
                                s_[pos_] == '\t' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  char peek() {
    if (pos_ >= s_.size()) throw std::runtime_error("unexpected end");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("expected '") + c + "' at " +
                               std::to_string(pos_));
    }
    ++pos_;
  }

  Json value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      Json v;
      v.kind = Json::kStr;
      v.str = string();
      return v;
    }
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') {
      literal("null");
      return {};
    }
    return number();
  }

  Json object() {
    Json v;
    v.kind = Json::kObj;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.obj.emplace(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Json array() {
    Json v;
    v.kind = Json::kArr;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.arr.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (peek() != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        c = peek();
        ++pos_;
        switch (c) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          default: out += c; break;  // \" \\ \/ — enough for our exporters
        }
      } else {
        out += c;
      }
    }
    ++pos_;
    return out;
  }

  Json boolean() {
    Json v;
    v.kind = Json::kBool;
    if (peek() == 't') {
      literal("true");
      v.boolean = true;
    } else {
      literal("false");
    }
    return v;
  }

  Json number() {
    Json v;
    v.kind = Json::kNum;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      v.num += s_[pos_++];
    }
    if (v.num.empty()) throw std::runtime_error("bad number");
    return v;
  }

  void literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (pos_ >= s_.size() || s_[pos_] != *p) {
        throw std::runtime_error(std::string("expected ") + word);
      }
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

Json parse_json(const std::string& text) { return JsonParser(text).parse(); }

// --- tracer unit tests -----------------------------------------------------

TEST(Tracer, DisabledRecordsNothingAndAllocatesNothing) {
  Tracer t;
  EXPECT_FALSE(t.enabled());
  EXPECT_EQ(t.capacity(), 0u);
  t.record(0, EventKind::kReadFault, 7);
  t.record_span(1, EventKind::kMsgSend, 10, 5);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.recorded(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(Tracer, RingBufferOverwritesOldestFirst) {
  Tracer t;
  t.enable(8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    t.record_span(0, EventKind::kMsgSend, static_cast<Time>(i), 1, i);
  }
  EXPECT_EQ(t.capacity(), 8u);
  EXPECT_EQ(t.size(), 8u);
  EXPECT_EQ(t.recorded(), 20u);
  EXPECT_EQ(t.dropped(), 12u);

  // Retained window is the last 8 records, visited oldest first.
  std::vector<std::uint64_t> seen;
  t.for_each([&](const Event& e) { seen.push_back(e.arg0); });
  ASSERT_EQ(seen.size(), 8u);
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], 12 + i);
  }
}

TEST(Tracer, ReenableResetsBuffer) {
  Tracer t;
  t.enable(4);
  t.record(0, EventKind::kReadFault, 1);
  t.enable(16);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.capacity(), 16u);
  t.disable();
  EXPECT_FALSE(t.enabled());
  EXPECT_EQ(t.capacity(), 0u);
}

TEST(Tracer, UsesInjectedClockForInstantEvents) {
  Tracer t;
  t.enable(4);
  Time now = 1234;
  t.set_clock([&now] { return now; });
  t.record(2, EventKind::kEcAdvance, 9);
  now = 5678;
  t.record(2, EventKind::kEcAdvance, 9);
  std::vector<Time> stamps;
  t.for_each([&](const Event& e) { stamps.push_back(e.ts); });
  ASSERT_EQ(stamps.size(), 2u);
  EXPECT_EQ(stamps[0], 1234);
  EXPECT_EQ(stamps[1], 5678);
}

TEST(TraceNames, EveryEventKindHasNameAndCategory) {
  for (std::size_t k = 0; k < static_cast<std::size_t>(EventKind::kCount);
       ++k) {
    const auto kind = static_cast<EventKind>(k);
    EXPECT_GT(std::string(to_string(kind)).size(), 0u);
    EXPECT_LT(static_cast<std::size_t>(category_of(kind)),
              static_cast<std::size_t>(Category::kCount));
  }
}

// --- runtime integration ---------------------------------------------------

Config traced_config(svm::ManagerKind manager) {
  Config cfg;
  cfg.nodes = 4;
  cfg.manager = manager;
  cfg.heap_pages = 4096;
  cfg.stack_region_pages = 64;
  cfg.trace_enabled = true;
  cfg.trace_capacity = 1 << 16;
  cfg.name = "trace_test";
  return cfg;
}

apps::RunOutcome run_small_jacobi(Runtime& rt) {
  apps::JacobiParams p;
  p.n = 64;
  p.iterations = 4;
  p.mark_epochs = true;
  return apps::run_jacobi(rt, p);
}

TEST(TracerIntegration, DisabledRuntimeAllocatesNoEventBuffer) {
  Config cfg = traced_config(svm::ManagerKind::kDynamicDistributed);
  cfg.trace_enabled = false;
  Runtime rt(cfg);
  const apps::RunOutcome out = run_small_jacobi(rt);
  EXPECT_TRUE(out.verified) << out.detail;
  EXPECT_EQ(rt.stats().tracer(), nullptr);
  EXPECT_FALSE(rt.tracer().enabled());
  EXPECT_EQ(rt.tracer().capacity(), 0u);
  EXPECT_EQ(rt.tracer().recorded(), 0u);
}

TEST(TracerIntegration, TracedRunIsDeterministicAndStampsVirtualTime) {
  auto run = [] {
    Runtime rt(traced_config(svm::ManagerKind::kDynamicDistributed));
    (void)run_small_jacobi(rt);
    std::vector<Event> events;
    rt.tracer().for_each([&](const Event& e) { events.push_back(e); });
    return events;
  };
  const std::vector<Event> a = run();
  const std::vector<Event> b = run();
  ASSERT_GT(a.size(), 0u);
  ASSERT_EQ(a.size(), b.size());
  bool saw_span = false;
  bool saw_nonzero_ts = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ts, b[i].ts);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].arg0, b[i].arg0);
    EXPECT_GE(a[i].ts, 0);
    EXPECT_GE(a[i].dur, 0);
    EXPECT_LT(a[i].node, 4u);
    saw_span = saw_span || a[i].dur > 0;
    saw_nonzero_ts = saw_nonzero_ts || a[i].ts > 0;
  }
  EXPECT_TRUE(saw_span);        // latency spans carry real durations
  EXPECT_TRUE(saw_nonzero_ts);  // stamps come from the virtual clock
}

TEST(ChromeTrace, ExportParsesAndContainsCoherenceEvents) {
  Runtime rt(traced_config(svm::ManagerKind::kFixedDistributed));
  const apps::RunOutcome out = run_small_jacobi(rt);
  ASSERT_TRUE(out.verified) << out.detail;

  std::ostringstream os;
  write_chrome_trace(os, rt.tracer(), "trace_test");
  const Json root = parse_json(os.str());

  const Json& events = root.at("traceEvents");
  ASSERT_EQ(events.kind, Json::kArr);
  ASSERT_GT(events.arr.size(), 0u);

  std::map<std::string, std::size_t> by_name;
  for (const Json& e : events.arr) {
    const std::string& ph = e.at("ph").str;
    ASSERT_TRUE(ph == "X" || ph == "i" || ph == "M") << ph;
    if (ph != "M") {
      EXPECT_TRUE(e.has("ts"));
      EXPECT_LT(e.at("pid").as_u64(), 4u);  // pid = node id
    }
    ++by_name[e.at("name").str];
  }
  // The protocol events the issue names: faults, invalidations and
  // ownership transfers, all present in a 4-node Jacobi run.
  EXPECT_GT(by_name["read_fault"], 0u);
  EXPECT_GT(by_name["write_fault"], 0u);
  EXPECT_GT(by_name["invalidate_round"] + by_name["invalidated"], 0u);
  EXPECT_GT(by_name["ownership_transfer"] + by_name["ownership_gained"], 0u);
  EXPECT_GT(by_name["process_name"], 0u);  // Perfetto process metadata
}

class MetricsOnManagers : public testing::TestWithParam<svm::ManagerKind> {};

TEST_P(MetricsOnManagers, JsonRoundTripsCounterValues) {
  Runtime rt(traced_config(GetParam()));
  const apps::RunOutcome out = run_small_jacobi(rt);
  ASSERT_TRUE(out.verified) << out.detail;

  std::ostringstream os;
  MetricsInfo info;
  info.name = "trace_test";
  info.elapsed = out.elapsed;
  write_metrics_json(os, rt.stats(), &rt.tracer(), info);
  const Json root = parse_json(os.str());

  EXPECT_EQ(root.at("name").str, "trace_test");
  EXPECT_EQ(root.at("nodes").as_u64(), 4u);
  EXPECT_EQ(root.at("elapsed_ns").as_u64(),
            static_cast<std::uint64_t>(out.elapsed));

  // Every counter round-trips exactly, totals and per node.
  const Json& totals = root.at("counters_total");
  const Json& per_node = root.at("counters_per_node");
  ASSERT_EQ(per_node.arr.size(), 4u);
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    const auto c = static_cast<Counter>(i);
    const std::string name = counter_names()[i];
    EXPECT_EQ(totals.at(name).as_u64(), rt.stats().total(c)) << name;
    for (NodeId n = 0; n < 4; ++n) {
      EXPECT_EQ(per_node.arr[n].at(name).as_u64(), rt.stats().node_total(n, c))
          << name << " node " << n;
    }
  }

  // One epoch delta per Jacobi iteration, summing back to the totals.
  const Json& epochs = root.at("epochs");
  ASSERT_EQ(epochs.arr.size(), rt.stats().epoch_count());
  ASSERT_GE(epochs.arr.size(), 4u);
  std::uint64_t fault_sum = 0;
  for (const Json& e : epochs.arr) {
    if (e.has("read_faults")) fault_sum += e.at("read_faults").as_u64();
  }
  EXPECT_LE(fault_sum, rt.stats().total(Counter::kReadFaults));

  // Histograms: counts and sums round-trip; fault resolution always fires.
  const Json& hists = root.at("histograms");
  for (std::size_t i = 0; i < kHistCount; ++i) {
    const Histogram h = rt.stats().hist(static_cast<Hist>(i));
    const Json& jh = hists.at(hist_names()[i]);
    EXPECT_EQ(jh.at("count").as_u64(), h.count());
    EXPECT_EQ(jh.at("sum").as_u64(), h.sum());
  }
  EXPECT_GT(hists.at("fault_resolution_ns").at("count").as_u64(), 0u);

  // Trace meta + hot pages are present because the tracer was on.
  EXPECT_EQ(root.at("trace").at("recorded").as_u64(), rt.tracer().recorded());
  EXPECT_GT(root.at("hot_pages").arr.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Managers, MetricsOnManagers,
    testing::Values(svm::ManagerKind::kCentralized,
                    svm::ManagerKind::kFixedDistributed,
                    svm::ManagerKind::kDynamicDistributed),
    [](const testing::TestParamInfo<svm::ManagerKind>& info) {
      return std::string(svm::to_string(info.param));
    });

TEST(Metrics, CsvHasOneRowPerCounter) {
  Runtime rt(traced_config(svm::ManagerKind::kDynamicDistributed));
  (void)run_small_jacobi(rt);
  std::ostringstream os;
  write_metrics_csv(os, rt.stats());
  std::istringstream is(os.str());
  std::string line;
  ASSERT_TRUE(std::getline(is, line));
  EXPECT_EQ(line, "counter,total,node0,node1,node2,node3");
  std::size_t rows = 0;
  while (std::getline(is, line)) ++rows;
  EXPECT_EQ(rows, kCounterCount);
}

// --- hot pages -------------------------------------------------------------

TEST(HotPages, RanksByFaultsThenInvalidations) {
  Tracer t;
  t.enable(64);
  // Page 7: three faults from two nodes, one invalidation.
  t.record_span(0, EventKind::kReadFault, 0, 5, 7);
  t.record_span(1, EventKind::kWriteFault, 10, 5, 7);
  t.record_span(0, EventKind::kWriteFault, 20, 5, 7);
  t.record(1, EventKind::kInvalidateRecv, 7, 0);
  // Page 3: one fault.
  t.record_span(2, EventKind::kReadFault, 30, 5, 3);
  // Page 9: ownership move only — no faults, ranks last.
  t.record(3, EventKind::kOwnershipGained, 9, 1);

  const std::vector<HotPage> ranked = hot_pages(t, 10);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].page, 7u);
  EXPECT_EQ(ranked[0].faults, 3u);
  EXPECT_EQ(ranked[0].invalidations, 1u);
  EXPECT_EQ(ranked[0].faulting_nodes.count(), 2u);
  EXPECT_EQ(ranked[1].page, 3u);
  EXPECT_EQ(ranked[2].page, 9u);
  EXPECT_EQ(ranked[2].transfers, 1u);

  const std::string report = hot_page_report(t, 2);
  EXPECT_NE(report.find("page"), std::string::npos);
  EXPECT_NE(report.find("7"), std::string::npos);

  Tracer empty;
  empty.enable(4);
  EXPECT_EQ(hot_page_report(empty, 5), "");
}

}  // namespace
}  // namespace ivy::trace
