// End-to-end smoke tests: the full stack (ring → rpc → svm → proc → sync
// → alloc → runtime) on small scenarios.  Detailed per-module suites live
// in the sibling files; this file is the canary.
#include <gtest/gtest.h>

#include "ivy/ivy.h"

namespace ivy {
namespace {

Config small_config(NodeId nodes,
                    svm::ManagerKind mgr = svm::ManagerKind::kDynamicDistributed) {
  Config cfg;
  cfg.nodes = nodes;
  cfg.heap_pages = 256;
  cfg.stack_region_pages = 64;
  cfg.manager = mgr;
  return cfg;
}

TEST(Smoke, SingleNodeRunsAProcess) {
  Runtime rt(small_config(1));
  auto flag = rt.alloc_scalar<int>();
  rt.spawn([=] { flag.set(42); });
  const Time elapsed = rt.run();
  EXPECT_GT(elapsed, 0);
  EXPECT_EQ(rt.host_read<int>(flag.address()), 42);
}

TEST(Smoke, TwoNodesShareAnArray) {
  Runtime rt(small_config(2));
  auto data = rt.alloc_array<int>(1000);
  auto done = rt.create_barrier(2);

  rt.spawn_on(0, [=]() mutable {
    for (std::size_t i = 0; i < 500; ++i) data[i] = static_cast<int>(i);
    done.arrive(0);
  });
  rt.spawn_on(1, [=]() mutable {
    for (std::size_t i = 500; i < 1000; ++i) data[i] = static_cast<int>(i);
    done.arrive(0);
  });
  rt.run();
  for (std::size_t i = 0; i < 1000; ++i) {
    ASSERT_EQ(rt.host_read(data, i), static_cast<int>(i)) << "index " << i;
  }
  rt.check_coherence_invariants();
  EXPECT_GT(rt.stats().total(Counter::kWriteFaults), 0u);
}

TEST(Smoke, ReaderSeesWriterThroughBarrier) {
  for (auto mgr : {svm::ManagerKind::kCentralized,
                   svm::ManagerKind::kFixedDistributed,
                   svm::ManagerKind::kDynamicDistributed,
                   svm::ManagerKind::kBroadcast}) {
    Runtime rt(small_config(3, mgr));
    auto value = rt.alloc_scalar<double>();
    auto sum = rt.alloc_scalar<double>();
    auto bar = rt.create_barrier(3);

    rt.spawn_on(0, [=]() mutable {
      value.set(2.5);
      bar.arrive(0);
      bar.arrive(1);
    });
    auto reader = [=]() mutable {
      bar.arrive(0);
      const double v = value.get();
      EXPECT_DOUBLE_EQ(v, 2.5);
      bar.arrive(1);
    };
    rt.spawn_on(1, reader);
    rt.spawn_on(2, reader);
    rt.run();
    rt.check_coherence_invariants();
    (void)sum;
  }
}

TEST(Smoke, PingPongWritesAreCoherent) {
  Runtime rt(small_config(2));
  auto counter = rt.alloc_scalar<int>();
  auto bar = rt.create_barrier(2);
  constexpr int kRounds = 20;

  auto worker = [=](int parity) {
    return [=]() mutable {
      for (int r = 0; r < kRounds; ++r) {
        if (r % 2 == parity) counter.set(counter.get() + 1);
        bar.arrive(r);
      }
    };
  };
  rt.spawn_on(0, worker(0));
  rt.spawn_on(1, worker(1));
  rt.run();
  EXPECT_EQ(rt.host_read<int>(counter.address()), kRounds);
  rt.check_coherence_invariants();
}

TEST(Smoke, InProcessAllocation) {
  Runtime rt(small_config(2));
  auto out = rt.alloc_array<SvmAddr>(2);
  auto bar = rt.create_barrier(2);
  for (NodeId n = 0; n < 2; ++n) {
    rt.spawn_on(n, [=, &rt]() mutable {
      SvmAddr a = rt.heap(self_node()).allocate(4096);
      ASSERT_NE(a, kNullSvmAddr);
      out[n] = a;
      bar.arrive(0);
    });
  }
  rt.run();
  const auto a0 = rt.host_read(out, 0);
  const auto a1 = rt.host_read(out, 1);
  EXPECT_NE(a0, a1);
  EXPECT_NE(a0, kNullSvmAddr);
  EXPECT_NE(a1, kNullSvmAddr);
}

TEST(Smoke, DeterministicEndTime) {
  auto run_once = [] {
    Runtime rt(small_config(4));
    auto data = rt.alloc_array<int>(4096);
    auto bar = rt.create_barrier(4);
    for (NodeId n = 0; n < 4; ++n) {
      rt.spawn_on(n, [=]() mutable {
        for (std::size_t i = n; i < data.size(); i += 4) {
          data[i] = static_cast<int>(i * 3);
        }
        bar.arrive(0);
        long sum = 0;
        for (std::size_t i = 0; i < data.size(); i += 7) sum += data[i];
        (void)sum;
      });
    }
    rt.run();
    return rt.now();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace ivy
