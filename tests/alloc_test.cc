// Tests for shared-memory allocation: the first-fit free list (unit +
// randomized property), the one-level centralized allocator, and the
// two-level chunk-caching allocator.
#include <gtest/gtest.h>

#include "ivy/alloc/first_fit.h"
#include "ivy/ivy.h"

namespace ivy::alloc {
namespace {

constexpr std::size_t kPage = 256;

TEST(FirstFit, AllocationsArePageAlignedAndRounded) {
  FirstFit ff(0, 64 * kPage, kPage);
  const SvmAddr a = ff.allocate(1);
  const SvmAddr b = ff.allocate(kPage + 1);
  EXPECT_EQ(a % kPage, 0u);
  EXPECT_EQ(b % kPage, 0u);
  EXPECT_EQ(b - a, kPage);               // 1 byte took a whole page
  EXPECT_EQ(ff.allocate(1) - b, 2 * kPage);  // previous took two pages
  ff.check_integrity();
}

TEST(FirstFit, ExhaustionReturnsNull) {
  FirstFit ff(0, 4 * kPage, kPage);
  EXPECT_NE(ff.allocate(4 * kPage), kNullSvmAddr);
  EXPECT_EQ(ff.allocate(1), kNullSvmAddr);
}

TEST(FirstFit, FreeCoalescesNeighbours) {
  FirstFit ff(0, 8 * kPage, kPage);
  const SvmAddr a = ff.allocate(2 * kPage);
  const SvmAddr b = ff.allocate(2 * kPage);
  const SvmAddr c = ff.allocate(2 * kPage);
  (void)c;
  ff.free(a);
  ff.free(b);  // merges with a's chunk
  ff.check_integrity();
  // The merged 4-page hole satisfies a 4-page request at `a`.
  EXPECT_EQ(ff.allocate(4 * kPage), a);
}

TEST(FirstFit, FirstFitPicksLowestHole) {
  FirstFit ff(0, 16 * kPage, kPage);
  const SvmAddr a = ff.allocate(2 * kPage);
  (void)ff.allocate(kPage);  // plug
  const SvmAddr c = ff.allocate(4 * kPage);
  (void)ff.allocate(kPage);  // plug
  ff.free(a);
  ff.free(c);
  // A 2-page request fits the first (lower) hole even though the second
  // is larger.
  EXPECT_EQ(ff.allocate(2 * kPage), a);
}

TEST(FirstFit, RandomizedAllocFreeKeepsIntegrity) {
  Rng rng(0xa110c);
  FirstFit ff(0, 512 * kPage, kPage);
  std::vector<SvmAddr> live;
  for (int step = 0; step < 3000; ++step) {
    if (live.empty() || rng.chance(0.55)) {
      const std::size_t bytes = 1 + rng.below(6 * kPage);
      const SvmAddr a = ff.allocate(bytes);
      if (a != kNullSvmAddr) {
        // No overlap with anything live (page-granular check).
        live.push_back(a);
      }
    } else {
      const std::size_t idx = rng.below(live.size());
      ff.free(live[idx]);
      live[idx] = live.back();
      live.pop_back();
    }
    if (step % 111 == 0) ff.check_integrity();
  }
  for (SvmAddr a : live) ff.free(a);
  ff.check_integrity();
  EXPECT_EQ(ff.bytes_free(), ff.bytes_total());
  EXPECT_EQ(ff.live_allocations(), 0u);
  EXPECT_EQ(ff.free_chunks(), 1u);  // fully coalesced again
}

runtime::Config alloc_config(NodeId nodes, bool two_level) {
  runtime::Config cfg;
  cfg.nodes = nodes;
  cfg.heap_pages = 2048;
  cfg.stack_region_pages = 64;
  cfg.two_level_alloc = two_level;
  cfg.chunk_bytes = 16 * 1024;
  return cfg;
}

TEST(CentralAllocatorTest, RemoteAllocationRoundTrips) {
  runtime::Runtime rt(alloc_config(2, false));
  SvmAddr got = kNullSvmAddr;
  rt.spawn_on(1, [&rt, &got] {
    got = rt.heap(1).allocate(4096);
    // The allocation is immediately usable shared memory.
    proc::svm_write<std::uint64_t>(got, 123);
  });
  rt.run();
  ASSERT_NE(got, kNullSvmAddr);
  EXPECT_EQ(rt.host_read<std::uint64_t>(got), 123u);
  EXPECT_EQ(rt.stats().total(Counter::kAllocRemoteCalls), 1u);
}

TEST(CentralAllocatorTest, ConcurrentAllocationsAreDisjoint) {
  runtime::Runtime rt(alloc_config(4, false));
  auto out = rt.alloc_array<SvmAddr>(16);
  for (NodeId n = 0; n < 4; ++n) {
    rt.spawn_on(n, [=, &rt]() mutable {
      for (int i = 0; i < 4; ++i) {
        out[n * 4 + static_cast<std::size_t>(i)] =
            rt.heap(self_node()).allocate(1024);
      }
    });
  }
  rt.run();
  std::set<SvmAddr> unique;
  for (std::size_t i = 0; i < 16; ++i) {
    const SvmAddr a = rt.host_read(out, i);
    ASSERT_NE(a, kNullSvmAddr);
    unique.insert(a);
  }
  EXPECT_EQ(unique.size(), 16u);
}

TEST(CentralAllocatorTest, FreeMakesMemoryReusable) {
  runtime::Runtime rt(alloc_config(2, false));
  bool ok = false;
  rt.spawn_on(1, [&rt, &ok] {
    alloc::SharedHeap& heap = rt.heap(1);
    std::vector<SvmAddr> addrs;
    // The heap minus bootstrap allocations, consumed twice: only works
    // if deallocate actually returns memory.
    for (int round = 0; round < 2; ++round) {
      for (int i = 0; i < 400; ++i) {
        const SvmAddr a = heap.allocate(1024);
        if (a == kNullSvmAddr) break;
        addrs.push_back(a);
      }
      for (SvmAddr a : addrs) heap.deallocate(a);
      addrs.clear();
    }
    ok = true;
  });
  rt.run();
  EXPECT_TRUE(ok);
}

TEST(TwoLevelAllocatorTest, RefillsAmortizeRemoteCalls) {
  runtime::Runtime rt(alloc_config(2, true));
  rt.spawn_on(1, [&rt] {
    alloc::SharedHeap& heap = rt.heap(1);
    SvmAddr prev = kNullSvmAddr;
    for (int i = 0; i < 20; ++i) {
      const SvmAddr a = heap.allocate(512);
      ASSERT_NE(a, kNullSvmAddr);
      ASSERT_NE(a, prev);
      prev = a;
    }
  });
  rt.run();
  // 20 allocations of 512 B (page-rounded to 1 KiB) from 16 KiB chunks:
  // exactly 2 refills, not 20 remote calls.
  EXPECT_EQ(rt.stats().total(Counter::kAllocRemoteCalls), 2u);
  EXPECT_EQ(rt.stats().total(Counter::kAllocCalls), 20u + 2u);
}

TEST(TwoLevelAllocatorTest, OversizeBypassesTheCache) {
  runtime::Runtime rt(alloc_config(2, true));
  rt.spawn_on(1, [&rt] {
    alloc::SharedHeap& heap = rt.heap(1);
    const SvmAddr big = heap.allocate(64 * 1024);  // >> chunk/2
    ASSERT_NE(big, kNullSvmAddr);
    proc::svm_write<std::uint64_t>(big, 9);
    heap.deallocate(big);
  });
  rt.run();
  EXPECT_GE(rt.stats().total(Counter::kAllocRemoteCalls), 1u);
}

TEST(TwoLevelAllocatorTest, LocalFreeRecyclesWithinChunk) {
  runtime::Runtime rt(alloc_config(2, true));
  bool reused = false;
  rt.spawn_on(1, [&rt, &reused] {
    alloc::SharedHeap& heap = rt.heap(1);
    const SvmAddr a = heap.allocate(1024);
    heap.deallocate(a);
    const SvmAddr b = heap.allocate(1024);
    reused = a == b;
    heap.deallocate(b);
  });
  rt.run();
  EXPECT_TRUE(reused);
}

}  // namespace
}  // namespace ivy::alloc
