// Unit tests for the discrete-event engine and fibers.
#include <gtest/gtest.h>

#include "ivy/sim/cost_model.h"
#include "ivy/sim/fiber.h"
#include "ivy/sim/simulator.h"

namespace ivy::sim {
namespace {

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, TiesBreakInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  sim.run_until_idle();
  for (int i = 0; i < 10; ++i) ASSERT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, EventsMayScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    if (++fired < 5) sim.schedule_after(7, chain);
  };
  sim.schedule_at(0, chain);
  sim.run_until_idle();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.now(), 4 * 7);
}

TEST(Simulator, RunWhileStopsAtPredicate) {
  Simulator sim;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_at(i, [&] { ++fired; });
  }
  sim.run_while([&] { return fired < 4; });
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(sim.now(), 4);
  sim.run_until_idle();
  EXPECT_EQ(fired, 10);
}

TEST(Simulator, StepReturnsFalseWhenIdle) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_at(1, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.events_executed(), 1u);
}

TEST(CostModel, TransmitTimeScalesWithBytes) {
  CostModel costs;
  const Time small = costs.transmit_time(100);
  const Time large = costs.transmit_time(1100);
  EXPECT_GT(small, 0);
  // 1000 extra bytes at 1.5 MB/s is ~667 microseconds.
  EXPECT_NEAR(static_cast<double>(large - small), 1000.0 / 1.5e6 * 1e9,
              1e3);
}

TEST(Fiber, RunsToCompletion) {
  int state = 0;
  Fiber fiber([&] { state = 1; });
  EXPECT_EQ(fiber.resume(), YieldReason::kFinished);
  EXPECT_EQ(state, 1);
  EXPECT_TRUE(fiber.finished());
}

TEST(Fiber, YieldAndResumeRoundTrips) {
  std::vector<int> trace;
  Fiber fiber([&] {
    trace.push_back(1);
    Fiber::yield(YieldReason::kQuantum);
    trace.push_back(2);
    Fiber::yield(YieldReason::kBlocked);
    trace.push_back(3);
  });
  EXPECT_EQ(fiber.resume(), YieldReason::kQuantum);
  trace.push_back(-1);
  EXPECT_EQ(fiber.resume(), YieldReason::kBlocked);
  trace.push_back(-2);
  EXPECT_EQ(fiber.resume(), YieldReason::kFinished);
  EXPECT_EQ(trace, (std::vector<int>{1, -1, 2, -2, 3}));
}

TEST(Fiber, CurrentIsSetOnlyInsideFiber) {
  EXPECT_EQ(Fiber::current(), nullptr);
  Fiber* observed = nullptr;
  Fiber fiber([&] { observed = Fiber::current(); });
  fiber.resume();
  EXPECT_EQ(observed, &fiber);
  EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(Fiber, ChargeAccumulatesUntilTaken) {
  Fiber fiber([] {
    Fiber::current()->charge(100);
    Fiber::current()->charge(50);
    Fiber::yield(YieldReason::kQuantum);
    Fiber::current()->charge(7);
  });
  fiber.resume();
  EXPECT_EQ(fiber.take_charge(), 150);
  EXPECT_EQ(fiber.take_charge(), 0);
  fiber.resume();
  EXPECT_EQ(fiber.take_charge(), 7);
}

TEST(Fiber, ManyFibersInterleave) {
  constexpr int kFibers = 50;
  std::vector<std::unique_ptr<Fiber>> fibers;
  std::vector<int> progress(kFibers, 0);
  for (int i = 0; i < kFibers; ++i) {
    fibers.push_back(std::make_unique<Fiber>([&progress, i] {
      for (int step = 0; step < 3; ++step) {
        ++progress[static_cast<size_t>(i)];
        Fiber::yield(YieldReason::kQuantum);
      }
    }));
  }
  bool any_live = true;
  while (any_live) {
    any_live = false;
    for (auto& f : fibers) {
      if (!f->finished()) {
        f->resume();
        any_live = any_live || !f->finished();
      }
    }
  }
  for (int p : progress) EXPECT_EQ(p, 3);
}

TEST(Fiber, DeepStackUsage) {
  // Recursion exercising a good chunk of the 256 KiB default stack.
  std::function<int(int)> rec = [&](int depth) -> int {
    char pad[512];
    pad[0] = static_cast<char>(depth);
    if (depth == 0) return pad[0];
    return rec(depth - 1) + (pad[0] != 0 ? 1 : 1);
  };
  int result = 0;
  Fiber fiber([&] { result = rec(200); });
  fiber.resume();
  EXPECT_EQ(result, 200);
}

}  // namespace
}  // namespace ivy::sim
