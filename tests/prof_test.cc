// ivy::prof — the cost-attribution profiler's core contract (every
// virtual nanosecond of every node lands in exactly one category), the
// busy/wait accounting model, the runtime integration across all four
// manager algorithms, the --prof-* flag plumbing, and the drift guards
// that keep the name rosters aligned with their enums.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "ivy/apps/dotprod.h"
#include "ivy/prof/prof.h"
#include "ivy/runtime/flags.h"
#include "ivy/runtime/runtime.h"
#include "ivy/trace/trace.h"

namespace ivy {
namespace {

using prof::Cat;
using prof::ChargeScope;
using prof::Domain;
using prof::FaultLeg;
using prof::Profiler;

Time sum_cats(const Profiler& p, NodeId node) {
  Time sum = 0;
  for (std::size_t c = 0; c < prof::kCatCount; ++c) {
    sum += p.total(node, static_cast<Cat>(c));
  }
  return sum;
}

// --- the tentpole invariant -------------------------------------------

TEST(Prof, AttributionSumsToElapsedPerNode) {
  Profiler p(2);
  p.charge_busy(0, 0, 100, Cat::kCompute);
  p.begin_wait(0, Cat::kLockWait, Domain::kLock, 7, 100);
  p.end_wait(0, Domain::kLock, 7, 250);
  p.sync_to(300);

  EXPECT_EQ(p.total(0, Cat::kCompute), 100);
  EXPECT_EQ(p.total(0, Cat::kLockWait), 150);
  EXPECT_EQ(p.total(0, Cat::kIdle), 50);
  // Node 1 did nothing: all 300 ns are idle, none unaccounted.
  EXPECT_EQ(p.total(1, Cat::kIdle), 300);
  for (NodeId n = 0; n < 2; ++n) {
    EXPECT_EQ(p.accounted(n), 300);
    EXPECT_EQ(sum_cats(p, n), p.accounted(n));
  }
  std::string why;
  EXPECT_TRUE(p.self_check(&why)) << why;
}

TEST(Prof, OverlappingWaitsChargeTheHigherPriority) {
  Profiler p(1);
  // A barrier wait spans [0, 200); an rpc backoff overlaps [50, 150).
  // Backoff is the stricter cause, so it wins its overlap.
  p.begin_wait(0, Cat::kSyncWait, Domain::kSync, 1, 0);
  p.begin_wait(0, Cat::kBackoff, Domain::kRpc, 9, 50);
  p.end_wait(0, Domain::kRpc, 9, 150);
  p.end_wait(0, Domain::kSync, 1, 200);
  p.sync_to(200);

  EXPECT_EQ(p.total(0, Cat::kBackoff), 100);
  EXPECT_EQ(p.total(0, Cat::kSyncWait), 100);
  EXPECT_EQ(sum_cats(p, 0), 200);
}

TEST(Prof, BusySpansBeatWaits) {
  Profiler p(1);
  p.begin_wait(0, Cat::kSyncWait, Domain::kSync, 1, 0);
  p.charge_busy(0, 0, 80, Cat::kCompute);  // wait overlapped by busy work
  p.end_wait(0, Domain::kSync, 1, 120);
  p.sync_to(120);

  EXPECT_EQ(p.total(0, Cat::kCompute), 80);
  EXPECT_EQ(p.total(0, Cat::kSyncWait), 40);
  EXPECT_EQ(sum_cats(p, 0), 120);
}

TEST(Prof, NestedChargeScopesSplitTheDispatch) {
  Profiler p(1);
  {
    ChargeScope outer(&p, Cat::kLockSpin);
    p.note_fiber_charge(0, 30);
    {
      ChargeScope inner(&p, Cat::kDisk);  // innermost wins
      p.note_fiber_charge(0, 20);
    }
    p.note_fiber_charge(0, 10);  // back to the outer scope
  }
  p.note_fiber_charge(0, 40);  // no scope: default compute
  // Span [0, 5 + 100 + 7): switch cost, fiber charge, svm pending.
  p.commit_dispatch(0, 0, 5, 100, 7);

  EXPECT_EQ(p.total(0, Cat::kSchedOverhead), 5);
  EXPECT_EQ(p.total(0, Cat::kLockSpin), 40);
  EXPECT_EQ(p.total(0, Cat::kDisk), 20 + 7);  // scope charge + svm pending
  EXPECT_EQ(p.total(0, Cat::kCompute), 40);
  EXPECT_EQ(p.accounted(0), 112);
  EXPECT_EQ(sum_cats(p, 0), 112);
}

TEST(Prof, ChargeScopeIsNullProfilerSafe) {
  ChargeScope scope(nullptr, Cat::kDisk);  // must not crash
  SUCCEED();
}

TEST(Prof, FaultLegRetagPreservesReadWriteFamily) {
  Profiler p(1);
  p.begin_wait(0, Cat::kReadFaultLocate, Domain::kPageFault, 42, 0);
  p.fault_leg(0, 42, FaultLeg::kTransfer, 60);
  p.end_wait(0, Domain::kPageFault, 42, 100);

  p.begin_wait(0, Cat::kWriteFaultLocate, Domain::kPageFault, 42, 100);
  p.fault_leg(0, 42, FaultLeg::kInvalidate, 170);
  p.end_wait(0, Domain::kPageFault, 42, 200);
  p.sync_to(200);

  EXPECT_EQ(p.total(0, Cat::kReadFaultLocate), 60);
  EXPECT_EQ(p.total(0, Cat::kReadFaultTransfer), 40);
  EXPECT_EQ(p.total(0, Cat::kWriteFaultLocate), 70);
  EXPECT_EQ(p.total(0, Cat::kWriteFaultInvalidate), 30);
  EXPECT_EQ(sum_cats(p, 0), 200);
}

TEST(Prof, SliceBinsSumToTotals) {
  Profiler p(1, /*slice=*/100);
  p.charge_busy(0, 0, 250, Cat::kCompute);
  p.begin_wait(0, Cat::kLockWait, Domain::kLock, 3, 250);
  p.end_wait(0, Domain::kLock, 3, 330);
  p.sync_to(330);

  const auto& bins = p.slices(0);
  ASSERT_EQ(bins.size(), 4u);  // [0,100) [100,200) [200,300) [300,400)
  EXPECT_EQ(bins[0][static_cast<std::size_t>(Cat::kCompute)], 100);
  EXPECT_EQ(bins[1][static_cast<std::size_t>(Cat::kCompute)], 100);
  EXPECT_EQ(bins[2][static_cast<std::size_t>(Cat::kCompute)], 50);
  EXPECT_EQ(bins[2][static_cast<std::size_t>(Cat::kLockWait)], 50);
  EXPECT_EQ(bins[3][static_cast<std::size_t>(Cat::kLockWait)], 30);
  // Bins reconcile with the aggregate totals, category by category.
  for (std::size_t c = 0; c < prof::kCatCount; ++c) {
    Time binned = 0;
    for (const auto& bin : bins) binned += bin[c];
    EXPECT_EQ(binned, p.total(0, static_cast<Cat>(c)));
  }
}

TEST(Prof, SyncToDoesNotFreezeFinalizeDoes) {
  Profiler p(1);
  p.charge_busy(0, 0, 50, Cat::kCompute);
  p.sync_to(100);
  EXPECT_FALSE(p.finalized());
  p.charge_busy(0, 100, 150, Cat::kCompute);  // still accepted
  p.finalize(200);
  EXPECT_TRUE(p.finalized());
  p.charge_busy(0, 200, 300, Cat::kCompute);  // ignored
  EXPECT_EQ(p.accounted(0), 200);
  EXPECT_EQ(p.total(0, Cat::kCompute), 100);
  EXPECT_EQ(sum_cats(p, 0), 200);
}

TEST(Prof, FoldedExportNamesTheLeaves) {
  Profiler p(1);
  p.charge_busy(0, 0, 100, Cat::kCompute);
  p.begin_wait(0, Cat::kReadFaultLocate, Domain::kPageFault, 42, 100);
  p.end_wait(0, Domain::kPageFault, 42, 150);
  p.sync_to(150);
  std::ostringstream out;
  p.write_folded(out);
  const std::string folded = out.str();
  EXPECT_NE(folded.find("node0;compute 100"), std::string::npos) << folded;
  EXPECT_NE(folded.find("node0;read_fault_locate;page42 50"),
            std::string::npos)
      << folded;
}

TEST(Prof, SnapshotMatchesLiveTotals) {
  Profiler p(2);
  p.charge_busy(0, 0, 70, Cat::kCompute);
  p.sync_to(100);
  const Profiler::Snapshot snap = p.snapshot();
  EXPECT_EQ(snap.accounted, 100);
  ASSERT_EQ(snap.totals.size(), 2u);
  EXPECT_EQ(snap.totals[0][static_cast<std::size_t>(Cat::kCompute)], 70);
  EXPECT_EQ(snap.totals[1][static_cast<std::size_t>(Cat::kIdle)], 100);
  // The snapshot is a copy: later accounting does not disturb it.
  p.sync_to(500);
  EXPECT_EQ(snap.accounted, 100);
}

// --- runtime integration ----------------------------------------------

class ProfManagerTest : public ::testing::TestWithParam<svm::ManagerKind> {};

TEST_P(ProfManagerTest, EveryNodeSumsToAccounted) {
  Config cfg;
  cfg.nodes = 4;
  cfg.heap_pages = 8192;
  cfg.manager = GetParam();
  cfg.prof_enabled = true;
  cfg.name = "prof_integration";
  Runtime rt(std::move(cfg));
  apps::DotprodParams params;
  params.n = 2048;
  const apps::RunOutcome outcome = apps::run_dotprod(rt, params);
  EXPECT_TRUE(outcome.verified) << outcome.detail;

  // run() took a snapshot at the program's finish line and self-checked;
  // re-verify the invariant from the outside on the snapshot.
  const Profiler::Snapshot* snap = rt.run_prof();
  ASSERT_NE(snap, nullptr);
  EXPECT_GT(snap->accounted, 0);
  ASSERT_EQ(snap->totals.size(), 4u);
  for (NodeId n = 0; n < 4; ++n) {
    Time sum = 0;
    for (std::size_t c = 0; c < prof::kCatCount; ++c) {
      sum += snap->totals[n][c];
    }
    EXPECT_EQ(sum, snap->accounted) << "node " << n;
  }
  // Some node did real work and some fault waiting happened somewhere.
  Time compute = 0;
  Time faults = 0;
  for (NodeId n = 0; n < 4; ++n) {
    compute += snap->totals[n][static_cast<std::size_t>(Cat::kCompute)];
    for (const Cat c : {Cat::kReadFaultLocate, Cat::kReadFaultTransfer,
                        Cat::kWriteFaultLocate, Cat::kWriteFaultTransfer,
                        Cat::kWriteFaultInvalidate}) {
      faults += snap->totals[n][static_cast<std::size_t>(c)];
    }
  }
  EXPECT_GT(compute, 0);
  EXPECT_GT(faults, 0);

  std::string why;
  ASSERT_NE(rt.prof(), nullptr);
  EXPECT_TRUE(rt.prof()->self_check(&why)) << why;
}

INSTANTIATE_TEST_SUITE_P(AllManagers, ProfManagerTest,
                         ::testing::Values(svm::ManagerKind::kCentralized,
                                           svm::ManagerKind::kFixedDistributed,
                                           svm::ManagerKind::kDynamicDistributed,
                                           svm::ManagerKind::kBroadcast));

TEST(ProfRuntime, DisabledByDefault) {
  Config cfg;
  cfg.nodes = 2;
  Runtime rt(std::move(cfg));
  EXPECT_EQ(rt.prof(), nullptr);
  EXPECT_EQ(rt.run_prof(), nullptr);
}

// --- flag plumbing ----------------------------------------------------

std::vector<char*> argv_of(std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& a : args) argv.push_back(a.data());
  return argv;
}

TEST(ProfFlags, RoundTripIntoConfig) {
  std::vector<std::string> args = {"prog", "--prof-out", "x.folded",
                                   "--prof-slice", "5ms"};
  auto argv = argv_of(args);
  int argc = static_cast<int>(argv.size());
  runtime::ObsFlags flags;
  std::string error;
  ASSERT_TRUE(runtime::parse_obs_flags(&argc, argv.data(), &flags, &error))
      << error;
  EXPECT_EQ(argc, 1);  // everything consumed
  EXPECT_EQ(flags.prof_out, "x.folded");
  EXPECT_EQ(flags.prof_slice, 5'000'000);
  EXPECT_TRUE(flags.profiling());
  EXPECT_TRUE(flags.any());

  Config cfg;
  flags.apply(cfg);
  EXPECT_TRUE(cfg.prof_enabled);
  EXPECT_EQ(cfg.prof_slice, 5'000'000);
}

TEST(ProfFlags, EqualsSpellingAndUnitSuffixes) {
  std::vector<std::string> args = {"prog", "--prof-slice=250us"};
  auto argv = argv_of(args);
  int argc = static_cast<int>(argv.size());
  runtime::ObsFlags flags;
  std::string error;
  ASSERT_TRUE(runtime::parse_obs_flags(&argc, argv.data(), &flags, &error))
      << error;
  EXPECT_EQ(flags.prof_slice, 250'000);
  // A slice alone also arms the profiler (timeline without folded file).
  EXPECT_TRUE(flags.profiling());
  Config cfg;
  flags.apply(cfg);
  EXPECT_TRUE(cfg.prof_enabled);
}

TEST(ProfFlags, RejectsBadSliceValues) {
  for (const char* bad : {"0", "-3ms", "soon", "5parsecs"}) {
    std::vector<std::string> args = {"prog", "--prof-slice", bad};
    auto argv = argv_of(args);
    int argc = static_cast<int>(argv.size());
    runtime::ObsFlags flags;
    std::string error;
    EXPECT_FALSE(
        runtime::parse_obs_flags(&argc, argv.data(), &flags, &error))
        << bad;
    EXPECT_FALSE(error.empty());
  }
}

// --- percentiles ------------------------------------------------------

TEST(HistogramPercentile, OrderedAndClampedToRange) {
  Histogram h;
  for (Time v = 1; v <= 1000; ++v) h.record(v);
  const auto p50 = h.percentile(0.50);
  const auto p90 = h.percentile(0.90);
  const auto p99 = h.percentile(0.99);
  EXPECT_LE(h.min(), p50);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, h.max());
  // Log-bucket estimates: right order of magnitude, never past the max.
  EXPECT_GT(p50, 256u);
  EXPECT_EQ(h.percentile(1.0), 1000u);
  EXPECT_EQ(h.percentile(0.0), 1u);
}

TEST(HistogramPercentile, EmptyAndSingleton) {
  Histogram h;
  EXPECT_EQ(h.percentile(0.5), 0u);
  h.record(77);
  EXPECT_EQ(h.percentile(0.5), 77u);
  EXPECT_EQ(h.percentile(0.99), 77u);
}

// --- drift guards -----------------------------------------------------
//
// The rosters are parallel arrays indexed by their enum; a new enum
// entry without a name (or a copy-pasted duplicate name) would corrupt
// every export silently.  These tests fail the moment the arrays drift.

template <typename Names>
void expect_unique_nonempty(const Names& names) {
  std::set<std::string> seen;
  for (const char* name : names) {
    ASSERT_NE(name, nullptr);
    EXPECT_NE(std::string(name), "");
    EXPECT_TRUE(seen.insert(name).second) << "duplicate name " << name;
  }
}

TEST(DriftGuard, CounterAndHistRosters) {
  expect_unique_nonempty(counter_names());
  expect_unique_nonempty(hist_names());
}

TEST(DriftGuard, ProfCategoryRoster) {
  expect_unique_nonempty(prof::cat_names());
  for (std::size_t c = 0; c < prof::kCatCount; ++c) {
    EXPECT_STREQ(prof::to_string(static_cast<Cat>(c)),
                 prof::cat_names()[c]);
  }
}

TEST(DriftGuard, TraceEventKindRoster) {
  std::set<std::string> seen;
  for (std::size_t k = 0; k < trace::kEventKindCount; ++k) {
    const auto kind = static_cast<trace::EventKind>(k);
    const char* name = trace::to_string(kind);
    ASSERT_NE(name, nullptr);
    EXPECT_NE(std::string(name), "");
    EXPECT_TRUE(seen.insert(name).second) << "duplicate kind name " << name;
    // Every kind maps into a real display category.
    EXPECT_LT(static_cast<std::size_t>(trace::category_of(kind)),
              trace::kCategoryCount);
    // Argument slots have names or are deliberately blank — never null.
    ASSERT_NE(trace::arg0_name(kind), nullptr);
    ASSERT_NE(trace::arg1_name(kind), nullptr);
  }
}

TEST(DriftGuard, ProfDomainPrefixes) {
  for (const Domain d :
       {Domain::kNone, Domain::kPageFault, Domain::kLock, Domain::kSync,
        Domain::kRpc, Domain::kMigrate, Domain::kService}) {
    ASSERT_NE(prof::domain_prefix(d), nullptr);
  }
}

}  // namespace
}  // namespace ivy
