// Unit tests for the physical memory substrate: frame pool (both
// replacement policies, pinning, skip), paging disk.
#include <gtest/gtest.h>

#include <cstring>

#include "ivy/mem/disk.h"
#include "ivy/mem/frame_pool.h"

namespace ivy::mem {
namespace {

constexpr std::size_t kPage = 256;

class FramePoolTest : public testing::Test {
 protected:
  FramePoolTest() : stats_(1) {}

  FramePool make(std::size_t capacity,
                 ReplacementPolicy policy = ReplacementPolicy::kStrictLru) {
    FramePool pool(stats_, 0, kPage, capacity, policy, /*seed=*/7);
    pool.set_evict_callback(
        [this](PageId page, std::span<const std::byte>) {
          evicted_.push_back(page);
          return FramePool::EvictAction::kDrop;
        });
    return pool;
  }

  Stats stats_;
  std::vector<PageId> evicted_;
};

TEST_F(FramePoolTest, AcquireZeroFillsAndLookupFinds) {
  FramePool pool = make(4);
  std::byte* bytes = pool.acquire(10);
  ASSERT_NE(bytes, nullptr);
  for (std::size_t i = 0; i < kPage; ++i) {
    ASSERT_EQ(bytes[i], std::byte{0});
  }
  bytes[3] = std::byte{42};
  EXPECT_EQ(pool.lookup(10)[3], std::byte{42});
  EXPECT_TRUE(pool.resident(10));
  EXPECT_EQ(pool.lookup(11), nullptr);
}

TEST_F(FramePoolTest, AcquireIsIdempotentForResidentPage) {
  FramePool pool = make(4);
  std::byte* a = pool.acquire(5);
  a[0] = std::byte{1};
  std::byte* b = pool.acquire(5);
  EXPECT_EQ(a, b);
  EXPECT_EQ(b[0], std::byte{1});  // not re-zeroed
  EXPECT_EQ(pool.resident_count(), 1u);
}

TEST_F(FramePoolTest, StrictLruEvictsOldest) {
  FramePool pool = make(3);
  pool.acquire(1);
  pool.acquire(2);
  pool.acquire(3);
  (void)pool.lookup(1);  // 2 is now the oldest
  pool.acquire(4);
  ASSERT_EQ(evicted_.size(), 1u);
  EXPECT_EQ(evicted_[0], 2u);
  EXPECT_FALSE(pool.resident(2));
  EXPECT_TRUE(pool.resident(1));
}

TEST_F(FramePoolTest, ReleaseSkipsEvictCallback) {
  FramePool pool = make(2);
  pool.acquire(1);
  pool.release(1);
  EXPECT_TRUE(evicted_.empty());
  EXPECT_FALSE(pool.resident(1));
  pool.release(99);  // releasing a non-resident page is a no-op
}

TEST_F(FramePoolTest, PinnedFramesAreNotEvicted) {
  FramePool pool = make(2);
  pool.acquire(1);
  pool.acquire(2);
  pool.pin(1);
  pool.acquire(3);  // must evict 2, not the pinned (and older) 1
  ASSERT_EQ(evicted_, (std::vector<PageId>{2}));
  pool.unpin(1);
  pool.acquire(4);
  EXPECT_EQ(evicted_.size(), 2u);
}

TEST_F(FramePoolTest, SkipMovesToNextVictim) {
  FramePool pool(stats_, 0, kPage, 2, ReplacementPolicy::kStrictLru, 7);
  PageId protected_page = 1;
  pool.set_evict_callback(
      [&](PageId page, std::span<const std::byte>) {
        if (page == protected_page) return FramePool::EvictAction::kSkip;
        evicted_.push_back(page);
        return FramePool::EvictAction::kDrop;
      });
  pool.acquire(1);
  pool.acquire(2);
  pool.acquire(3);  // strict LRU wants 1; the callback refuses; 2 goes
  EXPECT_EQ(evicted_, (std::vector<PageId>{2}));
  EXPECT_TRUE(pool.resident(1));
}

TEST_F(FramePoolTest, SampledLruEvictsSomethingOldish) {
  // Distributional check across seeds: among the first evictions, the
  // two-probe min-last-used policy must prefer the untouched (old) half
  // clearly more often than uniform random would.
  int old_evictions = 0;
  constexpr int kTrials = 40;
  for (int trial = 0; trial < kTrials; ++trial) {
    FramePool pool(stats_, 0, kPage, 64, ReplacementPolicy::kSampledLru,
                   static_cast<std::uint64_t>(trial));
    std::vector<PageId> evicted;
    pool.set_evict_callback(
        [&evicted](PageId page, std::span<const std::byte>) {
          evicted.push_back(page);
          return FramePool::EvictAction::kDrop;
        });
    for (PageId p = 0; p < 64; ++p) pool.acquire(p);
    for (PageId p = 32; p < 64; ++p) (void)pool.lookup(p);
    for (PageId p = 100; p < 108; ++p) pool.acquire(p);
    for (PageId p : evicted) {
      if (p < 32) ++old_evictions;
    }
  }
  // 8 evictions per trial; expectation ~0.75 old per eviction vs 0.5 for
  // uniform.  0.65 cleanly separates the two.
  EXPECT_GE(old_evictions, static_cast<int>(kTrials * 8 * 0.65));
}

TEST_F(FramePoolTest, CyclicScanPathology) {
  // The reason both policies exist: cyclic access over capacity+1 pages.
  constexpr std::size_t kCap = 32;
  auto misses = [&](ReplacementPolicy policy) {
    evicted_.clear();
    FramePool pool = make(kCap, policy);
    for (int round = 0; round < 10; ++round) {
      for (PageId p = 0; p < kCap + 4; ++p) pool.acquire(p);
    }
    return evicted_.size();
  };
  const std::size_t strict = misses(ReplacementPolicy::kStrictLru);
  const std::size_t sampled = misses(ReplacementPolicy::kSampledLru);
  // Strict LRU misses essentially every access after warm-up; sampled
  // keeps most of the set resident.
  EXPECT_GT(strict, 300u);
  EXPECT_LT(sampled, strict * 2 / 3);
}

TEST(DiskTest, RoundTripsPageImages) {
  Stats stats(1);
  sim::CostModel costs;
  Disk disk(stats, costs, 0);
  std::vector<std::byte> out(kPage);
  std::vector<std::byte> in(kPage);
  for (std::size_t i = 0; i < kPage; ++i) {
    in[i] = static_cast<std::byte>(i & 0xff);
  }
  EXPECT_EQ(disk.write(7, in), costs.disk_io);
  EXPECT_TRUE(disk.holds(7));
  EXPECT_EQ(disk.read(7, out), costs.disk_io);
  EXPECT_EQ(std::memcmp(in.data(), out.data(), kPage), 0);
  EXPECT_EQ(stats.total(Counter::kDiskReads), 1u);
  EXPECT_EQ(stats.total(Counter::kDiskWrites), 1u);
  disk.discard(7);
  EXPECT_FALSE(disk.holds(7));
  EXPECT_EQ(disk.pages_stored(), 0u);
}

TEST(DiskTest, OverwriteKeepsLatestImage) {
  Stats stats(1);
  sim::CostModel costs;
  Disk disk(stats, costs, 0);
  std::vector<std::byte> a(kPage, std::byte{1});
  std::vector<std::byte> b(kPage, std::byte{2});
  disk.write(3, a);
  disk.write(3, b);
  std::vector<std::byte> out(kPage);
  disk.read(3, out);
  EXPECT_EQ(out[0], std::byte{2});
  EXPECT_EQ(disk.pages_stored(), 1u);
}

}  // namespace
}  // namespace ivy::mem
