// ivy-analyze round trip: run a traced workload, export the artifacts,
// read them back through the analyzer, and require (a) the trace-derived
// counts to reproduce the live counters, (b) a clean rpc causality
// audit, (c) sensible critical-path/contention/chain reports, and (d) a
// byte-identical report on re-analysis.  A hand-written golden trace
// pins the anomaly detection itself.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "ivy/ivy.h"
#include "ivy/trace/analyze.h"

namespace ivy::trace {
namespace {

struct Artifacts {
  std::string trace_path;
  std::string metrics_path;
};

/// A small sharing-heavy run (quickstart's shape: partitioned writes,
/// then one node reduces everything) with full tracing on.  No memory
/// pressure, no migration, no broadcast — the configuration under which
/// every cross-check row is exact.
Artifacts run_traced_workload() {
  Config cfg;
  cfg.nodes = 4;
  cfg.heap_pages = 256;
  cfg.stack_region_pages = 64;
  cfg.name = "analyze_test";
  cfg.trace_enabled = true;
  cfg.trace_capacity = 1 << 18;
  cfg.oracle_mode = oracle::Mode::kStrict;  // and keep the run honest
  Runtime rt(cfg);

  constexpr std::size_t kElems = 2048;
  auto data = rt.alloc_array<std::int64_t>(kElems);
  auto barrier = rt.create_barrier(4);
  auto total = rt.alloc_scalar<std::int64_t>();
  for (int p = 0; p < 4; ++p) {
    rt.spawn_on(static_cast<NodeId>(p), [=]() mutable {
      const std::size_t chunk = kElems / 4;
      const std::size_t begin = static_cast<std::size_t>(p) * chunk;
      for (std::size_t i = begin; i < begin + chunk; ++i) {
        data[i] = static_cast<std::int64_t>(i);
      }
      barrier.arrive(0);
      if (p == 0) {
        std::int64_t sum = 0;
        for (std::size_t i = 0; i < kElems; ++i) sum += data[i];
        total.set(sum);
      }
    });
  }
  const Time elapsed = rt.run();

  Artifacts a;
  a.trace_path = testing::TempDir() + "ivy_analyze_test_trace.json";
  a.metrics_path = testing::TempDir() + "ivy_analyze_test_metrics.json";
  EXPECT_TRUE(rt.write_trace(a.trace_path));
  EXPECT_TRUE(rt.write_metrics(a.metrics_path, elapsed));
  return a;
}

class AnalyzeRoundTrip : public testing::Test {
 protected:
  void SetUp() override {
    const Artifacts a = run_traced_workload();
    std::string error;
    ASSERT_TRUE(load_chrome_trace(a.trace_path, &trace_, &error)) << error;
    ASSERT_TRUE(load_metrics_json(a.metrics_path, &metrics_, &error))
        << error;
  }

  LoadedTrace trace_;
  MetricsSummary metrics_;
};

TEST_F(AnalyzeRoundTrip, LoadsEveryExportedEvent) {
  EXPECT_EQ(trace_.machine, "analyze_test");  // cfg.name, " node N" cut
  EXPECT_EQ(trace_.unknown_names, 0u);
  ASSERT_TRUE(metrics_.has_trace_block);
  EXPECT_EQ(metrics_.trace_dropped, 0u);
  EXPECT_EQ(trace_.events.size(), metrics_.trace_retained);
  // Events come back time-ordered.
  for (std::size_t i = 1; i < trace_.events.size(); ++i) {
    EXPECT_LE(trace_.events[i - 1].ts, trace_.events[i].ts);
  }
}

TEST_F(AnalyzeRoundTrip, CrossCheckReproducesLiveCounters) {
  const auto rows = cross_check(trace_, metrics_);
  ASSERT_FALSE(rows.empty());
  std::size_t asserted = 0;
  for (const CrossCheckRow& row : rows) {
    if (!row.checked) continue;
    ++asserted;
    EXPECT_TRUE(row.ok) << row.counter << ": metrics=" << row.from_metrics
                        << " trace=" << row.from_trace << " (" << row.note
                        << ")";
  }
  // This run has no paging/migrations/broadcasts, so every row asserts.
  EXPECT_EQ(asserted, rows.size());
}

TEST_F(AnalyzeRoundTrip, CausalityAuditIsClean) {
  const CausalityReport rpc = causality_audit(trace_, true);
  EXPECT_GT(rpc.requests, 0u);
  EXPECT_GT(rpc.replies, 0u);
  EXPECT_EQ(rpc.unanswered, 0u);
  EXPECT_EQ(rpc.unmatched_replies, 0u);
  EXPECT_EQ(rpc.orphan_events, 0u);
  EXPECT_TRUE(rpc.flagged.empty())
      << "first flag: " << rpc.flagged.front();
}

TEST_F(AnalyzeRoundTrip, CriticalPathDecomposesFaults) {
  const CriticalPathReport cp = critical_path(trace_, 5);
  // The reduce phase pulls every page to node 0: remote read faults.
  EXPECT_GT(cp.reads.count + cp.writes.count, 0u);
  EXPECT_FALSE(cp.slowest.empty());
  for (const FaultPath& f : cp.slowest) {
    EXPECT_GE(f.total, f.locate + f.transfer);
  }
  // Leg sums never exceed the span they decompose.
  EXPECT_GE(cp.writes.total,
            cp.writes.locate + cp.writes.transfer + cp.writes.invalidate);
}

TEST_F(AnalyzeRoundTrip, ContentionFindsActivePages) {
  const auto pages = contention(trace_, 10);
  ASSERT_FALSE(pages.empty());
  EXPECT_GT(pages.front().faults + pages.front().ownership_moves, 0u);
  // Ranked by activity, and each row carries a timeline sparkline.
  for (std::size_t i = 1; i < pages.size(); ++i) {
    const auto score = [](const PageContention& c) {
      return c.faults + c.invalidation_rounds + c.ownership_moves;
    };
    EXPECT_GE(score(pages[i - 1]), score(pages[i]));
  }
  EXPECT_FALSE(pages.front().timeline.empty());
}

TEST_F(AnalyzeRoundTrip, ChainLengthsMatchFaultCount) {
  const ChainLengths chains = chain_lengths(trace_);
  const CriticalPathReport cp = critical_path(trace_, 1);
  EXPECT_EQ(chains.faults, cp.reads.count + cp.writes.count);
  std::uint64_t bucketed = 0;
  for (const std::uint64_t b : chains.hops) bucketed += b;
  EXPECT_EQ(bucketed, chains.faults);
}

TEST_F(AnalyzeRoundTrip, ReportIsDeterministic) {
  const std::string once = render_report(trace_, &metrics_, 10);
  const std::string twice = render_report(trace_, &metrics_, 10);
  EXPECT_EQ(once, twice);
  EXPECT_NE(once.find("fault critical path"), std::string::npos);
  EXPECT_NE(once.find("page contention"), std::string::npos);
  EXPECT_NE(once.find("rpc causality"), std::string::npos);
  EXPECT_NE(once.find("trace vs counters"), std::string::npos);
  EXPECT_EQ(once.find("MISMATCH"), std::string::npos) << once;
}

// --- golden anomaly detection ---------------------------------------------

/// A tiny hand-written trace: one answered rpc, one unanswered rpc, one
/// cancelled rpc (abandoned, not an anomaly), one reply to an id never
/// requested, and one orphan marker.
constexpr const char* kGoldenTrace = R"({"traceEvents":[
{"ph":"M","pid":0,"name":"process_name","args":{"name":"ivy node 0"}},
{"ph":"i","pid":0,"tid":0,"ts":1.000,"name":"rpc_request","s":"t",
 "args":{"rpc_id":101,"dst":1}},
{"ph":"i","pid":1,"tid":0,"ts":2.000,"name":"rpc_reply_sent","s":"t",
 "args":{"rpc_id":101,"requester":0}},
{"ph":"i","pid":0,"tid":0,"ts":3.000,"name":"rpc_request","s":"t",
 "args":{"rpc_id":102,"dst":2}},
{"ph":"i","pid":1,"tid":0,"ts":3.200,"name":"rpc_request","s":"t",
 "args":{"rpc_id":103,"dst":2}},
{"ph":"i","pid":1,"tid":0,"ts":3.400,"name":"rpc_cancel","s":"t",
 "args":{"rpc_id":103}},
{"ph":"i","pid":2,"tid":0,"ts":4.000,"name":"rpc_reply_sent","s":"t",
 "args":{"rpc_id":999,"requester":3}},
{"ph":"i","pid":3,"tid":0,"ts":5.000,"name":"rpc_orphan","s":"t",
 "args":{"rpc_id":998,"server":2}}
]})";

TEST(AnalyzeGolden, FlagsBrokenCausality) {
  const std::string path = testing::TempDir() + "ivy_analyze_golden.json";
  {
    std::ofstream out(path);
    out << kGoldenTrace;
  }
  LoadedTrace trace;
  std::string error;
  ASSERT_TRUE(load_chrome_trace(path, &trace, &error)) << error;
  EXPECT_EQ(trace.machine, "ivy");
  EXPECT_EQ(trace.events.size(), 7u);

  const CausalityReport rpc = causality_audit(trace, true);
  EXPECT_EQ(rpc.requests, 3u);
  EXPECT_EQ(rpc.replies, 2u);
  EXPECT_EQ(rpc.cancelled, 1u);
  EXPECT_EQ(rpc.unanswered, 1u);
  EXPECT_EQ(rpc.unmatched_replies, 1u);
  EXPECT_EQ(rpc.orphan_events, 1u);
  EXPECT_FALSE(rpc.flagged.empty());
}

TEST(AnalyzeGolden, RejectsMalformedJson) {
  const std::string path = testing::TempDir() + "ivy_analyze_bad.json";
  {
    std::ofstream out(path);
    out << "{\"traceEvents\": [";
  }
  LoadedTrace trace;
  std::string error;
  EXPECT_FALSE(load_chrome_trace(path, &trace, &error));
  EXPECT_FALSE(error.empty());
}

// --- bench files (ivy-bench / --bench / --compare) --------------------

/// A hand-written two-point sweep: a clean single-node baseline and a
/// four-node point whose categories sum exactly, faults backed by
/// counters.
std::string write_bench(const std::string& name, Time n4_elapsed) {
  const std::string path = testing::TempDir() + name;
  std::ofstream out(path);
  out << R"({
  "name": "golden", "reduced": true,
  "points": [
    {"workload": "jacobi", "manager": "dynamic", "nodes": 1,
     "elapsed_ns": 1000, "accounted_ns": 1000, "verified": true,
     "hops_read": 0, "hops_write": 0,
     "counters": {"read_faults": 2},
     "per_node": [{"compute": 900, "read_fault_transfer": 100}]},
    {"workload": "jacobi", "manager": "dynamic", "nodes": 4,
     "elapsed_ns": )" << n4_elapsed << R"(, "accounted_ns": 500,
     "verified": true, "hops_read": 3, "hops_write": 1,
     "counters": {"read_faults": 8, "write_faults": 2, "forwards": 4},
     "per_node": [{"compute": 300, "read_fault_locate": 200},
                  {"compute": 250, "write_fault_invalidate": 250},
                  {"compute": 240, "idle": 260},
                  {"compute": 210, "read_fault_transfer": 290}]}
  ]
})";
  return path;
}

TEST(AnalyzeBench, LoadsAuditsAndDecomposesExactly) {
  const std::string path = write_bench("ivy_bench_golden.json", 500);
  BenchFile bench;
  std::string error;
  ASSERT_TRUE(load_bench_json(path, &bench, &error)) << error;
  EXPECT_EQ(bench.name, "golden");
  EXPECT_TRUE(bench.reduced);
  ASSERT_EQ(bench.points.size(), 2u);
  ASSERT_NE(bench.find("jacobi", "dynamic", 4), nullptr);
  EXPECT_EQ(bench.find("jacobi", "dynamic", 4)->hops_read, 3u);
  EXPECT_EQ(bench.points[1].category_total("compute"), 1000);

  EXPECT_TRUE(bench_audit(bench).empty());

  const std::string waterfall = render_waterfall(bench);
  EXPECT_NE(waterfall.find("jacobi / dynamic"), std::string::npos);
  // loss = 4*500 - 1000 = 1000 ns, decomposed without a leak.
  EXPECT_EQ(waterfall.find("attribution leak"), std::string::npos)
      << waterfall;
  EXPECT_NE(waterfall.find("extra_compute"), std::string::npos);
}

TEST(AnalyzeBench, AuditCatchesLeaksAndUnbackedCategories) {
  const std::string path = testing::TempDir() + "ivy_bench_broken.json";
  {
    std::ofstream out(path);
    // Node sums 900 != accounted 1000, and lock_wait has no
    // lock_acquisitions behind it.
    out << R"({"name": "broken", "reduced": false, "points": [
      {"workload": "tsp", "manager": "fixed", "nodes": 1,
       "elapsed_ns": 800, "accounted_ns": 1000, "verified": false,
       "counters": {},
       "per_node": [{"compute": 700, "lock_wait": 200}]}
    ]})";
  }
  BenchFile bench;
  std::string error;
  ASSERT_TRUE(load_bench_json(path, &bench, &error)) << error;
  const auto findings = bench_audit(bench);
  ASSERT_GE(findings.size(), 3u);
  bool saw_sum = false;
  bool saw_unbacked = false;
  bool saw_unverified = false;
  for (const std::string& f : findings) {
    saw_sum |= f.find("categories sum to 900") != std::string::npos;
    saw_unbacked |= f.find("lock_wait") != std::string::npos;
    saw_unverified |= f.find("did not verify") != std::string::npos;
  }
  EXPECT_TRUE(saw_sum);
  EXPECT_TRUE(saw_unbacked);
  EXPECT_TRUE(saw_unverified);
}

TEST(AnalyzeBench, CompareGatesOnToleranceAndMissingPoints) {
  const std::string base = write_bench("ivy_bench_base.json", 500);
  const std::string within = write_bench("ivy_bench_within.json", 520);
  const std::string drifted = write_bench("ivy_bench_drift.json", 800);
  BenchFile b0;
  BenchFile b1;
  BenchFile b2;
  std::string error;
  ASSERT_TRUE(load_bench_json(base, &b0, &error)) << error;
  ASSERT_TRUE(load_bench_json(within, &b1, &error)) << error;
  ASSERT_TRUE(load_bench_json(drifted, &b2, &error)) << error;

  auto rows = compare_bench(b0, b1, 0.10);
  ASSERT_EQ(rows.size(), 2u);
  for (const CompareRow& row : rows) {
    EXPECT_TRUE(row.within) << row.key;
    EXPECT_FALSE(row.missing);
  }

  rows = compare_bench(b0, b2, 0.10);
  EXPECT_TRUE(rows[0].within);                        // baseline unchanged
  EXPECT_FALSE(rows[1].within);                       // 500 -> 800 is 60%
  EXPECT_NEAR(rows[1].ratio, 1.6, 1e-9);
  const std::string rendered = render_compare(rows, 0.10);
  EXPECT_NE(rendered.find("REGRESSION"), std::string::npos);

  // A point the new file dropped entirely is also a gate failure.
  b2.points.pop_back();
  rows = compare_bench(b0, b2, 0.10);
  EXPECT_TRUE(rows[1].missing);
  EXPECT_NE(render_compare(rows, 0.10).find("MISSING"), std::string::npos);
}

}  // namespace
}  // namespace ivy::trace
