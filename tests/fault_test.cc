// Unit tests for ivy::fault: the --fault grammar, rule matching, and the
// deterministic fault plane's delivery planning.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "ivy/fault/plane.h"
#include "ivy/fault/spec.h"

namespace ivy::fault {
namespace {

TEST(ParseDuration, SuffixesAndBareNanoseconds) {
  Time t = 0;
  EXPECT_TRUE(parse_duration("250", &t));
  EXPECT_EQ(t, 250);
  EXPECT_TRUE(parse_duration("50us", &t));
  EXPECT_EQ(t, us(50));
  EXPECT_TRUE(parse_duration("2ms", &t));
  EXPECT_EQ(t, ms(2));
  EXPECT_TRUE(parse_duration("1s", &t));
  EXPECT_EQ(t, sec(1));
  EXPECT_TRUE(parse_duration("1.5ms", &t));
  EXPECT_EQ(t, us(1500));
  EXPECT_FALSE(parse_duration("", &t));
  EXPECT_FALSE(parse_duration("10m", &t));  // minutes not a unit
  EXPECT_FALSE(parse_duration("-3ms", &t));
  EXPECT_FALSE(parse_duration("abc", &t));
}

TEST(ParseFaultSpec, ExampleFromTheIssue) {
  FaultSpec spec;
  std::string error;
  ASSERT_TRUE(parse_fault_spec(
      "drop=0.01,dup=0.005,delay=2ms@0.02,partition=0-3:100ms@t=50ms",
      &spec, &error))
      << error;
  ASSERT_EQ(spec.rules.size(), 4u);
  EXPECT_EQ(spec.rules[0].type, FaultType::kDrop);
  EXPECT_DOUBLE_EQ(spec.rules[0].prob, 0.01);
  EXPECT_EQ(spec.rules[1].type, FaultType::kDuplicate);
  EXPECT_DOUBLE_EQ(spec.rules[1].prob, 0.005);
  EXPECT_EQ(spec.rules[2].type, FaultType::kDelay);
  EXPECT_EQ(spec.rules[2].delay, ms(2));
  EXPECT_DOUBLE_EQ(spec.rules[2].prob, 0.02);
  EXPECT_EQ(spec.rules[3].type, FaultType::kPartition);
  EXPECT_EQ(spec.rules[3].pair_a, 0u);
  EXPECT_EQ(spec.rules[3].pair_b, 3u);
  EXPECT_EQ(spec.rules[3].window_start, ms(50));
  EXPECT_EQ(spec.rules[3].window_end, ms(150));
  EXPECT_DOUBLE_EQ(spec.rules[3].prob, 1.0);
}

TEST(ParseFaultSpec, Qualifiers) {
  FaultSpec spec;
  std::string error;
  ASSERT_TRUE(parse_fault_spec(
      "drop=0.5/kind=write_fault/pair=1-2/t=10ms+5ms", &spec, &error))
      << error;
  ASSERT_EQ(spec.rules.size(), 1u);
  const FaultRule& r = spec.rules[0];
  ASSERT_TRUE(r.kind.has_value());
  EXPECT_EQ(*r.kind, net::MsgKind::kWriteFault);
  EXPECT_EQ(r.pair_a, 1u);
  EXPECT_EQ(r.pair_b, 2u);
  EXPECT_EQ(r.window_start, ms(10));
  EXPECT_EQ(r.window_end, ms(15));
}

TEST(ParseFaultSpec, RejectsMalformedInput) {
  FaultSpec spec;
  std::string error;
  EXPECT_FALSE(parse_fault_spec("drop=1.5", &spec, &error));  // p > 1
  EXPECT_FALSE(parse_fault_spec("drop", &spec, &error));
  EXPECT_FALSE(parse_fault_spec("smash=0.1", &spec, &error));
  EXPECT_FALSE(parse_fault_spec("delay=0.02", &spec, &error));  // no DUR@
  EXPECT_FALSE(parse_fault_spec("partition=0-0:1ms@t=0", &spec, &error));
  EXPECT_FALSE(parse_fault_spec("partition=0-1:1ms", &spec, &error));
  EXPECT_FALSE(parse_fault_spec("drop=0.1/kind=bogus", &spec, &error));
  EXPECT_FALSE(parse_fault_spec("drop=0.1,,dup=0.1", &spec, &error));
  EXPECT_FALSE(error.empty());
}

TEST(ParseFaultSpec, EmptyStringIsNoFaults) {
  FaultSpec spec;
  std::string error;
  ASSERT_TRUE(parse_fault_spec("", &spec, &error));
  EXPECT_FALSE(spec.active());
}

net::Message make_msg(NodeId src, net::MsgKind kind) {
  net::Message m;
  m.src = src;
  m.kind = kind;
  return m;
}

TEST(FaultRuleMatch, KindPairAndWindowFilters) {
  FaultRule r;
  r.type = FaultType::kDrop;
  r.prob = 1.0;
  r.kind = net::MsgKind::kWriteFault;
  r.pair_a = 0;
  r.pair_b = 3;
  r.window_start = ms(10);
  r.window_end = ms(20);

  const auto wf = make_msg(0, net::MsgKind::kWriteFault);
  EXPECT_TRUE(r.matches(wf, 3, ms(15)));
  EXPECT_TRUE(r.matches(make_msg(3, net::MsgKind::kWriteFault), 0, ms(15)));
  EXPECT_FALSE(r.matches(make_msg(0, net::MsgKind::kReadFault), 3, ms(15)));
  EXPECT_FALSE(r.matches(wf, 2, ms(15)));          // wrong pair
  EXPECT_FALSE(r.matches(wf, 3, ms(5)));           // before window
  EXPECT_FALSE(r.matches(wf, 3, ms(20)));          // window end exclusive
}

class FaultPlaneTest : public testing::Test {
 protected:
  FaultPlaneTest() : stats_(4) {}

  FaultPlane make_plane(const std::string& spec_text,
                        std::uint64_t seed = 1) {
    FaultSpec spec;
    std::string error;
    EXPECT_TRUE(parse_fault_spec(spec_text, &spec, &error)) << error;
    return FaultPlane(spec, seed, stats_, [this] { return now_; });
  }

  Stats stats_;
  Time now_ = 0;
};

TEST_F(FaultPlaneTest, SameSeedSamePlans) {
  std::vector<bool> first;
  for (int round = 0; round < 2; ++round) {
    FaultPlane plane = make_plane("drop=0.3", 42);
    std::vector<bool> drops;
    for (int i = 0; i < 200; ++i) {
      drops.push_back(
          plane.plan_delivery(make_msg(0, net::MsgKind::kReadFault), 1).drop);
    }
    if (round == 0) {
      first = drops;
      EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
      EXPECT_NE(std::count(first.begin(), first.end(), true), 200);
    } else {
      EXPECT_EQ(drops, first);
    }
  }
}

TEST_F(FaultPlaneTest, DifferentSeedsDiverge) {
  FaultPlane a = make_plane("drop=0.5", 1);
  FaultPlane b = make_plane("drop=0.5", 2);
  bool diverged = false;
  for (int i = 0; i < 64 && !diverged; ++i) {
    const auto msg = make_msg(0, net::MsgKind::kReadFault);
    diverged = a.plan_delivery(msg, 1).drop != b.plan_delivery(msg, 1).drop;
  }
  EXPECT_TRUE(diverged);
}

TEST_F(FaultPlaneTest, PartitionCutsBothDirectionsOnlyInWindow) {
  FaultPlane plane = make_plane("partition=1-2:10ms@t=50ms");
  const auto m12 = make_msg(1, net::MsgKind::kWriteFault);
  const auto m21 = make_msg(2, net::MsgKind::kWriteFault);

  now_ = ms(55);
  EXPECT_TRUE(plane.plan_delivery(m12, 2).drop);
  EXPECT_TRUE(plane.plan_delivery(m21, 1).drop);
  EXPECT_FALSE(plane.plan_delivery(m12, 3).drop);  // other peers unaffected

  now_ = ms(61);  // healed
  EXPECT_FALSE(plane.plan_delivery(m12, 2).drop);
  EXPECT_EQ(plane.injected(FaultType::kPartition), 2u);
  EXPECT_EQ(stats_.total(Counter::kFaultsInjected), 2u);
}

TEST_F(FaultPlaneTest, CorruptAndDelayPlans) {
  FaultPlane plane = make_plane("corrupt=1,delay=3ms@1");
  const auto plan =
      plane.plan_delivery(make_msg(0, net::MsgKind::kReadFault), 1);
  EXPECT_TRUE(plan.corrupt);
  EXPECT_EQ(plan.extra_delay, ms(3));
  EXPECT_FALSE(plan.drop);
  EXPECT_EQ(plane.injected(FaultType::kCorrupt), 1u);
  EXPECT_EQ(plane.injected(FaultType::kDelay), 1u);
}

TEST_F(FaultPlaneTest, DuplicateUsesRuleSpacing) {
  FaultPlane plane = make_plane("dup=1/kind=rpc_reply");
  net::Message reply = make_msg(2, net::MsgKind::kRpcReply);
  const auto plan = plane.plan_delivery(reply, 0);
  EXPECT_TRUE(plan.duplicate);
  EXPECT_GT(plan.duplicate_delay, 0);
  // Kind filter: a non-reply is untouched.
  const auto other =
      plane.plan_delivery(make_msg(2, net::MsgKind::kReadFault), 0);
  EXPECT_FALSE(other.duplicate);
}

TEST(FaultTypeNames, RoundTrip) {
  for (std::size_t i = 0; i < kFaultTypeCount; ++i) {
    EXPECT_STRNE(to_string(static_cast<FaultType>(i)), "?");
  }
}

}  // namespace
}  // namespace ivy::fault
