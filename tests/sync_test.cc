// Tests for the synchronization primitives built on shared virtual
// memory: eventcounts (the paper's Init/Read/Wait/Advance), binary locks
// with waiter queues, and the eventcount barrier.
#include <gtest/gtest.h>

#include "ivy/ivy.h"

namespace ivy::sync {
namespace {

runtime::Config nodes(NodeId n) {
  runtime::Config cfg;
  cfg.nodes = n;
  cfg.heap_pages = 256;
  cfg.stack_region_pages = 64;
  return cfg;
}

TEST(Eventcount, AdvanceIncrementsRead) {
  runtime::Runtime rt(nodes(1));
  auto ec = rt.create_eventcount();
  std::int64_t seen = -1;
  rt.spawn([&, ec]() mutable {
    EXPECT_EQ(ec.read(), 0);
    ec.advance();
    ec.advance();
    seen = ec.read();
  });
  rt.run();
  EXPECT_EQ(seen, 2);
}

TEST(Eventcount, WaitReturnsImmediatelyWhenReached) {
  runtime::Runtime rt(nodes(1));
  auto ec = rt.create_eventcount();
  bool done = false;
  rt.spawn([&, ec]() mutable {
    ec.advance();
    ec.wait(1);  // already there
    done = true;
  });
  rt.run();
  EXPECT_TRUE(done);
}

TEST(Eventcount, WaitBlocksUntilValueReached) {
  runtime::Runtime rt(nodes(2));
  auto ec = rt.create_eventcount();
  std::vector<int> order;
  rt.spawn_on(0, [&, ec]() mutable {
    ec.wait(3);
    order.push_back(1);
  });
  rt.spawn_on(1, [&, ec]() mutable {
    for (int i = 0; i < 3; ++i) {
      proc::charge_compute(100);
      ec.advance();
    }
    order.push_back(2);
  });
  rt.run();
  ASSERT_EQ(order.size(), 2u);
  // The waiter cannot finish before the third advance happened.
  EXPECT_EQ(order[0], 2);
  EXPECT_EQ(order[1], 1);
}

TEST(Eventcount, WakesOnlyWaitersWhoseTargetReached) {
  runtime::Runtime rt(nodes(3));
  auto ec = rt.create_eventcount();
  auto done = rt.alloc_array<std::uint32_t>(2);
  rt.spawn_on(0, [=]() mutable {
    ec.wait(1);
    done[0] = 1;
  });
  rt.spawn_on(1, [=]() mutable {
    ec.wait(5);
    done[1] = 1;
  });
  rt.spawn_on(2, [=, &rt]() mutable {
    proc::charge_compute(200);
    ec.advance();  // wakes only the first waiter
    proc::charge_compute(4000);
    // The second waiter must still be blocked here.
    EXPECT_EQ(proc::svm_read<std::uint32_t>(done.address_of(1)), 0u);
    for (int i = 0; i < 4; ++i) ec.advance();
    (void)rt;
  });
  rt.run();
  EXPECT_EQ(rt.host_read(done, 0), 1u);
  EXPECT_EQ(rt.host_read(done, 1), 1u);
}

TEST(Eventcount, ManyWaitersAcrossNodesAllWake) {
  runtime::Runtime rt(nodes(8));
  auto ec = rt.create_eventcount();
  auto woke = rt.alloc_array<std::uint32_t>(8);
  for (NodeId n = 1; n < 8; ++n) {
    rt.spawn_on(n, [=]() mutable {
      ec.wait(1);
      woke[n] = 1;
    });
  }
  rt.spawn_on(0, [=]() mutable {
    proc::charge_compute(1000);
    ec.advance();
  });
  rt.run();
  for (NodeId n = 1; n < 8; ++n) EXPECT_EQ(rt.host_read(woke, n), 1u);
  EXPECT_GT(rt.stats().total(Counter::kEcRemoteWakeups), 0u);
}

TEST(Eventcount, InitResetsValue) {
  runtime::Runtime rt(nodes(1));
  auto ec = rt.create_eventcount();
  std::int64_t after = -1;
  rt.spawn([&, ec]() mutable {
    ec.advance();
    ec.advance();
    ec.init();
    after = ec.read();
  });
  rt.run();
  EXPECT_EQ(after, 0);
}

TEST(SvmLockTest, MutualExclusionAcrossNodes) {
  runtime::Runtime rt(nodes(4));
  auto lock = rt.create_lock();
  auto counter = rt.alloc_scalar<std::int64_t>();
  constexpr int kRounds = 25;
  for (NodeId n = 0; n < 4; ++n) {
    rt.spawn_on(n, [=]() mutable {
      for (int i = 0; i < kRounds; ++i) {
        SvmLockGuard guard(lock);
        // Non-atomic read-modify-write made safe only by the lock.
        counter.set(counter.get() + 1);
      }
    });
  }
  rt.run();
  EXPECT_EQ(rt.host_read<std::int64_t>(counter.address()), 4 * kRounds);
  EXPECT_EQ(rt.stats().total(Counter::kLockAcquisitions),
            static_cast<std::uint64_t>(4 * kRounds));
}

TEST(SvmLockTest, TryLockFailsWhenHeld) {
  runtime::Runtime rt(nodes(1));
  auto lock = rt.create_lock();
  bool second_try = true;
  rt.spawn([&, lock]() mutable {
    ASSERT_TRUE(lock.try_lock());
    second_try = lock.try_lock();
    lock.unlock();
  });
  rt.run();
  EXPECT_FALSE(second_try);
}

TEST(SvmLockTest, UnlockWakesQueuedWaiter) {
  runtime::Runtime rt(nodes(2));
  auto lock = rt.create_lock();
  auto order = rt.alloc_array<std::uint32_t>(2);
  auto idx = rt.alloc_scalar<std::uint32_t>();
  rt.spawn_on(0, [=]() mutable {
    lock.lock();
    proc::charge_compute(5000);  // hold long enough for node 1 to queue
    const auto i = idx.get();
    order[i] = 1;
    idx.set(i + 1);
    lock.unlock();
  });
  rt.spawn_on(1, [=]() mutable {
    proc::charge_compute(500);  // arrive second
    lock.lock();
    const auto i = idx.get();
    order[i] = 2;
    idx.set(i + 1);
    lock.unlock();
  });
  rt.run();
  EXPECT_EQ(rt.host_read(order, 0), 1u);
  EXPECT_EQ(rt.host_read(order, 1), 2u);
  EXPECT_GT(rt.stats().total(Counter::kLockSpins), 0u);
}

TEST(BarrierTest, RoundsSynchronizeAllParties) {
  runtime::Runtime rt(nodes(4));
  auto bar = rt.create_barrier(4);
  auto phase = rt.alloc_array<std::int32_t>(4);
  constexpr int kRounds = 5;
  for (NodeId n = 0; n < 4; ++n) {
    rt.spawn_on(n, [=]() mutable {
      for (int r = 0; r < kRounds; ++r) {
        // Before arriving, nobody may already be in a later round.
        for (NodeId m = 0; m < 4; ++m) {
          const std::int32_t p = phase[m];
          EXPECT_LE(p, r);
          EXPECT_GE(p, r - 1);
        }
        phase[n] = r;
        bar.arrive(r);
      }
    });
  }
  rt.run();
  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_EQ(rt.host_read(phase, n), kRounds - 1);
  }
}

TEST(BarrierTest, SinglePartyBarrierNeverBlocks) {
  runtime::Runtime rt(nodes(1));
  auto bar = rt.create_barrier(1);
  int rounds = 0;
  rt.spawn([&, bar]() mutable {
    for (int r = 0; r < 10; ++r) {
      bar.arrive(r);
      ++rounds;
    }
  });
  rt.run();
  EXPECT_EQ(rounds, 10);
}

TEST(Eventcount, CapacityMatchesPageSize) {
  EXPECT_EQ(Eventcount::capacity(1024), (1024u - 16u) / 24u);
  EXPECT_GE(Eventcount::capacity(256), 8u);  // enough for kMaxNodes=8 runs
  EXPECT_EQ(Eventcount::capacity(256, 4), (4u * 256u - 16u) / 24u);
  EXPECT_EQ(SvmLock::capacity(1024), (1024u - 16u) / 16u);
}

TEST(Eventcount, LinkedPagesHoldManyWaiters) {
  // With 256-byte pages a single page parks only 10 waiters; a two-page
  // eventcount ("additional pages will be linked together") must carry
  // more simultaneous waiters than one page can.
  runtime::Config cfg;
  cfg.nodes = 2;
  cfg.page_size = 256;
  cfg.heap_pages = 512;
  cfg.stack_region_pages = 64;
  runtime::Runtime rt(cfg);
  auto ec = rt.create_eventcount(/*pages=*/2);
  constexpr int kWaiters = 16;  // > capacity(256) == 10
  ASSERT_GT(static_cast<std::size_t>(kWaiters), Eventcount::capacity(256));
  auto woke = rt.alloc_array<std::uint32_t>(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    rt.spawn_on(static_cast<NodeId>(i % 2), [=]() mutable {
      ec.wait(1);
      woke[static_cast<std::size_t>(i)] = 1;
    });
  }
  rt.spawn_on(0, [=]() mutable {
    proc::charge_compute(5000);  // let everyone park first
    ec.advance();
  });
  rt.run();
  for (int i = 0; i < kWaiters; ++i) {
    EXPECT_EQ(rt.host_read(woke, static_cast<std::size_t>(i)), 1u);
  }
}

}  // namespace
}  // namespace ivy::sync
