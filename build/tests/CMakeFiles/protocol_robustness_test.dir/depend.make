# Empty dependencies file for protocol_robustness_test.
# This may be replaced when dependencies are built.
