file(REMOVE_RECURSE
  "CMakeFiles/protocol_robustness_test.dir/protocol_robustness_test.cc.o"
  "CMakeFiles/protocol_robustness_test.dir/protocol_robustness_test.cc.o.d"
  "protocol_robustness_test"
  "protocol_robustness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
