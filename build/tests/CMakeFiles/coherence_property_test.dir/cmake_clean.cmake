file(REMOVE_RECURSE
  "CMakeFiles/coherence_property_test.dir/coherence_property_test.cc.o"
  "CMakeFiles/coherence_property_test.dir/coherence_property_test.cc.o.d"
  "coherence_property_test"
  "coherence_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coherence_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
