file(REMOVE_RECURSE
  "CMakeFiles/alloc_test.dir/alloc_test.cc.o"
  "CMakeFiles/alloc_test.dir/alloc_test.cc.o.d"
  "alloc_test"
  "alloc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alloc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
