# Empty dependencies file for ivy_alloc.
# This may be replaced when dependencies are built.
