file(REMOVE_RECURSE
  "CMakeFiles/ivy_alloc.dir/ivy/alloc/central_allocator.cc.o"
  "CMakeFiles/ivy_alloc.dir/ivy/alloc/central_allocator.cc.o.d"
  "CMakeFiles/ivy_alloc.dir/ivy/alloc/first_fit.cc.o"
  "CMakeFiles/ivy_alloc.dir/ivy/alloc/first_fit.cc.o.d"
  "CMakeFiles/ivy_alloc.dir/ivy/alloc/two_level_allocator.cc.o"
  "CMakeFiles/ivy_alloc.dir/ivy/alloc/two_level_allocator.cc.o.d"
  "libivy_alloc.a"
  "libivy_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ivy_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
