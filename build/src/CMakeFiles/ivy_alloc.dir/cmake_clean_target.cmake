file(REMOVE_RECURSE
  "libivy_alloc.a"
)
