file(REMOVE_RECURSE
  "libivy_apps.a"
)
