# Empty compiler generated dependencies file for ivy_apps.
# This may be replaced when dependencies are built.
