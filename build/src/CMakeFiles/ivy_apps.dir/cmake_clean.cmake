file(REMOVE_RECURSE
  "CMakeFiles/ivy_apps.dir/ivy/apps/dotprod.cc.o"
  "CMakeFiles/ivy_apps.dir/ivy/apps/dotprod.cc.o.d"
  "CMakeFiles/ivy_apps.dir/ivy/apps/jacobi.cc.o"
  "CMakeFiles/ivy_apps.dir/ivy/apps/jacobi.cc.o.d"
  "CMakeFiles/ivy_apps.dir/ivy/apps/matmul.cc.o"
  "CMakeFiles/ivy_apps.dir/ivy/apps/matmul.cc.o.d"
  "CMakeFiles/ivy_apps.dir/ivy/apps/msort.cc.o"
  "CMakeFiles/ivy_apps.dir/ivy/apps/msort.cc.o.d"
  "CMakeFiles/ivy_apps.dir/ivy/apps/pde3d.cc.o"
  "CMakeFiles/ivy_apps.dir/ivy/apps/pde3d.cc.o.d"
  "CMakeFiles/ivy_apps.dir/ivy/apps/tsp.cc.o"
  "CMakeFiles/ivy_apps.dir/ivy/apps/tsp.cc.o.d"
  "CMakeFiles/ivy_apps.dir/ivy/apps/workload.cc.o"
  "CMakeFiles/ivy_apps.dir/ivy/apps/workload.cc.o.d"
  "libivy_apps.a"
  "libivy_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ivy_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
