# Empty compiler generated dependencies file for ivy_svm.
# This may be replaced when dependencies are built.
