file(REMOVE_RECURSE
  "libivy_svm.a"
)
