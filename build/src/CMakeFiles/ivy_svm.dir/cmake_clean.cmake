file(REMOVE_RECURSE
  "CMakeFiles/ivy_svm.dir/ivy/svm/manager.cc.o"
  "CMakeFiles/ivy_svm.dir/ivy/svm/manager.cc.o.d"
  "CMakeFiles/ivy_svm.dir/ivy/svm/manager_broadcast.cc.o"
  "CMakeFiles/ivy_svm.dir/ivy/svm/manager_broadcast.cc.o.d"
  "CMakeFiles/ivy_svm.dir/ivy/svm/manager_centralized.cc.o"
  "CMakeFiles/ivy_svm.dir/ivy/svm/manager_centralized.cc.o.d"
  "CMakeFiles/ivy_svm.dir/ivy/svm/manager_dynamic.cc.o"
  "CMakeFiles/ivy_svm.dir/ivy/svm/manager_dynamic.cc.o.d"
  "CMakeFiles/ivy_svm.dir/ivy/svm/manager_fixed.cc.o"
  "CMakeFiles/ivy_svm.dir/ivy/svm/manager_fixed.cc.o.d"
  "CMakeFiles/ivy_svm.dir/ivy/svm/svm.cc.o"
  "CMakeFiles/ivy_svm.dir/ivy/svm/svm.cc.o.d"
  "libivy_svm.a"
  "libivy_svm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ivy_svm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
