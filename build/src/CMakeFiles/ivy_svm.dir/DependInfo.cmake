
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ivy/svm/manager.cc" "src/CMakeFiles/ivy_svm.dir/ivy/svm/manager.cc.o" "gcc" "src/CMakeFiles/ivy_svm.dir/ivy/svm/manager.cc.o.d"
  "/root/repo/src/ivy/svm/manager_broadcast.cc" "src/CMakeFiles/ivy_svm.dir/ivy/svm/manager_broadcast.cc.o" "gcc" "src/CMakeFiles/ivy_svm.dir/ivy/svm/manager_broadcast.cc.o.d"
  "/root/repo/src/ivy/svm/manager_centralized.cc" "src/CMakeFiles/ivy_svm.dir/ivy/svm/manager_centralized.cc.o" "gcc" "src/CMakeFiles/ivy_svm.dir/ivy/svm/manager_centralized.cc.o.d"
  "/root/repo/src/ivy/svm/manager_dynamic.cc" "src/CMakeFiles/ivy_svm.dir/ivy/svm/manager_dynamic.cc.o" "gcc" "src/CMakeFiles/ivy_svm.dir/ivy/svm/manager_dynamic.cc.o.d"
  "/root/repo/src/ivy/svm/manager_fixed.cc" "src/CMakeFiles/ivy_svm.dir/ivy/svm/manager_fixed.cc.o" "gcc" "src/CMakeFiles/ivy_svm.dir/ivy/svm/manager_fixed.cc.o.d"
  "/root/repo/src/ivy/svm/svm.cc" "src/CMakeFiles/ivy_svm.dir/ivy/svm/svm.cc.o" "gcc" "src/CMakeFiles/ivy_svm.dir/ivy/svm/svm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ivy_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ivy_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ivy_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ivy_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ivy_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
