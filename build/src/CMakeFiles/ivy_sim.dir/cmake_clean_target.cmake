file(REMOVE_RECURSE
  "libivy_sim.a"
)
