# Empty dependencies file for ivy_sim.
# This may be replaced when dependencies are built.
