file(REMOVE_RECURSE
  "CMakeFiles/ivy_sim.dir/ivy/sim/fiber.cc.o"
  "CMakeFiles/ivy_sim.dir/ivy/sim/fiber.cc.o.d"
  "CMakeFiles/ivy_sim.dir/ivy/sim/simulator.cc.o"
  "CMakeFiles/ivy_sim.dir/ivy/sim/simulator.cc.o.d"
  "libivy_sim.a"
  "libivy_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ivy_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
