file(REMOVE_RECURSE
  "CMakeFiles/ivy_mem.dir/ivy/mem/frame_pool.cc.o"
  "CMakeFiles/ivy_mem.dir/ivy/mem/frame_pool.cc.o.d"
  "libivy_mem.a"
  "libivy_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ivy_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
