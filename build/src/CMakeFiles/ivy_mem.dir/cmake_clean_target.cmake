file(REMOVE_RECURSE
  "libivy_mem.a"
)
