# Empty dependencies file for ivy_mem.
# This may be replaced when dependencies are built.
