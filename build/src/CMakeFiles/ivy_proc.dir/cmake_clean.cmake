file(REMOVE_RECURSE
  "CMakeFiles/ivy_proc.dir/ivy/proc/load_balance.cc.o"
  "CMakeFiles/ivy_proc.dir/ivy/proc/load_balance.cc.o.d"
  "CMakeFiles/ivy_proc.dir/ivy/proc/migration.cc.o"
  "CMakeFiles/ivy_proc.dir/ivy/proc/migration.cc.o.d"
  "CMakeFiles/ivy_proc.dir/ivy/proc/scheduler.cc.o"
  "CMakeFiles/ivy_proc.dir/ivy/proc/scheduler.cc.o.d"
  "CMakeFiles/ivy_proc.dir/ivy/proc/svm_io.cc.o"
  "CMakeFiles/ivy_proc.dir/ivy/proc/svm_io.cc.o.d"
  "libivy_proc.a"
  "libivy_proc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ivy_proc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
