file(REMOVE_RECURSE
  "libivy_proc.a"
)
