# Empty dependencies file for ivy_proc.
# This may be replaced when dependencies are built.
