file(REMOVE_RECURSE
  "CMakeFiles/ivy_base.dir/ivy/base/log.cc.o"
  "CMakeFiles/ivy_base.dir/ivy/base/log.cc.o.d"
  "CMakeFiles/ivy_base.dir/ivy/base/stats.cc.o"
  "CMakeFiles/ivy_base.dir/ivy/base/stats.cc.o.d"
  "libivy_base.a"
  "libivy_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ivy_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
