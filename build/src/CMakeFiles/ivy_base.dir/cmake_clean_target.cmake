file(REMOVE_RECURSE
  "libivy_base.a"
)
