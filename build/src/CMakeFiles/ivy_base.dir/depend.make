# Empty dependencies file for ivy_base.
# This may be replaced when dependencies are built.
