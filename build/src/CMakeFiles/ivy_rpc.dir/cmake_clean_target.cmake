file(REMOVE_RECURSE
  "libivy_rpc.a"
)
