file(REMOVE_RECURSE
  "CMakeFiles/ivy_rpc.dir/ivy/rpc/remote_op.cc.o"
  "CMakeFiles/ivy_rpc.dir/ivy/rpc/remote_op.cc.o.d"
  "libivy_rpc.a"
  "libivy_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ivy_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
