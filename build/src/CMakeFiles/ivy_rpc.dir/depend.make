# Empty dependencies file for ivy_rpc.
# This may be replaced when dependencies are built.
