# Empty dependencies file for ivy_runtime.
# This may be replaced when dependencies are built.
