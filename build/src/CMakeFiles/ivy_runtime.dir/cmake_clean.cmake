file(REMOVE_RECURSE
  "CMakeFiles/ivy_runtime.dir/ivy/runtime/config.cc.o"
  "CMakeFiles/ivy_runtime.dir/ivy/runtime/config.cc.o.d"
  "CMakeFiles/ivy_runtime.dir/ivy/runtime/runtime.cc.o"
  "CMakeFiles/ivy_runtime.dir/ivy/runtime/runtime.cc.o.d"
  "libivy_runtime.a"
  "libivy_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ivy_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
