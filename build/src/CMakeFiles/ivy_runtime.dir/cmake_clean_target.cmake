file(REMOVE_RECURSE
  "libivy_runtime.a"
)
