file(REMOVE_RECURSE
  "libivy_net.a"
)
