# Empty dependencies file for ivy_net.
# This may be replaced when dependencies are built.
