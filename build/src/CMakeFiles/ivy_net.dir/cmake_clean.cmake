file(REMOVE_RECURSE
  "CMakeFiles/ivy_net.dir/ivy/net/ring.cc.o"
  "CMakeFiles/ivy_net.dir/ivy/net/ring.cc.o.d"
  "libivy_net.a"
  "libivy_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ivy_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
