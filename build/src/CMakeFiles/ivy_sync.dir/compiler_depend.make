# Empty compiler generated dependencies file for ivy_sync.
# This may be replaced when dependencies are built.
