file(REMOVE_RECURSE
  "CMakeFiles/ivy_sync.dir/ivy/sync/eventcount.cc.o"
  "CMakeFiles/ivy_sync.dir/ivy/sync/eventcount.cc.o.d"
  "CMakeFiles/ivy_sync.dir/ivy/sync/svm_lock.cc.o"
  "CMakeFiles/ivy_sync.dir/ivy/sync/svm_lock.cc.o.d"
  "libivy_sync.a"
  "libivy_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ivy_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
