file(REMOVE_RECURSE
  "libivy_sync.a"
)
