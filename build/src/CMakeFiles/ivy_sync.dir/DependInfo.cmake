
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ivy/sync/eventcount.cc" "src/CMakeFiles/ivy_sync.dir/ivy/sync/eventcount.cc.o" "gcc" "src/CMakeFiles/ivy_sync.dir/ivy/sync/eventcount.cc.o.d"
  "/root/repo/src/ivy/sync/svm_lock.cc" "src/CMakeFiles/ivy_sync.dir/ivy/sync/svm_lock.cc.o" "gcc" "src/CMakeFiles/ivy_sync.dir/ivy/sync/svm_lock.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ivy_proc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ivy_svm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ivy_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ivy_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ivy_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ivy_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ivy_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
