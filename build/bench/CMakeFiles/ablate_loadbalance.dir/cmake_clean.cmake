file(REMOVE_RECURSE
  "CMakeFiles/ablate_loadbalance.dir/ablate_loadbalance.cc.o"
  "CMakeFiles/ablate_loadbalance.dir/ablate_loadbalance.cc.o.d"
  "ablate_loadbalance"
  "ablate_loadbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_loadbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
