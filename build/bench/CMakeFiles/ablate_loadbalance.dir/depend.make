# Empty dependencies file for ablate_loadbalance.
# This may be replaced when dependencies are built.
