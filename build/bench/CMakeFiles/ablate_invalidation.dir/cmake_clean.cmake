file(REMOVE_RECURSE
  "CMakeFiles/ablate_invalidation.dir/ablate_invalidation.cc.o"
  "CMakeFiles/ablate_invalidation.dir/ablate_invalidation.cc.o.d"
  "ablate_invalidation"
  "ablate_invalidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_invalidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
