# Empty dependencies file for ablate_invalidation.
# This may be replaced when dependencies are built.
