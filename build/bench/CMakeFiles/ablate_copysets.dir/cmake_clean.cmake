file(REMOVE_RECURSE
  "CMakeFiles/ablate_copysets.dir/ablate_copysets.cc.o"
  "CMakeFiles/ablate_copysets.dir/ablate_copysets.cc.o.d"
  "ablate_copysets"
  "ablate_copysets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_copysets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
