# Empty compiler generated dependencies file for ablate_copysets.
# This may be replaced when dependencies are built.
