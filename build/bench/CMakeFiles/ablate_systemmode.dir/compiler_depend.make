# Empty compiler generated dependencies file for ablate_systemmode.
# This may be replaced when dependencies are built.
