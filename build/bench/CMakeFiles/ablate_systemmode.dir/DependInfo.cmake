
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablate_systemmode.cc" "bench/CMakeFiles/ablate_systemmode.dir/ablate_systemmode.cc.o" "gcc" "bench/CMakeFiles/ablate_systemmode.dir/ablate_systemmode.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ivy_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ivy_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ivy_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ivy_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ivy_proc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ivy_svm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ivy_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ivy_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ivy_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ivy_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ivy_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
