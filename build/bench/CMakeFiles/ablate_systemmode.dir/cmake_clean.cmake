file(REMOVE_RECURSE
  "CMakeFiles/ablate_systemmode.dir/ablate_systemmode.cc.o"
  "CMakeFiles/ablate_systemmode.dir/ablate_systemmode.cc.o.d"
  "ablate_systemmode"
  "ablate_systemmode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_systemmode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
