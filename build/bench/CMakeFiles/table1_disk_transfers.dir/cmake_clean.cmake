file(REMOVE_RECURSE
  "CMakeFiles/table1_disk_transfers.dir/table1_disk_transfers.cc.o"
  "CMakeFiles/table1_disk_transfers.dir/table1_disk_transfers.cc.o.d"
  "table1_disk_transfers"
  "table1_disk_transfers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_disk_transfers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
