# Empty compiler generated dependencies file for table1_disk_transfers.
# This may be replaced when dependencies are built.
