file(REMOVE_RECURSE
  "CMakeFiles/fig6_sort.dir/fig6_sort.cc.o"
  "CMakeFiles/fig6_sort.dir/fig6_sort.cc.o.d"
  "fig6_sort"
  "fig6_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
