# Empty dependencies file for fig6_sort.
# This may be replaced when dependencies are built.
