# Empty dependencies file for fig4_superlinear.
# This may be replaced when dependencies are built.
