file(REMOVE_RECURSE
  "CMakeFiles/fig4_superlinear.dir/fig4_superlinear.cc.o"
  "CMakeFiles/fig4_superlinear.dir/fig4_superlinear.cc.o.d"
  "fig4_superlinear"
  "fig4_superlinear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_superlinear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
