# Empty dependencies file for ablate_alloc.
# This may be replaced when dependencies are built.
