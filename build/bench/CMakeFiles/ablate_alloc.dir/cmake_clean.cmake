file(REMOVE_RECURSE
  "CMakeFiles/ablate_alloc.dir/ablate_alloc.cc.o"
  "CMakeFiles/ablate_alloc.dir/ablate_alloc.cc.o.d"
  "ablate_alloc"
  "ablate_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
