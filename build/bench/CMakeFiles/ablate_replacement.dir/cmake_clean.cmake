file(REMOVE_RECURSE
  "CMakeFiles/ablate_replacement.dir/ablate_replacement.cc.o"
  "CMakeFiles/ablate_replacement.dir/ablate_replacement.cc.o.d"
  "ablate_replacement"
  "ablate_replacement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_replacement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
