# Empty compiler generated dependencies file for ablate_replacement.
# This may be replaced when dependencies are built.
