file(REMOVE_RECURSE
  "CMakeFiles/ablate_pagesize.dir/ablate_pagesize.cc.o"
  "CMakeFiles/ablate_pagesize.dir/ablate_pagesize.cc.o.d"
  "ablate_pagesize"
  "ablate_pagesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_pagesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
