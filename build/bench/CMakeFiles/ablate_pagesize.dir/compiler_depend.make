# Empty compiler generated dependencies file for ablate_pagesize.
# This may be replaced when dependencies are built.
