# Empty compiler generated dependencies file for ablate_managers.
# This may be replaced when dependencies are built.
