file(REMOVE_RECURSE
  "CMakeFiles/ablate_managers.dir/ablate_managers.cc.o"
  "CMakeFiles/ablate_managers.dir/ablate_managers.cc.o.d"
  "ablate_managers"
  "ablate_managers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_managers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
