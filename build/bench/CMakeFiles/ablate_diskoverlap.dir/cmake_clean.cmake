file(REMOVE_RECURSE
  "CMakeFiles/ablate_diskoverlap.dir/ablate_diskoverlap.cc.o"
  "CMakeFiles/ablate_diskoverlap.dir/ablate_diskoverlap.cc.o.d"
  "ablate_diskoverlap"
  "ablate_diskoverlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_diskoverlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
