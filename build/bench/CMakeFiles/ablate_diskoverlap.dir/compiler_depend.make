# Empty compiler generated dependencies file for ablate_diskoverlap.
# This may be replaced when dependencies are built.
