file(REMOVE_RECURSE
  "CMakeFiles/work_pool.dir/work_pool.cpp.o"
  "CMakeFiles/work_pool.dir/work_pool.cpp.o.d"
  "work_pool"
  "work_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/work_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
