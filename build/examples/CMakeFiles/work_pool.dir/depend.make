# Empty dependencies file for work_pool.
# This may be replaced when dependencies are built.
