# Empty compiler generated dependencies file for parsort.
# This may be replaced when dependencies are built.
