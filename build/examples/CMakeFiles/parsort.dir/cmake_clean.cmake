file(REMOVE_RECURSE
  "CMakeFiles/parsort.dir/parsort.cpp.o"
  "CMakeFiles/parsort.dir/parsort.cpp.o.d"
  "parsort"
  "parsort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
