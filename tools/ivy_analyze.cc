// ivy-analyze — post-mortem inspection of exported trace/metrics JSON.
//
// Usage:
//   ivy-analyze <trace.json> [metrics.json] [--top N] [--check]
//
// Reads the Chrome trace written by --trace-out and (optionally) the
// metrics JSON written by --metrics-out, and prints:
//   * per-fault critical-path breakdown (locate / transfer / invalidate /
//     resume legs, plus the slowest individual faults),
//   * per-page contention with ping-pong counts and activity timelines,
//   * forwarding-chain-length histogram,
//   * rpc causality audit (every reply matched to a request),
//   * trace-derived counts cross-checked against the live counters.
//
// With --check the exit status reflects the audit: 1 when a cross-check
// row mismatches or the causality audit flags an anomaly on a complete
// window, 0 otherwise.  Parse failures exit 2.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "ivy/trace/analyze.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <trace.json> [metrics.json] [--top N] [--check]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string metrics_path;
  std::size_t top_n = 10;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--check") == 0) {
      check = true;
    } else if (std::strcmp(arg, "--top") == 0 && i + 1 < argc) {
      top_n = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strncmp(arg, "--top=", 6) == 0) {
      top_n = static_cast<std::size_t>(std::strtoull(arg + 6, nullptr, 10));
    } else if (arg[0] == '-') {
      return usage(argv[0]);
    } else if (trace_path.empty()) {
      trace_path = arg;
    } else if (metrics_path.empty()) {
      metrics_path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (trace_path.empty()) return usage(argv[0]);

  std::string error;
  ivy::trace::LoadedTrace trace;
  if (!ivy::trace::load_chrome_trace(trace_path, &trace, &error)) {
    std::fprintf(stderr, "ivy-analyze: %s\n", error.c_str());
    return 2;
  }
  ivy::trace::MetricsSummary metrics;
  bool have_metrics = false;
  if (!metrics_path.empty()) {
    if (!ivy::trace::load_metrics_json(metrics_path, &metrics, &error)) {
      std::fprintf(stderr, "ivy-analyze: %s\n", error.c_str());
      return 2;
    }
    have_metrics = true;
  }

  const std::string report = ivy::trace::render_report(
      trace, have_metrics ? &metrics : nullptr, top_n);
  std::fputs(report.c_str(), stdout);

  if (check) {
    bool failed = false;
    const bool window_complete =
        !have_metrics || metrics.trace_dropped == 0;
    const auto causality =
        ivy::trace::causality_audit(trace, window_complete);
    if (window_complete && !causality.flagged.empty()) failed = true;
    if (have_metrics) {
      for (const auto& row : ivy::trace::cross_check(trace, metrics)) {
        if (row.checked && !row.ok) failed = true;
      }
    }
    if (failed) {
      std::fprintf(stderr, "ivy-analyze: audit FAILED\n");
      return 1;
    }
  }
  return 0;
}
