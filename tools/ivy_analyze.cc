// ivy-analyze — post-mortem inspection of exported trace/metrics JSON.
//
// Usage:
//   ivy-analyze <trace.json> [metrics.json] [--top N] [--check]
//   ivy-analyze --bench <bench.json> [--check]
//   ivy-analyze --compare <old.json> <new.json> [--tolerance X]
//
// Trace mode reads the Chrome trace written by --trace-out and
// (optionally) the metrics JSON written by --metrics-out, and prints:
//   * per-fault critical-path breakdown (locate / transfer / invalidate /
//     resume legs, plus the slowest individual faults),
//   * per-page contention with ping-pong counts and activity timelines,
//   * forwarding-chain-length histogram,
//   * rpc causality audit (every reply matched to a request),
//   * trace-derived counts cross-checked against the live counters.
//
// Bench mode reads a BENCH_PR5.json written by tools/ivy-bench, audits
// it (every node's profiler categories must sum to the accounted
// virtual time exactly, and each nonzero wait category must be backed
// by its live counter), and prints the speedup-loss waterfall: for each
// (workload, manager) sweep, N*T_N - T_1 decomposed into per-category
// losses that reconcile exactly.
//
// Compare mode is the regression gate: it pairs two bench files by
// (workload, manager, nodes) and fails when any baseline point's
// elapsed time drifts by more than --tolerance (default 0.10, i.e.
// 10%) in either direction — in a deterministic simulator any drift
// means behavior changed.  Each row also prints both points'
// write_fault_transfer attribution (wft_old/wft_new) and the run ends
// with a transfer-volume headline, so optimizations that shrink page
// traffic (bodyless write upgrades) are proven by the comparison
// itself rather than inferred from the total.
//
// With --check the exit status reflects the audit: 1 on a failed
// cross-check / causality / bench audit; --compare always gates.
// Parse failures exit 2.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "ivy/trace/analyze.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <trace.json> [metrics.json] [--top N] [--check]\n"
      "       %s --bench <bench.json> [--check]\n"
      "       %s --compare <old.json> <new.json> [--tolerance X]\n",
      argv0, argv0, argv0);
  return 2;
}

int run_bench_mode(const std::string& path, bool check) {
  std::string error;
  ivy::trace::BenchFile bench;
  if (!ivy::trace::load_bench_json(path, &bench, &error)) {
    std::fprintf(stderr, "ivy-analyze: %s: %s\n", path.c_str(),
                 error.c_str());
    return 2;
  }
  std::printf("bench \"%s\"%s: %zu point(s)\n", bench.name.c_str(),
              bench.reduced ? " (reduced)" : "", bench.points.size());
  const auto findings = ivy::trace::bench_audit(bench);
  if (findings.empty()) {
    std::printf("attribution audit: clean\n");
  } else {
    for (const std::string& f : findings) {
      std::printf("  ! %s\n", f.c_str());
    }
  }
  std::fputs(ivy::trace::render_waterfall(bench).c_str(), stdout);
  if (check && !findings.empty()) {
    std::fprintf(stderr, "ivy-analyze: bench audit FAILED (%zu finding(s))\n",
                 findings.size());
    return 1;
  }
  return 0;
}

int run_compare_mode(const std::string& old_path, const std::string& new_path,
                     double tolerance) {
  std::string error;
  ivy::trace::BenchFile older;
  ivy::trace::BenchFile newer;
  if (!ivy::trace::load_bench_json(old_path, &older, &error)) {
    std::fprintf(stderr, "ivy-analyze: %s: %s\n", old_path.c_str(),
                 error.c_str());
    return 2;
  }
  if (!ivy::trace::load_bench_json(new_path, &newer, &error)) {
    std::fprintf(stderr, "ivy-analyze: %s: %s\n", new_path.c_str(),
                 error.c_str());
    return 2;
  }
  const auto rows = ivy::trace::compare_bench(older, newer, tolerance);
  std::fputs(ivy::trace::render_compare(rows, tolerance).c_str(), stdout);
  for (const auto& row : rows) {
    if (row.missing || !row.within) {
      std::fprintf(stderr, "ivy-analyze: perf regression gate FAILED\n");
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string metrics_path;
  std::string bench_path;
  std::string compare_old;
  std::string compare_new;
  std::size_t top_n = 10;
  double tolerance = 0.10;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--check") == 0) {
      check = true;
    } else if (std::strcmp(arg, "--top") == 0 && i + 1 < argc) {
      top_n = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strncmp(arg, "--top=", 6) == 0) {
      top_n = static_cast<std::size_t>(std::strtoull(arg + 6, nullptr, 10));
    } else if (std::strcmp(arg, "--bench") == 0 && i + 1 < argc) {
      bench_path = argv[++i];
    } else if (std::strcmp(arg, "--compare") == 0 && i + 2 < argc) {
      compare_old = argv[++i];
      compare_new = argv[++i];
    } else if (std::strcmp(arg, "--tolerance") == 0 && i + 1 < argc) {
      tolerance = std::strtod(argv[++i], nullptr);
    } else if (std::strncmp(arg, "--tolerance=", 12) == 0) {
      tolerance = std::strtod(arg + 12, nullptr);
    } else if (arg[0] == '-') {
      return usage(argv[0]);
    } else if (trace_path.empty()) {
      trace_path = arg;
    } else if (metrics_path.empty()) {
      metrics_path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (tolerance < 0.0) {
    std::fprintf(stderr, "ivy-analyze: --tolerance must be >= 0\n");
    return 2;
  }
  if (!compare_old.empty()) {
    return run_compare_mode(compare_old, compare_new, tolerance);
  }
  if (!bench_path.empty()) return run_bench_mode(bench_path, check);
  if (trace_path.empty()) return usage(argv[0]);

  std::string error;
  ivy::trace::LoadedTrace trace;
  if (!ivy::trace::load_chrome_trace(trace_path, &trace, &error)) {
    std::fprintf(stderr, "ivy-analyze: %s\n", error.c_str());
    return 2;
  }
  ivy::trace::MetricsSummary metrics;
  bool have_metrics = false;
  if (!metrics_path.empty()) {
    if (!ivy::trace::load_metrics_json(metrics_path, &metrics, &error)) {
      std::fprintf(stderr, "ivy-analyze: %s\n", error.c_str());
      return 2;
    }
    have_metrics = true;
  }

  const std::string report = ivy::trace::render_report(
      trace, have_metrics ? &metrics : nullptr, top_n);
  std::fputs(report.c_str(), stdout);

  if (check) {
    bool failed = false;
    const bool window_complete =
        !have_metrics || metrics.trace_dropped == 0;
    const auto causality =
        ivy::trace::causality_audit(trace, window_complete);
    if (window_complete && !causality.flagged.empty()) failed = true;
    if (have_metrics) {
      for (const auto& row : ivy::trace::cross_check(trace, metrics)) {
        if (row.checked && !row.ok) failed = true;
      }
    }
    if (failed) {
      std::fprintf(stderr, "ivy-analyze: audit FAILED\n");
      return 1;
    }
  }
  return 0;
}
