// ivy-bench — the perf-baseline harness behind the speedup-loss
// waterfall and the CI regression gate.
//
// Sweeps the paper's six benchmark programs across all four manager
// algorithms and a set of node counts, with the cost-attribution
// profiler forced on, and writes one JSON file (default BENCH_PR5.json)
// holding every point's virtual times, live counters, and per-node
// per-category attribution.  ivy-analyze consumes it:
//
//   ivy-analyze --bench BENCH_PR5.json --check      # audit + waterfall
//   ivy-analyze --compare baseline.json new.json    # regression gate
//
// Usage:
//   ivy-bench [--out PATH] [--reduced] [--nodes 1,2,4,8]
//             [--workloads jacobi,matmul,...] [--managers dynamic,...]
//
// --reduced shrinks the problem sizes and the node list so the whole
// sweep finishes in CI time; the checked-in baseline is a reduced run.
// Every point exports two times: elapsed_ns is the workload-reported
// elapsed (speedup math), accounted_ns is the profiler's attributed
// virtual time (verification drains the simulator a little further, so
// accounted >= elapsed); the per-node categories sum to accounted_ns
// exactly, which ivy-analyze --bench asserts.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "ivy/apps/dotprod.h"
#include "ivy/apps/jacobi.h"
#include "ivy/apps/matmul.h"
#include "ivy/apps/msort.h"
#include "ivy/apps/pde3d.h"
#include "ivy/apps/tsp.h"
#include "ivy/ivy.h"

namespace {

using ivy::Config;
using ivy::NodeId;
using ivy::Runtime;
using ivy::Time;

struct ManagerChoice {
  const char* name;
  ivy::svm::ManagerKind kind;
};

constexpr ManagerChoice kManagers[] = {
    {"centralized", ivy::svm::ManagerKind::kCentralized},
    {"fixed", ivy::svm::ManagerKind::kFixedDistributed},
    {"dynamic", ivy::svm::ManagerKind::kDynamicDistributed},
    {"broadcast", ivy::svm::ManagerKind::kBroadcast},
};

constexpr const char* kWorkloads[] = {"jacobi", "matmul", "pde3d",
                                      "tsp",    "dotprod", "msort"};

ivy::apps::RunOutcome run_workload(Runtime& rt, const std::string& name,
                                   bool reduced) {
  using namespace ivy::apps;
  if (name == "jacobi") {
    JacobiParams p;
    p.n = reduced ? 64 : 128;
    p.iterations = reduced ? 3 : 6;
    return run_jacobi(rt, p);
  }
  if (name == "matmul") {
    MatmulParams p;
    p.n = reduced ? 32 : 48;
    return run_matmul(rt, p);
  }
  if (name == "pde3d") {
    Pde3dParams p;
    p.m = reduced ? 12 : 20;
    p.iterations = reduced ? 2 : 4;
    return run_pde3d(rt, p);
  }
  if (name == "tsp") {
    TspParams p;
    p.cities = reduced ? 9 : 10;
    return run_tsp(rt, p);
  }
  if (name == "dotprod") {
    DotprodParams p;
    p.n = reduced ? 4096 : 8192;
    return run_dotprod(rt, p);
  }
  if (name == "msort") {
    MsortParams p;
    p.records = reduced ? 2048 : 4096;
    return run_msort(rt, p);
  }
  return {};
}

bool split_list(const char* text, std::vector<std::string>* out) {
  std::string item;
  for (const char* p = text;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (item.empty()) return false;
      out->push_back(item);
      item.clear();
      if (*p == '\0') return !out->empty();
    } else {
      item.push_back(*p);
    }
  }
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--out PATH] [--reduced] [--nodes 1,2,4,8]\n"
               "          [--workloads jacobi,matmul,pde3d,tsp,dotprod,"
               "msort]\n"
               "          [--managers centralized,fixed,dynamic,broadcast]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_PR5.json";
  bool reduced = false;
  std::vector<NodeId> node_counts;
  std::vector<std::string> workloads;
  std::vector<std::string> managers;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(arg, "--reduced") == 0) {
      reduced = true;
    } else if (std::strcmp(arg, "--nodes") == 0 && i + 1 < argc) {
      std::vector<std::string> parts;
      if (!split_list(argv[++i], &parts)) return usage(argv[0]);
      for (const std::string& p : parts) {
        const long n = std::strtol(p.c_str(), nullptr, 10);
        if (n <= 0 || n > 64) return usage(argv[0]);
        node_counts.push_back(static_cast<NodeId>(n));
      }
    } else if (std::strcmp(arg, "--workloads") == 0 && i + 1 < argc) {
      if (!split_list(argv[++i], &workloads)) return usage(argv[0]);
    } else if (std::strcmp(arg, "--managers") == 0 && i + 1 < argc) {
      if (!split_list(argv[++i], &managers)) return usage(argv[0]);
    } else {
      return usage(argv[0]);
    }
  }
  if (node_counts.empty()) {
    node_counts = reduced ? std::vector<NodeId>{1, 4}
                          : std::vector<NodeId>{1, 2, 4, 8};
  }
  if (workloads.empty()) {
    workloads.assign(std::begin(kWorkloads), std::end(kWorkloads));
  }
  for (const std::string& w : workloads) {
    bool known = false;
    for (const char* k : kWorkloads) known |= w == k;
    if (!known) {
      std::fprintf(stderr, "ivy-bench: unknown workload %s\n", w.c_str());
      return 2;
    }
  }
  std::vector<ManagerChoice> manager_choices;
  if (managers.empty()) {
    manager_choices.assign(std::begin(kManagers), std::end(kManagers));
  } else {
    for (const std::string& m : managers) {
      bool known = false;
      for (const ManagerChoice& c : kManagers) {
        if (m == c.name) {
          manager_choices.push_back(c);
          known = true;
        }
      }
      if (!known) {
        std::fprintf(stderr, "ivy-bench: unknown manager %s\n", m.c_str());
        return 2;
      }
    }
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "ivy-bench: cannot open %s\n", out_path.c_str());
    return 2;
  }
  out << "{\n  \"name\": \"ivy-bench\",\n  \"reduced\": "
      << (reduced ? "true" : "false") << ",\n  \"points\": [";

  const auto& cat_names = ivy::prof::cat_names();
  bool first_point = true;
  bool all_verified = true;
  for (const std::string& workload : workloads) {
    for (const ManagerChoice& manager : manager_choices) {
      for (const NodeId nodes : node_counts) {
        Config cfg;
        cfg.nodes = nodes;
        cfg.heap_pages = 24576;
        cfg.stack_region_pages = 64;
        cfg.manager = manager.kind;
        cfg.prof_enabled = true;
        cfg.name = workload + "/" + manager.name + "/nodes=" +
                   std::to_string(nodes);
        auto rt = std::make_unique<Runtime>(std::move(cfg));
        const ivy::apps::RunOutcome outcome =
            run_workload(*rt, workload, reduced);
        all_verified &= outcome.verified;

        // run() snapshots the attribution at the program's finish line,
        // before verification host-reads drain the simulator further
        // (that tail would read as idle).  run() also self-checks, so a
        // missing snapshot is the only failure mode left.
        const ivy::prof::Profiler::Snapshot* prof = rt->run_prof();
        if (prof == nullptr) {
          std::fprintf(stderr, "ivy-bench: %s: no profiler snapshot\n",
                       rt->config().name.c_str());
          return 1;
        }

        std::printf("  %-8s %-12s N=%u  T=%.3fs  %s\n", workload.c_str(),
                    manager.name, nodes, ivy::to_seconds(outcome.elapsed),
                    outcome.verified ? "ok" : "FAILED");
        std::fflush(stdout);

        if (!first_point) out << ",";
        first_point = false;
        out << "\n    {\n"
            << "      \"workload\": \"" << workload << "\",\n"
            << "      \"manager\": \"" << manager.name << "\",\n"
            << "      \"nodes\": " << nodes << ",\n"
            << "      \"elapsed_ns\": " << outcome.elapsed << ",\n"
            << "      \"accounted_ns\": " << prof->accounted << ",\n"
            << "      \"verified\": " << (outcome.verified ? "true" : "false")
            << ",\n";
        std::uint64_t hops_read = 0;
        std::uint64_t hops_write = 0;
        for (NodeId n = 0; n < nodes; ++n) {
          hops_read += prof->hops[n][0];
          hops_write += prof->hops[n][1];
        }
        out << "      \"hops_read\": " << hops_read << ",\n"
            << "      \"hops_write\": " << hops_write << ",\n";
        out << "      \"counters\": {";
        const ivy::CounterBlock agg = rt->stats().aggregate();
        bool first_counter = true;
        for (std::size_t c = 0; c < ivy::kCounterCount; ++c) {
          const auto v = agg.get(static_cast<ivy::Counter>(c));
          if (v == 0) continue;
          if (!first_counter) out << ", ";
          first_counter = false;
          out << "\"" << ivy::counter_names()[c] << "\": " << v;
        }
        out << "},\n      \"per_node\": [";
        for (NodeId n = 0; n < nodes; ++n) {
          if (n != 0) out << ",";
          out << "\n        {";
          bool first_cat = true;
          for (std::size_t c = 0; c < ivy::prof::kCatCount; ++c) {
            const Time t = prof->totals[n][c];
            if (t == 0) continue;
            if (!first_cat) out << ", ";
            first_cat = false;
            out << "\"" << cat_names[c] << "\": " << t;
          }
          out << "}";
        }
        out << "\n      ]\n    }";
      }
    }
  }
  out << "\n  ]\n}\n";
  out.close();
  std::printf("wrote %s\n", out_path.c_str());
  if (!all_verified) {
    std::fprintf(stderr, "ivy-bench: some workloads FAILED verification\n");
    return 1;
  }
  return out ? 0 : 2;
}
